"""Benchmark: streaming-service supervision overhead and crash recovery.

The service layer (:mod:`repro.service`) multiplexes many named online
detector streams behind bounded queues, with cadence snapshots and
per-stream fault isolation.  Supervision must be close to free against
running the same N detectors by hand, snapshots must cost a bounded
fraction of the replay, and a supervisor killed mid-replay and restarted
on its snapshot directory must finish with *the same history* the
uninterrupted run produces — checkable at 1e-12, not just "looks
plausible".

Sections:

* **overhead** — the same N-stream replay pushed through N independent
  :class:`OnlineBagDetector` loops and through a
  :class:`StreamSupervisor` (no snapshots); the enforced gate is that
  supervision adds at most ``--overhead`` relative wall-clock (default
  50%), with a 1e-12 history-parity gate between the two runs;
* **snapshots** — the supervised replay re-timed with a snapshot
  cadence; reports per-snapshot cost and gates the relative overhead at
  ``--snapshot-overhead`` in full mode;
* **recovery** — the snapshotting supervisor is killed mid-replay
  (dropped without ``close()``), a fresh supervisor on the same
  directory restores every stream from its last snapshot, and the
  remaining bags are replayed; the recombined history must match the
  uninterrupted run at 1e-12;
* **batched drain** — a wide replay (``--batch-streams``, default 64)
  on each batched solver backend, drained sequentially (one solve per
  stream per round) and through the cross-stream batched scheduler
  (``SupervisorPolicy(batch_drain=True)``: one stacked solve per
  round).  Full mode gates the batched speedup at ``--batch-speedup``
  (default 2x); parity between the two drains is gated at 1e-12 on the
  exact ``linprog_batch`` backend (1e-8 on the approximate
  ``sinkhorn_batch``) in both modes.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_stream_service.py          # full
    PYTHONPATH=src python benchmarks/bench_stream_service.py --quick  # CI smoke

In full mode the script exits non-zero if either overhead gate fails.
The 1e-12 parity gates and the every-stream-restored gate apply in both
modes — a supervision or recovery path that changes scores is a bug,
not a trade-off.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from repro.core import DetectorConfig, OnlineBagDetector
from repro.service import StreamSupervisor, SupervisorPolicy

PARITY_TOL = 1e-12


def make_stream_bags(n_streams, n_bags, seed):
    """Per-stream bag sequences with a mid-sequence mean shift."""
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n_streams):
        shift = float(rng.uniform(2.0, 4.0))
        streams.append(
            [
                rng.normal(size=(15, 2)) + (shift if i >= n_bags // 2 else 0.0)
                for i in range(n_bags)
            ]
        )
    return streams


def stream_config(index, seed):
    """One stream's detector config; seeds differ so histories differ."""
    return DetectorConfig(
        tau=3,
        tau_test=3,
        signature_method="kmeans",
        n_clusters=4,
        n_bootstrap=20,
        random_state=seed + index,
    )


def batched_stream_config(index, seed, backend):
    """A stream config for the batched-drain section.

    Histogram signatures on a common grid are the batched backends'
    stacking case: pairs across streams land in shared support groups,
    so the cross-stream drain runs one stacked solve where the
    sequential drain runs one per stream.
    """
    return DetectorConfig(
        tau=3,
        tau_test=3,
        signature_method="histogram",
        bins=3,
        histogram_range=[(-6.0, 10.0), (-6.0, 10.0)],
        emd_backend=backend,
        sinkhorn_tol=1e-6,
        n_bootstrap=20,
        random_state=seed + index,
    )


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def run_independent(configs, stream_bags):
    """Baseline: each stream pushed through its own detector, by hand."""
    histories = []
    for config, bags in zip(configs, stream_bags):
        with OnlineBagDetector(config) as detector:
            for bag in bags:
                detector.push(bag)
            histories.append(list(detector.history))
    return histories


def run_supervised(configs, stream_bags, policy, snapshot_dir=None):
    """The same replay through a supervisor, round-robin submit/drain."""
    supervisor = StreamSupervisor(policy=policy, snapshot_dir=snapshot_dir)
    names = [f"stream-{i:02d}" for i in range(len(configs))]
    for name, config in zip(names, configs):
        supervisor.add_stream(name, config)
    for round_bags in zip(*stream_bags):
        for name, bag in zip(names, round_bags):
            supervisor.submit(name, bag)
        supervisor.drain()
    histories = [list(supervisor.detector(name).history) for name in names]
    return supervisor, names, histories


def history_parity(histories_a, histories_b):
    """Max |a - b| over score/bounds/gamma across all streams; NaN-aware.

    Returns ``inf`` on any structural mismatch (length, times, alerts,
    NaN placement) so a broken run cannot pass the parity gate.
    """
    worst = 0.0
    for points_a, points_b in zip(histories_a, histories_b):
        if [p.time for p in points_a] != [p.time for p in points_b]:
            return float("inf")
        for p, q in zip(points_a, points_b):
            if p.alert != q.alert:
                return float("inf")
            for a, b in (
                (p.score, q.score),
                (p.interval.lower, q.interval.lower),
                (p.interval.upper, q.interval.upper),
                (p.gamma, q.gamma),
            ):
                if np.isnan(a) != np.isnan(b):
                    return float("inf")
                if not np.isnan(a):
                    worst = max(worst, abs(a - b))
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=8, help="stream count")
    parser.add_argument("--bags", type=int, default=60, help="bags per stream")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--snapshot-every", type=int, default=5, metavar="N",
        help="snapshot cadence (pushes per stream) in the snapshot section",
    )
    parser.add_argument(
        "--overhead", type=float, default=0.50,
        help="maximum allowed relative supervision overhead in full mode",
    )
    parser.add_argument(
        "--snapshot-overhead", type=float, default=1.00,
        help="maximum allowed relative snapshot overhead in full mode",
    )
    parser.add_argument(
        "--batch-streams", type=int, default=64,
        help="stream count of the batched-drain section",
    )
    parser.add_argument(
        "--batch-bags", type=int, default=12,
        help="bags per stream in the batched-drain section",
    )
    parser.add_argument(
        "--batch-speedup", type=float, default=2.0,
        help="minimum batched-over-sequential drain speedup enforced in "
        "full mode, per batched backend",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce "
        "the overhead gates (the 1e-12 parity gates still apply)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_streams = 3 if args.quick else args.streams
    n_bags = 24 if args.quick else args.bags

    stream_bags = make_stream_bags(n_streams, n_bags, args.seed)
    configs = [stream_config(i, args.seed + 100) for i in range(n_streams)]
    plain_policy = SupervisorPolicy()

    # ------------------------------------------------------------------ #
    # Overhead section: hand-rolled loops vs the supervisor, no snapshots.
    # ------------------------------------------------------------------ #
    independent_time, independent = timed(
        lambda: run_independent(configs, stream_bags)
    )
    supervised_time, (_, _, supervised) = timed(
        lambda: run_supervised(configs, stream_bags, plain_policy)
    )
    supervised_diff = history_parity(supervised, independent)
    overhead = (
        (supervised_time - independent_time) / independent_time
        if independent_time > 0
        else 0.0
    )

    n_points = sum(len(points) for points in independent)
    print(
        f"\noverhead: {n_streams} streams x {n_bags} bags "
        f"({n_points} scored points)"
    )
    print(f"{'method':<24}{'seconds':>10}{'bags/s':>10}")
    for label, elapsed in (
        ("independent detectors", independent_time),
        ("stream supervisor", supervised_time),
    ):
        rate = n_streams * n_bags / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<24}{elapsed:>10.3f}{rate:>10.1f}")
    print(f"supervision overhead             = {overhead * 100:+.1f}%")
    print(f"max history |supervised - indep| = {supervised_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Snapshot section: the same replay with cadence snapshots.
    # ------------------------------------------------------------------ #
    cadence_policy = SupervisorPolicy(snapshot_every=args.snapshot_every)
    with tempfile.TemporaryDirectory() as snapshot_dir:
        snapshot_time, (supervisor, _, snapshotted) = timed(
            lambda: run_supervised(
                configs, stream_bags, cadence_policy, snapshot_dir
            )
        )
        n_snapshots = supervisor.n_snapshots_written
        supervisor.close()
    snapshot_diff = history_parity(snapshotted, independent)
    snapshot_overhead = (
        (snapshot_time - supervised_time) / supervised_time
        if supervised_time > 0
        else 0.0
    )
    per_snapshot_ms = (
        1000.0 * (snapshot_time - supervised_time) / n_snapshots
        if n_snapshots > 0
        else 0.0
    )

    print(
        f"\nsnapshots: cadence {args.snapshot_every}, "
        f"{n_snapshots} snapshots written during replay"
    )
    print(f"snapshotting replay seconds      = {snapshot_time:.3f}")
    print(f"snapshot overhead vs supervised  = {snapshot_overhead * 100:+.1f}%")
    print(f"apparent cost per snapshot       = {per_snapshot_ms:.2f} ms")
    print(f"max history |snapshot - indep|   = {snapshot_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Recovery section: kill mid-replay, restore, finish, compare.
    # ------------------------------------------------------------------ #
    kill_at = n_bags // 2 + 1
    with tempfile.TemporaryDirectory() as snapshot_dir:
        first_half = [bags[:kill_at] for bags in stream_bags]
        run_supervised(configs, first_half, cadence_policy, snapshot_dir)
        # Crash: the first supervisor is abandoned without close(), so
        # only its cadence snapshots survive.  The successor restores
        # each stream from its last snapshot and replays what is missing.
        def recover():
            restored = StreamSupervisor(
                policy=cadence_policy, snapshot_dir=snapshot_dir
            )
            names = [f"stream-{i:02d}" for i in range(n_streams)]
            for name, config in zip(names, configs):
                restored.add_stream(name, config)
            for name, bags in zip(names, stream_bags):
                for bag in bags[restored.detector(name).n_seen:]:
                    restored.submit(name, bag)
            restored.drain()
            histories = [list(restored.detector(name).history) for name in names]
            return restored.n_restored, histories

        recovery_time, (n_restored, recovered) = timed(recover)
    recovered_diff = history_parity(recovered, independent)

    print(f"\nrecovery: killed after {kill_at} bags/stream, restored from disk")
    print(f"streams restored from snapshot   = {n_restored}/{n_streams}")
    print(f"restore-and-finish seconds       = {recovery_time:.3f}")
    print(f"max history |recovered - indep|  = {recovered_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Batched-drain section: sequential vs one stacked solve per round.
    # ------------------------------------------------------------------ #
    batch_streams = 4 if args.quick else args.batch_streams
    batch_bags = 8 if args.quick else args.batch_bags
    batch_bag_sets = make_stream_bags(batch_streams, batch_bags, args.seed + 1)
    batch_results = {}
    batch_parity_ok = True
    batch_speedup_ok = True
    print(
        f"\nbatched drain: {batch_streams} streams x {batch_bags} bags, "
        "sequential vs cross-stream stacked solves"
    )
    print(f"{'backend':<16}{'seq s':>9}{'batched s':>11}{'speedup':>9}{'parity':>11}")
    for backend in ("linprog_batch", "sinkhorn_batch"):
        batch_configs = [
            batched_stream_config(i, args.seed + 200, backend)
            for i in range(batch_streams)
        ]
        sequential_time, (_, _, sequential_hist) = timed(
            lambda configs=batch_configs: run_supervised(
                configs, batch_bag_sets, plain_policy
            )
        )
        batched_time, (_, _, batched_hist) = timed(
            lambda configs=batch_configs: run_supervised(
                configs, batch_bag_sets, SupervisorPolicy(batch_drain=True)
            )
        )
        diff = history_parity(batched_hist, sequential_hist)
        speedup = sequential_time / batched_time if batched_time > 0 else float("inf")
        tol = PARITY_TOL if backend == "linprog_batch" else 1e-8
        if diff > tol:
            batch_parity_ok = False
        if not args.quick and speedup < args.batch_speedup:
            batch_speedup_ok = False
        batch_results[backend] = {
            "sequential_seconds": sequential_time,
            "batched_seconds": batched_time,
            "speedup": speedup,
            "parity_diff": diff,
            "parity_tol": tol,
        }
        print(
            f"{backend:<16}{sequential_time:>9.3f}{batched_time:>11.3f}"
            f"{speedup:>8.2f}x{diff:>11.2e}"
        )

    max_diff = max(supervised_diff, snapshot_diff, recovered_diff)
    parity_ok = max_diff <= PARITY_TOL
    restored_ok = n_restored == n_streams
    overhead_ok = args.quick or overhead <= args.overhead
    snapshot_ok = args.quick or snapshot_overhead <= args.snapshot_overhead

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "stream_service",
        {
            "n_streams": n_streams,
            "n_bags": n_bags,
            "n_points": n_points,
            "independent_seconds": independent_time,
            "supervised_seconds": supervised_time,
            "supervision_overhead": overhead,
            "snapshot_seconds": snapshot_time,
            "snapshot_overhead": snapshot_overhead,
            "n_snapshots": n_snapshots,
            "per_snapshot_ms": per_snapshot_ms,
            "recovery_seconds": recovery_time,
            "n_restored": n_restored,
            "max_parity_diff": max_diff,
            "overhead_limit": args.overhead,
            "snapshot_overhead_limit": args.snapshot_overhead,
            "overhead_enforced": not args.quick,
            "batch_streams": batch_streams,
            "batch_bags": batch_bags,
            "batch_speedup_limit": args.batch_speedup,
            "batch_drain": batch_results,
        },
        passed=parity_ok
        and restored_ok
        and overhead_ok
        and snapshot_ok
        and batch_parity_ok
        and batch_speedup_ok,
    )

    if not parity_ok:
        print(f"FAIL: histories disagree by {max_diff:.2e} > {PARITY_TOL:.0e}")
        return 1
    if not restored_ok:
        print(
            f"FAIL: only {n_restored}/{n_streams} streams restored from "
            "their snapshots"
        )
        return 1
    if not overhead_ok:
        print(
            f"FAIL: supervision overhead {overhead * 100:+.1f}% exceeds "
            f"{args.overhead * 100:.0f}%"
        )
        return 1
    if not snapshot_ok:
        print(
            f"FAIL: snapshot overhead {snapshot_overhead * 100:+.1f}% exceeds "
            f"{args.snapshot_overhead * 100:.0f}%"
        )
        return 1
    if not batch_parity_ok:
        worst = {
            backend: result["parity_diff"]
            for backend, result in batch_results.items()
        }
        print(f"FAIL: batched drain disagrees with sequential drain: {worst}")
        return 1
    if not batch_speedup_ok:
        speedups = {
            backend: round(result["speedup"], 2)
            for backend, result in batch_results.items()
        }
        print(
            f"FAIL: batched drain speedup {speedups} below "
            f"{args.batch_speedup:.1f}x"
        )
        return 1
    batch_summary = ", ".join(
        f"{backend} {result['speedup']:.1f}x"
        for backend, result in batch_results.items()
    )
    print(
        f"OK: supervision {overhead * 100:+.1f}%, snapshots "
        f"{snapshot_overhead * 100:+.1f}%, {n_restored} streams recovered to "
        f"{max_diff:.2e} parity, batched drain {batch_summary}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
