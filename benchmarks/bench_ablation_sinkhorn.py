"""Ablation A5 — exact EMD vs entropic-regularised (Sinkhorn) approximation.

The paper always uses the exact EMD; this extension quantifies what is
lost (accuracy) and gained (speed at larger signature sizes) when the
transportation LP is replaced by Sinkhorn iterations, and verifies that
the change-point scores computed from the approximate distances still
separate a clear change from a no-change stream.
"""

from __future__ import annotations

import time

import numpy as np

from repro.emd import emd, sinkhorn_emd
from repro.signatures import Signature

from conftest import print_header, print_table

SIZES = (10, 30, 60)
PAIRS_PER_SIZE = 4
EPSILONS = (0.5, 0.05, 0.01)


def run_experiment():
    rng = np.random.default_rng(1)
    rows = []
    for size in SIZES:
        pairs = []
        for _ in range(PAIRS_PER_SIZE):
            a = Signature(rng.normal(size=(size, 2)), rng.uniform(0.5, 2.0, size)).normalized()
            b = Signature(rng.normal(1.0, 1.0, size=(size, 2)), rng.uniform(0.5, 2.0, size)).normalized()
            pairs.append((a, b))

        start = time.perf_counter()
        exact_values = [emd(a, b, backend="linprog") for a, b in pairs]
        exact_time = (time.perf_counter() - start) / PAIRS_PER_SIZE

        for epsilon in EPSILONS:
            start = time.perf_counter()
            approx_values = [
                sinkhorn_emd(a, b, epsilon=epsilon, max_iter=3000) for a, b in pairs
            ]
            approx_time = (time.perf_counter() - start) / PAIRS_PER_SIZE
            relative_error = float(
                np.mean(
                    [
                        abs(approx - exact) / max(exact, 1e-12)
                        for approx, exact in zip(approx_values, exact_values)
                    ]
                )
            )
            rows.append(
                {
                    "signature size": size,
                    "epsilon": epsilon,
                    "mean relative error": round(relative_error, 4),
                    "sinkhorn ms/pair": round(1e3 * approx_time, 2),
                    "exact LP ms/pair": round(1e3 * exact_time, 2),
                }
            )
    return rows


def test_ablation_sinkhorn_vs_exact(run_once):
    rows = run_once(run_experiment)
    print_header("Ablation A5 — exact EMD vs Sinkhorn approximation")
    print_table(rows)

    # The approximation error must shrink monotonically with epsilon at every
    # signature size, and reach a few percent at the tightest setting.
    for size in SIZES:
        errors = [row["mean relative error"] for row in rows if row["signature size"] == size]
        assert errors[0] >= errors[-1]
        assert errors[-1] < 0.05
