"""Ablation A4 — signature construction: quantiser choice and size K.

Section 3.1 of the paper allows k-means, k-medoids, LVQ, histograms or the
exact empirical distribution as signatures.  This ablation runs the
detector with each builder (and several K) on the Section-5.1 dataset 4
(clear mean jump) and reports detection quality and runtime, quantifying
the fidelity/cost trade-off of quantisation.
"""

from __future__ import annotations

import time

import numpy as np

from repro import BagChangePointDetector
from repro.datasets import make_confidence_interval_dataset
from repro.evaluation import match_alarms, score_auc

from conftest import print_header, print_table

CONFIGURATIONS = (
    ("exact", None),
    ("kmeans", 4),
    ("kmeans", 8),
    ("kmedoids", 8),
    ("lvq", 8),
    ("histogram", None),
)


def run_experiment():
    dataset = make_confidence_interval_dataset(4, random_state=21, mean_bag_size=60)
    rows = []
    for method, n_clusters in CONFIGURATIONS:
        kwargs = dict(
            tau=5, tau_test=5, signature_method=method, n_bootstrap=100, random_state=0
        )
        if n_clusters is not None:
            kwargs["n_clusters"] = n_clusters
        if method == "histogram":
            kwargs["bins"] = 8
        detector = BagChangePointDetector(**kwargs)
        start = time.perf_counter()
        result = detector.detect(dataset.bags)
        elapsed = time.perf_counter() - start
        matching = match_alarms(result.alarm_times.tolist(), dataset.change_points, tolerance=3)
        auc = score_auc(result.scores, result.times, dataset.change_points, tolerance=3)
        rows.append(
            {
                "signature": method if n_clusters is None else f"{method} (K={n_clusters})",
                "detected": f"{matching.true_positives}/{len(dataset.change_points)}",
                "AUC": round(auc, 3) if np.isfinite(auc) else "-",
                "runtime s": round(elapsed, 2),
            }
        )
    return rows


def test_ablation_signature_builders(run_once):
    rows = run_once(run_experiment)
    print_header("Ablation A4 — signature builders and K on the dataset-4 mean jump")
    print_table(rows)

    # Every builder must see the clear jump; quantised signatures must not
    # be slower than the exact empirical signatures.
    detected = [row["detected"] for row in rows]
    assert all(d == "1/1" for d in detected), f"some builders missed the jump: {detected}"
    runtime = {row["signature"]: row["runtime s"] for row in rows}
    assert runtime["kmeans (K=8)"] <= runtime["exact"] * 1.5
