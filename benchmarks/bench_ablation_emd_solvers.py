"""Ablation A2 — EMD solver backends: agreement and runtime scaling.

Compares the from-scratch transportation simplex, the SciPy HiGHS linear
program, and the exact 1-D closed form on random signature pairs of
growing size.  Expected shape: all backends agree to numerical precision;
the closed form is orders of magnitude faster in 1-D; the LP backend
scales better than the simplex for larger signatures.
"""

from __future__ import annotations

import time

import numpy as np

from repro.emd import emd, wasserstein_1d
from repro.signatures import Signature

from conftest import print_header, print_table

SIZES = (5, 10, 20, 40)
PAIRS_PER_SIZE = 5


def _random_signature(rng, size, dim):
    return Signature(rng.normal(size=(size, dim)), rng.uniform(0.5, 2.0, size))


def run_experiment():
    rng = np.random.default_rng(0)
    rows = []
    max_disagreement = 0.0
    for size in SIZES:
        timings = {"linprog": 0.0, "simplex": 0.0, "closed_form_1d": 0.0}
        for _ in range(PAIRS_PER_SIZE):
            sig_a = _random_signature(rng, size, 2)
            sig_b = _random_signature(rng, size, 2)
            start = time.perf_counter()
            lp_value = emd(sig_a, sig_b, backend="linprog")
            timings["linprog"] += time.perf_counter() - start
            start = time.perf_counter()
            simplex_value = emd(sig_a, sig_b, backend="simplex")
            timings["simplex"] += time.perf_counter() - start
            max_disagreement = max(max_disagreement, abs(lp_value - simplex_value))

            one_a = _random_signature(rng, size, 1).normalized()
            one_b = _random_signature(rng, size, 1).normalized()
            start = time.perf_counter()
            closed = wasserstein_1d(
                one_a.positions[:, 0], one_a.weights, one_b.positions[:, 0], one_b.weights
            )
            timings["closed_form_1d"] += time.perf_counter() - start
            lp_1d = emd(one_a, one_b, backend="linprog")
            max_disagreement = max(max_disagreement, abs(closed - lp_1d))
        rows.append(
            {
                "signature size": size,
                "linprog ms/pair": round(1e3 * timings["linprog"] / PAIRS_PER_SIZE, 3),
                "simplex ms/pair": round(1e3 * timings["simplex"] / PAIRS_PER_SIZE, 3),
                "1-D closed form ms/pair": round(1e3 * timings["closed_form_1d"] / PAIRS_PER_SIZE, 4),
            }
        )
    return rows, max_disagreement


def test_ablation_emd_solver_backends(run_once):
    rows, max_disagreement = run_once(run_experiment)
    print_header("Ablation A2 — EMD backends: agreement and runtime")
    print_table(rows)
    print(f"maximum disagreement between backends: {max_disagreement:.2e}")

    assert max_disagreement < 1e-5
    # The 1-D closed form must be much faster than solving the LP.
    last = rows[-1]
    assert last["1-D closed form ms/pair"] < last["linprog ms/pair"]
