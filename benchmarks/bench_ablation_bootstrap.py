"""Ablation A3 — Bayesian bootstrap vs standard bootstrap for small windows.

The paper argues (Section 4.2) that the Bayesian bootstrap yields a
smoother distribution of the change-point score than multinomial
resampling when the windows hold only a handful of bags (tau = tau' = 5).
This ablation measures the number of distinct replicate values and the
stability of the resulting interval bounds across repeated runs, for both
bootstraps, on a fixed reference/test window.
"""

from __future__ import annotations

import numpy as np

from repro.bootstrap import BayesianBootstrap, StandardBootstrap
from repro.core import WindowDistances, score_symmetric_kl
from repro.emd import cross_emd_matrix, emd_matrix
from repro.signatures import Signature

from conftest import print_header, print_table

TAU = 5
N_REPLICATES = 200
N_RUNS = 10


def _window(rng):
    ref = [Signature(rng.normal(0, 1, size=(30, 2)), np.ones(30)) for _ in range(TAU)]
    test = [Signature(rng.normal(1.5, 1, size=(30, 2)), np.ones(30)) for _ in range(TAU)]
    return WindowDistances(
        ref_pairwise=emd_matrix(ref),
        test_pairwise=emd_matrix(test),
        cross=cross_emd_matrix(ref, test),
    )


def run_experiment():
    rng = np.random.default_rng(0)
    window = _window(rng)

    def score_of_weights(ref_weights, test_weights):
        return score_symmetric_kl(window, ref_weights, test_weights)

    rows = []
    for name, factory in (
        ("Bayesian", lambda seed: BayesianBootstrap(N_REPLICATES, rng=seed)),
        ("standard", lambda seed: StandardBootstrap(N_REPLICATES, rng=seed)),
    ):
        unique_counts, lower_bounds, upper_bounds = [], [], []
        for seed in range(N_RUNS):
            bootstrap = factory(seed)
            ref_weights = bootstrap.resample_weights(TAU)
            test_weights = bootstrap.resample_weights(TAU)
            replicated = np.array(
                [score_of_weights(rw, tw) for rw, tw in zip(ref_weights, test_weights)]
            )
            unique_counts.append(len(np.unique(np.round(replicated, 12))))
            lower_bounds.append(np.quantile(replicated, 0.025))
            upper_bounds.append(np.quantile(replicated, 0.975))
        rows.append(
            {
                "bootstrap": name,
                "distinct replicate values (of 200)": round(float(np.mean(unique_counts)), 1),
                "lower-bound std across runs": round(float(np.std(lower_bounds)), 4),
                "upper-bound std across runs": round(float(np.std(upper_bounds)), 4),
            }
        )
    return rows


def test_ablation_bootstrap_variants(run_once):
    rows = run_once(run_experiment)
    print_header("Ablation A3 — Bayesian vs standard bootstrap for tau = 5 windows")
    print_table(rows)

    by_name = {row["bootstrap"]: row for row in rows}
    # The Bayesian bootstrap produces a much richer (smoother) replicate
    # distribution for such small windows ...
    assert (
        by_name["Bayesian"]["distinct replicate values (of 200)"]
        > by_name["standard"]["distinct replicate values (of 200)"]
    )
