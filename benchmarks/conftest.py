"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md for the experiment index).  Problem sizes are
scaled down from the paper so the whole suite runs on a laptop in minutes;
the *shape* of each result (who wins, where alerts land, how widths
compare) is what is checked and reported, not absolute values.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

import pytest


def write_benchmark_json(
    path: Optional[Union[str, Path]],
    benchmark: str,
    results: Dict[str, object],
    *,
    passed: bool = True,
) -> None:
    """Write one benchmark's key numbers as machine-readable JSON.

    Shared by every smoke benchmark's ``--json`` flag: CI uploads the
    resulting ``BENCH_*.json`` files as workflow artifacts, so the perf
    trajectory is queryable per commit instead of buried in step logs.
    ``path=None`` is a no-op, letting callers forward their ``--json``
    argument unconditionally.  Values in ``results`` must be
    JSON-serialisable (numbers, strings, booleans, lists, dicts).
    """
    if path is None:
        return
    try:
        import numpy as np

        versions = {"python": platform.python_version(), "numpy": np.__version__}
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        versions = {"python": platform.python_version()}
    payload = {
        "benchmark": benchmark,
        "passed": bool(passed),
        "results": results,
        "argv": sys.argv[1:],
        "versions": versions,
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"benchmark JSON written to {path}")


def print_header(title: str) -> None:
    """Banner separating one experiment's output from the next."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dictionaries as an aligned text table."""
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r.get(h, ""))) for r in rows)) for h in headers}
    print("  ".join(str(h).ljust(widths[h]) for h in headers))
    print("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        print("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))


def print_series(label: str, times: Iterable[int], values: Iterable[float], alerts=None) -> None:
    """Print a score series as one compact line per time step."""
    alerts = list(alerts) if alerts is not None else None
    print(f"-- {label}")
    for i, (t, v) in enumerate(zip(times, values)):
        flag = "  *ALERT*" if alerts is not None and alerts[i] else ""
        print(f"   t={int(t):4d}  score={float(v):8.4f}{flag}")


@pytest.fixture
def run_once(benchmark):
    """Run the measured callable exactly once (these are experiment harnesses,
    not micro-benchmarks; a single timed round keeps the suite fast)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
