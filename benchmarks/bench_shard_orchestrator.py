"""Benchmark: fault-tolerant orchestration overhead and recovery cost.

The orchestrator (:mod:`repro.emd.orchestrator`) wraps the sharded band
build in a retry/backoff work queue with straggler re-dispatch,
poison-pair quarantine and checkpoint validation.  All of that machinery
must be close to free when nothing goes wrong, and recovery from faults
must terminate with the *same band* the unfaulted build produces — the
whole point of deterministic fault injection is that this is checkable
at 1e-12, not just "looks plausible".

Sections:

* **overhead** — the same band built by the plain :class:`ShardRunner`
  and by the :class:`ShardOrchestrator` (serial mode, no faults); the
  enforced gate is that orchestration adds at most ``--overhead``
  relative wall-clock (default 25%), with a 1e-12 parity gate;
* **recovery** — the orchestrated build re-run under three injected
  fault classes (worker crash, transient solver error, poison pair in
  degraded mode), each measured against the unfaulted orchestrated
  build; every recovered band must match the unfaulted band at 1e-12
  wherever both are finite, and the poison run must mask exactly the
  quarantined entry.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_orchestrator.py          # full
    PYTHONPATH=src python benchmarks/bench_shard_orchestrator.py --quick  # CI smoke

In full mode the script exits non-zero if orchestration overhead exceeds
``--overhead``.  The parity and masking gates apply in both modes — a
recovery path that changes solved values is a bug, not a trade-off.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.emd import (
    EngineSettings,
    PairwiseEMDEngine,
    RetryPolicy,
    ShardOrchestrator,
    ShardPlan,
    ShardRunner,
)
from repro.testing import (
    inject_poison_pairs,
    inject_transient_solver_error,
    inject_worker_crash,
)

PARITY_TOL = 1e-12


def make_signatures(n_bags, side, seed):
    """Histogram signatures on a shared grid (the paper's bag encoding)."""
    rng = np.random.default_rng(seed)
    from repro.signatures import SignatureBuilder

    bags = [rng.normal(0.0, 1.0, size=(40, 2)) for _ in range(n_bags)]
    builder = SignatureBuilder("histogram", bins=side, histogram_range=(-4.0, 4.0))
    return builder.build_sequence(bags)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def make_orchestrator(plan, policy=None):
    return ShardOrchestrator(
        plan, EngineSettings(backend="auto"), policy=policy, mode="serial", n_workers=4
    )


def band_parity(band, reference):
    """Max |band - reference| over entries finite in both."""
    both = np.isfinite(band.band) & np.isfinite(reference.band)
    return float(np.max(np.abs(band.band[both] - reference.band[both])))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bags", type=int, default=80, help="sequence length")
    parser.add_argument("--bandwidth", type=int, default=10, help="band width tau + tau'")
    parser.add_argument("--side", type=int, default=5, help="histogram grid side")
    parser.add_argument("--n-shards", type=int, default=8, help="row-block shard count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--overhead", type=float, default=0.25,
        help="maximum allowed relative orchestration overhead in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce "
        "the overhead gate (the 1e-12 parity gates still apply)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_bags = 24 if args.quick else args.bags
    bandwidth = 6 if args.quick else args.bandwidth
    n_shards = 4 if args.quick else args.n_shards

    signatures = make_signatures(n_bags, args.side, args.seed)
    plan = ShardPlan.build(n_bags, bandwidth, n_shards)
    settings = EngineSettings(backend="auto")

    # ------------------------------------------------------------------ #
    # Overhead section: plain runner vs orchestrator, no faults.
    # ------------------------------------------------------------------ #
    serial_time, reference = timed(
        lambda: PairwiseEMDEngine(backend="auto").banded_matrix(signatures, bandwidth)
    )
    runner_time, runner_band = timed(
        lambda: ShardRunner(plan, settings, mode="serial").run(signatures)
    )
    orch_time, orch_band = timed(
        lambda: make_orchestrator(plan).run(signatures)
    )

    runner_diff = band_parity(runner_band, reference)
    orch_diff = band_parity(orch_band, reference)
    overhead = (orch_time - runner_time) / runner_time if runner_time > 0 else 0.0

    print(
        f"\noverhead: {plan.n_pairs} band pairs ({n_bags} bags, width "
        f"{bandwidth}), {plan.n_shards} shards, serial workers"
    )
    print(f"{'method':<22}{'seconds':>10}{'vs serial':>12}")
    for label, elapsed in (
        ("serial engine", serial_time),
        ("shard runner", runner_time),
        ("orchestrator", orch_time),
    ):
        vs_serial = serial_time / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<22}{elapsed:>10.3f}{vs_serial:>11.2f}x")
    print(f"orchestration overhead vs runner = {overhead * 100:+.1f}%")
    print(f"max band |runner - serial|       = {runner_diff:.2e}")
    print(f"max band |orchestrator - serial| = {orch_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Recovery section: the same build under three injected fault
    # classes, all driven to completion by the retry/quarantine queue.
    # ------------------------------------------------------------------ #
    kill_at = plan.n_pairs // 2
    rows, cols = plan.pair_indices(1)
    poison_key = (signatures[rows[0]].label, signatures[cols[0]].label)

    recovery = {}

    orch = make_orchestrator(plan)
    with inject_worker_crash(at_pair=kill_at, times=1):
        crash_time, crash_band = timed(lambda: orch.run(signatures))
    recovery["crash"] = {
        "seconds": crash_time,
        "retries": orch.n_retries,
        "parity": band_parity(crash_band, orch_band),
        "n_masked": 0,
    }

    orch = make_orchestrator(plan)
    with inject_transient_solver_error(times=2):
        transient_time, transient_band = timed(lambda: orch.run(signatures))
    recovery["transient"] = {
        "seconds": transient_time,
        "retries": orch.n_retries,
        "parity": band_parity(transient_band, orch_band),
        "n_masked": 0,
    }

    orch = make_orchestrator(
        plan, policy=RetryPolicy(on_poison_pair="degraded", poison_retries=0)
    )
    import warnings

    with inject_poison_pairs([poison_key], fail_singleton=True, fail_exact=True):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            poison_time, poison_band = timed(lambda: orch.run(signatures))
    n_masked = int(
        np.sum(np.isnan(poison_band.band) & np.isfinite(orch_band.band))
    )
    recovery["poison-degraded"] = {
        "seconds": poison_time,
        "retries": orch.n_retries,
        "parity": band_parity(poison_band, orch_band),
        "n_masked": n_masked,
    }

    print("\nrecovery: faulted orchestrated builds vs the unfaulted build")
    print(f"{'fault':<18}{'seconds':>10}{'vs clean':>10}{'retries':>9}{'masked':>8}{'parity':>11}")
    for label, stats in recovery.items():
        slowdown = stats["seconds"] / orch_time if orch_time > 0 else float("inf")
        print(
            f"{label:<18}{stats['seconds']:>10.3f}{slowdown:>9.2f}x"
            f"{stats['retries']:>9d}{stats['n_masked']:>8d}{stats['parity']:>11.2e}"
        )

    max_diff = max(
        runner_diff, orch_diff, *(stats["parity"] for stats in recovery.values())
    )
    parity_ok = max_diff <= PARITY_TOL
    masking_ok = (
        recovery["crash"]["n_masked"] == 0
        and recovery["transient"]["n_masked"] == 0
        and recovery["poison-degraded"]["n_masked"] == 1
    )
    recovered_ok = (
        recovery["crash"]["retries"] >= 1 and recovery["transient"]["retries"] >= 1
    )
    enforce = not args.quick
    overhead_ok = args.quick or overhead <= args.overhead

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "shard_orchestrator",
        {
            "n_bags": n_bags,
            "bandwidth": bandwidth,
            "n_pairs": plan.n_pairs,
            "n_shards": plan.n_shards,
            "serial_seconds": serial_time,
            "runner_seconds": runner_time,
            "orchestrator_seconds": orch_time,
            "orchestration_overhead": overhead,
            "recovery": recovery,
            "max_parity_diff": max_diff,
            "overhead_limit": args.overhead,
            "overhead_enforced": enforce,
        },
        passed=parity_ok and masking_ok and recovered_ok and overhead_ok,
    )

    if not parity_ok:
        print(f"FAIL: recovered band disagrees by {max_diff:.2e} > {PARITY_TOL:.0e}")
        return 1
    if not masking_ok:
        print(
            "FAIL: masking mismatch — crash/transient recovery must mask "
            f"nothing and poison-degraded exactly one entry, got "
            f"{recovery['crash']['n_masked']}/{recovery['transient']['n_masked']}"
            f"/{recovery['poison-degraded']['n_masked']}"
        )
        return 1
    if not recovered_ok:
        print("FAIL: injected faults were not absorbed by the retry queue")
        return 1
    if not overhead_ok:
        print(
            f"FAIL: orchestration overhead {overhead * 100:+.1f}% exceeds "
            f"{args.overhead * 100:.0f}%"
        )
        return 1
    print(
        f"OK: orchestration overhead {overhead * 100:+.1f}%, all three fault "
        f"classes recovered to {max_diff:.2e} parity"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
