"""Benchmark: per-pair vs block-diagonal batched exact-LP EMD solves.

The detector's exact band build issues one
:func:`repro.emd.solve_emd_linprog` call per in-band signature pair —
thousands of small HiGHS models whose per-call set-up cost dominates the
actual simplex work whenever signatures share a support (d-dimensional
histogram grids).  :func:`repro.emd.solve_emd_linprog_batch` stacks many
pairs into one sparse block-diagonal LP per HiGHS call, paying the model
set-up once per chunk while producing *exactly* the same distances (same
LP, same solver — unlike the entropic ``sinkhorn_batch`` path there is
no approximation to trade away).

Two sections:

* **solver** — the enforced comparison: the band pairs of a
  common-support histogram sequence solved per-pair vs batched, with a
  strict 1e-9 parity check on the resulting distances;
* **engine** — context: the full band build over histogram signatures
  with varying bin occupancy through :class:`repro.emd.PairwiseEMDEngine`,
  ``backend="linprog"`` (per-pair LP) vs ``backend="linprog_batch"``
  (support grouping + union embedding + stacked LPs).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_linprog_batch.py          # full
    PYTHONPATH=src python benchmarks/bench_linprog_batch.py --quick  # CI smoke

In full mode the script exits non-zero unless the batched solver is at
least ``--threshold`` times faster than the per-pair loop (default 3x).
The 1e-9 parity gate applies in both modes — exactness is the point of
this backend.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.emd import (
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    solve_emd_linprog,
    solve_emd_linprog_batch,
)
from repro.emd.ground_distance import cross_distance_matrix
from repro.signatures import Signature

PARITY_TOL = 1e-9


def make_histogram_band(n_bags, bandwidth, side, dim, seed):
    """Supply/demand rows for every in-band pair of a histogram sequence."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    n_bins = grid.shape[0]
    weights = rng.uniform(0.5, 3.0, size=(n_bags, n_bins))
    rows, cols = BandedDistanceMatrix(n_bags, bandwidth).pair_indices()
    cost = cross_distance_matrix(grid, grid, "euclidean")
    return grid, cost, weights[rows], weights[cols]


def make_histogram_signatures(n_bags, side, dim, seed):
    """Histogram signatures with varying bin occupancy over one grid."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    signatures = []
    for i in range(n_bags):
        counts = rng.poisson(3.0, size=grid.shape[0]).astype(float)
        if counts.sum() == 0:
            counts[0] = 1.0
        signatures.append(Signature(grid[counts > 0], counts[counts > 0], label=i))
    return signatures


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bags", type=int, default=60, help="sequence length")
    parser.add_argument("--bandwidth", type=int, default=10, help="band width tau + tau'")
    parser.add_argument("--side", type=int, default=4, help="histogram bins per dimension")
    parser.add_argument("--dim", type=int, default=2, help="grid dimensionality")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold", type=float, default=3.0,
        help="minimum batched-vs-per-pair speed-up required in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce "
        "the speed-up threshold (the 1e-9 parity gate still applies)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_bags = 30 if args.quick else args.bags
    bandwidth = 6 if args.quick else args.bandwidth

    # ------------------------------------------------------------------ #
    # Solver section: identical band pairs, per-pair loop vs stacked LPs.
    # ------------------------------------------------------------------ #
    grid, cost, supply, demand = make_histogram_band(
        n_bags, bandwidth, args.side, args.dim, args.seed
    )
    n_pairs = supply.shape[0]

    def per_pair():
        out = np.empty(n_pairs)
        for p in range(n_pairs):
            plan = solve_emd_linprog(cost, supply[p], demand[p])
            out[p] = plan.cost / plan.total_flow if plan.total_flow > 0 else 0.0
        return out

    def batched():
        return solve_emd_linprog_batch(cost, supply, demand).distances

    loop_time, loop_values = timed(per_pair)
    batch_time, batch_values = timed(batched)
    max_diff = float(np.abs(loop_values - batch_values).max())
    speedup = loop_time / batch_time if batch_time > 0 else float("inf")

    print(
        f"\nsolver: {n_pairs} band pairs ({n_bags} bags, width {bandwidth}) "
        f"on a {args.side}^{args.dim} grid ({grid.shape[0]} atoms)"
    )
    print(f"{'method':<16}{'pairs/s':>12}{'seconds':>10}{'speed-up':>10}")
    for label, elapsed in (("per-pair", loop_time), ("batched", batch_time)):
        rate = n_pairs / elapsed if elapsed > 0 else float("inf")
        ratio = loop_time / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<16}{rate:>12.1f}{elapsed:>10.3f}{ratio:>10.2f}x")
    print(f"max |batched - per-pair| = {max_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Engine section: band build, per-pair LP vs grouped stacked LPs.
    # ------------------------------------------------------------------ #
    signatures = make_histogram_signatures(n_bags, args.side, args.dim, args.seed)

    lp_time, lp_band = timed(
        lambda: PairwiseEMDEngine(backend="linprog").banded_matrix(
            signatures, bandwidth
        )
    )
    batch_engine = PairwiseEMDEngine(backend="linprog_batch")
    engine_time, batch_band = timed(
        lambda: batch_engine.banded_matrix(signatures, bandwidth)
    )
    engine_diff = float(np.nanmax(np.abs(lp_band.band - batch_band.band)))
    engine_speedup = lp_time / engine_time if engine_time > 0 else float("inf")
    print(
        f"\nengine: band build, {n_bags} bags, width {bandwidth} "
        f"({batch_engine.n_evaluations} pairs, "
        f"{batch_engine.n_linprog_batched} batched)"
    )
    print(f"{'backend':<16}{'seconds':>10}{'speed-up':>10}")
    print(f"{'linprog':<16}{lp_time:>10.3f}{1.0:>10.2f}x")
    print(f"{'linprog_batch':<16}{engine_time:>10.3f}{engine_speedup:>10.2f}x")
    print(f"max band |linprog_batch - linprog| = {engine_diff:.2e}")

    parity_ok = max_diff <= PARITY_TOL and engine_diff <= PARITY_TOL
    speed_ok = args.quick or speedup >= args.threshold

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "linprog_batch",
        {
            "n_pairs": n_pairs,
            "per_pair_seconds": loop_time,
            "batched_seconds": batch_time,
            "speedup": speedup,
            "max_parity_diff": max(max_diff, engine_diff),
            "engine_lp_seconds": lp_time,
            "engine_batch_seconds": engine_time,
            "engine_speedup": engine_speedup,
            "threshold": args.threshold,
            "threshold_enforced": not args.quick,
        },
        passed=parity_ok and speed_ok,
    )
    if not parity_ok:
        print(
            f"FAIL: batched and per-pair exact LP disagree by "
            f"{max(max_diff, engine_diff):.2e} > {PARITY_TOL:.0e}"
        )
        return 1
    if not speed_ok:
        print(f"FAIL: batched speed-up {speedup:.2f}x below threshold {args.threshold}x")
        return 1
    print(f"OK: batched exact LP {speedup:.2f}x faster than per-pair, parity {max_diff:.2e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
