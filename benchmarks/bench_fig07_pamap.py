"""Experiment E3 — paper Table 1 + Fig. 7 (PAMAP physical-activity monitoring).

Three simulated subjects perform the Table-1 activity protocol; the sensor
stream is cut into 10-second bags with irregular record counts and the
detector flags activity transitions.  Expected shape (paper Fig. 7):
alerts concentrate at activity transitions, most transitions are detected,
and rapid score oscillations within an activity do not trigger alerts.

Scaled down from ~250 bags x ~950 records to ~70 bags x ~300 records per
subject.
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.datasets import ACTIVITIES, PamapSimulator
from repro.evaluation import match_alarms

from conftest import print_header, print_table

N_SUBJECTS = 3
PROTOCOL = (1, 2, 3, 4, 5, 6, 7, 8, 9, 11)
BAGS_PER_ACTIVITY = 9
TOLERANCE = 3


def run_experiment():
    simulator = PamapSimulator(random_state=11, sampling_rate=30)
    subjects = simulator.simulate_subjects(
        N_SUBJECTS, protocol=PROTOCOL, bags_per_activity=BAGS_PER_ACTIVITY
    )
    reports = []
    for dataset in subjects:
        detector = BagChangePointDetector(
            tau=5, tau_test=5, signature_method="kmeans", n_clusters=6,
            n_bootstrap=100, random_state=0,
        )
        result = detector.detect(dataset.bags)
        matching = match_alarms(
            result.alarm_times.tolist(), dataset.change_points, tolerance=TOLERANCE
        )
        reports.append((dataset, result, matching))
    return reports


def test_fig07_pamap_activity_transitions(run_once):
    reports = run_once(run_experiment)

    print_header("Table 1 + Fig. 7 — activity-transition detection on PAMAP-like streams")
    print("Activities (paper Table 1):")
    print_table([{"id": k, "activity": v} for k, v in ACTIVITIES.items()])

    rows = []
    for subject_index, (dataset, result, matching) in enumerate(reports, start=1):
        rows.append(
            {
                "subject": subject_index,
                "bags": len(dataset.bags),
                "transitions": len(dataset.change_points),
                "alerts": int(result.alerts.sum()),
                "detected": matching.true_positives,
                "precision": round(matching.precision, 2),
                "recall": round(matching.recall, 2),
                "mean delay (bags)": (
                    round(matching.mean_delay, 2) if np.isfinite(matching.mean_delay) else "-"
                ),
            }
        )
    print_table(rows)
    for subject_index, (dataset, result, _) in enumerate(reports, start=1):
        print(f"subject {subject_index}: true transitions at {dataset.change_points}, "
              f"alerts at {result.alarm_times.tolist()}")

    # Shape criteria (paper §5.2): transitions are detected "with plausible
    # accuracy" — a clear majority is found and alerts land at transitions.
    # (The paper likewise reports that not every change point triggered an
    # alert, especially between kinematically similar activities.)
    recalls = [matching.recall for _, _, matching in reports]
    precisions = [matching.precision for _, _, matching in reports]
    assert np.mean(recalls) >= 0.5
    assert np.mean(precisions) >= 0.6
