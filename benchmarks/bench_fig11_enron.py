"""Experiment E5 — paper Fig. 11 (ENRON e-mail corpus case study).

The paper builds one sender/recipient bipartite graph per week from the
Enron corpus and checks that the change-point scores of the seven graph
features coincide with known events of the company's collapse.  The corpus
is not available offline, so the harness uses the Enron-like simulator
(scripted organisational events perturbing a community e-mail model, see
DESIGN.md) and reports, per event, which features flagged it — the same
table-with-X's structure as Fig. 11.  Expected shape: a majority of the
scripted events are flagged by at least one feature.
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.datasets import EnronLikeStream
from repro.graphs import FEATURE_NAMES, feature_bag_sequences

from conftest import print_header, print_table

N_WEEKS = 100
DETECTION_WINDOW = 4  # an alert within this many weeks after an event counts


def run_experiment():
    stream = EnronLikeStream(
        n_weeks=N_WEEKS, random_state=5, mean_senders=60, mean_recipients=80
    )
    dataset = stream.generate()
    sequences = feature_bag_sequences(dataset.graphs)
    alarms_per_feature = {}
    for feature_id, bags in sequences.items():
        detector = BagChangePointDetector(
            tau=5, tau_test=3, signature_method="histogram", bins=24,
            n_bootstrap=80, random_state=0,
        )
        result = detector.detect(bags)
        alarms_per_feature[feature_id] = result.alarm_times.tolist()
    return dataset, alarms_per_feature


def test_fig11_enron_case_study(run_once):
    dataset, alarms_per_feature = run_once(run_experiment)

    print_header("Fig. 11 — Enron-like weekly e-mail stream: events vs alerts per feature")
    print("alerts per feature:")
    print_table(
        [
            {"feature": fid, "name": FEATURE_NAMES[fid], "alert weeks": alarms}
            for fid, alarms in alarms_per_feature.items()
        ]
    )

    rows = []
    detected_events = 0
    for week, label in sorted(dataset.metadata["events"].items()):
        detecting = [
            fid
            for fid, alarms in alarms_per_feature.items()
            if any(week <= alarm <= week + DETECTION_WINDOW for alarm in alarms)
        ]
        if detecting:
            detected_events += 1
        rows.append(
            {
                "week": week,
                "event": label,
                "detected": "X" if detecting else "",
                "by features": detecting or "-",
            }
        )
    print_table(rows)
    total_events = len(dataset.metadata["events"])
    print(f"\ndetected {detected_events}/{total_events} scripted events "
          f"with at least one of the seven features")

    # Shape criterion (paper §5.4): most events coincide with alerts of at
    # least one feature.
    assert detected_events >= int(np.ceil(0.6 * total_events))
