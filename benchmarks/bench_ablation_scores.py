"""Ablation A1 — scoreLR (Eq. 16) vs scoreKL (Eq. 17).

The paper notes that the symmetrised-KL score is "more conservative and
robust, but at the same time insensitive to minor changes", while the
log-likelihood-ratio score behaves the opposite way.  This ablation
quantifies that trade-off on Section-5.1-style data: detection of a clear
mean jump (dataset 4) and false alarms on a noisy no-change stream
(dataset 2).
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.datasets import make_confidence_interval_dataset
from repro.evaluation import score_auc

from conftest import print_header, print_table

N_SEEDS = 3


def run_experiment():
    rows = []
    for score_kind in ("kl", "lr"):
        jump_aucs, noise_alerts, jump_alerts = [], [], []
        for seed in range(N_SEEDS):
            jump = make_confidence_interval_dataset(4, random_state=100 + seed)
            noise = make_confidence_interval_dataset(2, random_state=200 + seed)
            detector_kwargs = dict(
                tau=5, tau_test=5, score=score_kind, signature_method="exact",
                n_bootstrap=120, random_state=seed,
            )
            jump_result = BagChangePointDetector(**detector_kwargs).detect(jump.bags)
            noise_result = BagChangePointDetector(**detector_kwargs).detect(noise.bags)
            jump_aucs.append(
                score_auc(jump_result.scores, jump_result.times, jump.change_points, tolerance=3)
            )
            jump_alerts.append(int(jump_result.alerts.sum()))
            noise_alerts.append(int(noise_result.alerts.sum()))
        rows.append(
            {
                "score": score_kind,
                "jump AUC (dataset 4)": round(float(np.nanmean(jump_aucs)), 3),
                "alerts on jump": float(np.mean(jump_alerts)),
                "false alerts on noise (dataset 2)": float(np.mean(noise_alerts)),
            }
        )
    return rows


def test_ablation_score_variants(run_once):
    rows = run_once(run_experiment)
    print_header("Ablation A1 — log-likelihood-ratio score vs symmetrised-KL score")
    print_table(rows)

    by_kind = {row["score"]: row for row in rows}
    # Both variants must see the clear jump.
    assert by_kind["kl"]["jump AUC (dataset 4)"] > 0.55
    assert by_kind["lr"]["jump AUC (dataset 4)"] > 0.55
    # The KL score must stay conservative on the noisy no-change stream.
    assert by_kind["kl"]["false alerts on noise (dataset 2)"] <= 1.0
