"""Benchmark: dense vs banded vs parallel pairwise-EMD computation.

Measures the wall-clock cost of preparing the distance values the
detector needs for a long bag sequence, three ways:

* ``dense``  — the full n x n pairwise matrix (what a naive
  implementation computes);
* ``banded`` — only the tau + tau' band, batched through
  :class:`repro.emd.PairwiseEMDEngine` (what the detector actually
  reads);
* ``banded+threads`` — the same band with the engine's thread pool.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_banded_engine.py          # 200 bags
    PYTHONPATH=src python benchmarks/bench_banded_engine.py --quick  # CI smoke

In full mode the script exits non-zero unless the banded path is at
least ``--threshold`` times faster than the dense one.
"""

from __future__ import annotations

import argparse
import time

from repro.datasets import make_confidence_interval_dataset
from repro.emd import PairwiseEMDEngine, emd_matrix
from repro.signatures import SignatureBuilder


def build_signatures(n_bags: int, bag_size: float, seed: int):
    dataset = make_confidence_interval_dataset(
        4, n_bags=n_bags, mean_bag_size=bag_size, random_state=seed
    )
    builder = SignatureBuilder("kmeans", n_clusters=6, random_state=seed)
    return builder.build_sequence(dataset.bags)


def timed(label, func):
    start = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - start
    return label, elapsed, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bags", type=int, default=200, help="sequence length")
    parser.add_argument("--bag-size", type=float, default=40.0, help="mean points per bag")
    parser.add_argument("--bandwidth", type=int, default=10, help="tau + tau' band width")
    parser.add_argument("--workers", type=int, default=4, help="thread-pool size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="minimum banded-vs-dense speed-up required in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce the threshold",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_bags = 60 if args.quick else args.bags
    bag_size = 20.0 if args.quick else args.bag_size
    signatures = build_signatures(n_bags, bag_size, args.seed)
    bandwidth = args.bandwidth

    rows = []
    n_dense_pairs = n_bags * (n_bags - 1) // 2

    label, dense_time, _ = timed("dense", lambda: emd_matrix(signatures))
    rows.append((label, n_dense_pairs, dense_time))

    serial_engine = PairwiseEMDEngine()
    label, banded_time, _ = timed(
        "banded", lambda: serial_engine.banded_matrix(signatures, bandwidth)
    )
    rows.append((label, serial_engine.n_evaluations, banded_time))

    with PairwiseEMDEngine(parallel_backend="thread", n_workers=args.workers) as threaded_engine:
        label, threaded_time, _ = timed(
            "banded+threads", lambda: threaded_engine.banded_matrix(signatures, bandwidth)
        )
        rows.append((label, threaded_engine.n_evaluations, threaded_time))

    print(f"\n{n_bags} bags, band width {bandwidth}, {args.workers} workers")
    print(f"{'method':<16}{'EMD solves':>12}{'seconds':>10}{'speed-up':>10}")
    for label, solves, elapsed in rows:
        speedup = dense_time / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<16}{solves:>12}{elapsed:>10.3f}{speedup:>10.2f}x")

    speedup = dense_time / banded_time if banded_time > 0 else float("inf")
    passed = args.quick or speedup >= args.threshold

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "banded_engine",
        {
            "n_bags": n_bags,
            "bandwidth": bandwidth,
            "dense_seconds": dense_time,
            "banded_seconds": banded_time,
            "threaded_seconds": threaded_time,
            "speedup_vs_dense": speedup,
            "threshold": args.threshold,
            "threshold_enforced": not args.quick,
        },
        passed=passed,
    )
    if not passed:
        print(f"FAIL: banded speed-up {speedup:.2f}x below threshold {args.threshold}x")
        return 1
    print(f"OK: banded path {speedup:.2f}x faster than dense")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
