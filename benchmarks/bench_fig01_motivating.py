"""Experiment E1 — paper Fig. 1 (motivating example).

A stream of 1-D bags switches from a single Gaussian to a 2-component and
then a 3-component mixture while the per-bag sample mean stays flat.  The
bag-of-data detector is run on the bags; ChangeFinder (SDAR) and kernel
change detection (one-class SVMs) are run on the sample-mean sequence, as
in the paper.  Expected shape: the bag-based score separates the change
regions (high AUC) while both baselines on the means stay near chance.

Scaled down from the paper's 150 steps x ~300 points to 90 steps x 150
points per bag.
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.baselines import ChangeFinder, KernelChangeDetection, score_on_means
from repro.datasets import make_mixture_stream
from repro.evaluation import score_auc

from conftest import print_header, print_series, print_table

STEPS_PER_REGIME = 30
BAG_SIZE = 150
TOLERANCE = 4


def run_experiment():
    dataset = make_mixture_stream(
        steps_per_regime=STEPS_PER_REGIME, bag_size=BAG_SIZE, random_state=0
    )
    detector = BagChangePointDetector(
        tau=5, tau_test=5, signature_method="histogram", bins=30,
        histogram_range=(-12.0, 12.0), n_bootstrap=100, random_state=0,
    )
    result = detector.detect(dataset.bags)
    proposed_auc = score_auc(result.scores, result.times, dataset.change_points, tolerance=TOLERANCE)

    changefinder_scores = score_on_means(ChangeFinder(dim=1, discount=0.05), dataset.bags)
    kcd_scores = score_on_means(KernelChangeDetection(window=10), dataset.bags)
    warmup = 15
    times = np.arange(warmup, len(dataset.bags))
    changefinder_auc = score_auc(
        changefinder_scores[warmup:], times, dataset.change_points, tolerance=TOLERANCE
    )
    kcd_auc = score_auc(kcd_scores[warmup:], times, dataset.change_points, tolerance=TOLERANCE)
    return dataset, result, proposed_auc, changefinder_auc, kcd_auc


def test_fig01_motivating_example(run_once):
    dataset, result, proposed_auc, changefinder_auc, kcd_auc = run_once(run_experiment)

    print_header(
        "Fig. 1 — motivating example: bag-of-data detector vs baselines on sample means"
    )
    print(f"stream: {len(dataset.bags)} bags, change points at {dataset.change_points} "
          f"(1 -> 2 -> 3 mixture components), ~{BAG_SIZE} points per bag")
    print_table(
        [
            {"method": "proposed (bags, scoreKL)", "input": "bags", "AUC vs change points": round(proposed_auc, 3)},
            {"method": "ChangeFinder / SDAR [8]", "input": "sample means", "AUC vs change points": round(changefinder_auc, 3)},
            {"method": "kernel change detection [9]", "input": "sample means", "AUC vs change points": round(kcd_auc, 3)},
        ]
    )
    print_series("proposed change-point score", result.times, result.scores, result.alerts)

    # Shape criteria from the paper: the proposed method reacts to the
    # mixture changes, the baselines on sample means do not.
    assert proposed_auc > 0.7
    assert proposed_auc > changefinder_auc
    assert proposed_auc > kcd_auc
