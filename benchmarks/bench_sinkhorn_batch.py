"""Benchmark: per-pair vs tensor-batched Sinkhorn transportation solves.

The detector's band build issues thousands of entropic transport solves
over one shared ground-cost matrix whenever signatures live on a common
support (d-dimensional histogram grids).  Solving them one
:func:`repro.emd.sinkhorn_transport` call at a time pays per-call Python
and small-array numpy overhead per pair;
:func:`repro.emd.sinkhorn_transport_batch` stacks all pairs into one
``(P, K, L)`` log-domain iteration with per-pair early exit.

Two sections:

* **solver** — the enforced comparison: P common-support histogram pairs
  solved per-pair vs batched, identical epsilon/tolerance/iteration
  budget, with a parity check on the resulting distances;
* **engine** — context: the full band build over histogram signatures
  through :class:`repro.emd.PairwiseEMDEngine`, exact LP backend vs
  ``backend="sinkhorn_batch"`` (approximate, but the workload the knob
  exists for).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sinkhorn_batch.py          # full
    PYTHONPATH=src python benchmarks/bench_sinkhorn_batch.py --quick  # CI smoke

In full mode the script exits non-zero unless the batched solver is at
least ``--threshold`` times faster than the per-pair loop (default 5x)
or the two disagree beyond 1e-8.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.emd import (
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    sinkhorn_transport,
    sinkhorn_transport_batch,
)
from repro.emd.ground_distance import cross_distance_matrix
from repro.signatures import Signature


def make_histogram_batch(n_pairs, side, dim, seed):
    """P pairs of histogram weights over one shared d-dimensional grid."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    n_bins = grid.shape[0]
    weights_a = rng.uniform(0.5, 3.0, size=(n_pairs, n_bins))
    weights_b = rng.uniform(0.5, 3.0, size=(n_pairs, n_bins))
    cost = cross_distance_matrix(grid, grid, "euclidean")
    return grid, cost, weights_a, weights_b


def make_histogram_signatures(n_bags, side, dim, seed):
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    signatures = []
    for i in range(n_bags):
        counts = rng.poisson(3.0, size=grid.shape[0]).astype(float)
        if counts.sum() == 0:
            counts[0] = 1.0
        signatures.append(Signature(grid[counts > 0], counts[counts > 0], label=i))
    return signatures


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=256, help="batch size P")
    parser.add_argument("--side", type=int, default=4, help="histogram bins per dimension")
    parser.add_argument("--dim", type=int, default=2, help="grid dimensionality")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--max-iter", type=int, default=500)
    parser.add_argument("--bags", type=int, default=60, help="engine-section sequence length")
    parser.add_argument("--bandwidth", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold", type=float, default=5.0,
        help="minimum batched-vs-per-pair speed-up required in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce the threshold",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_pairs = 64 if args.quick else args.pairs
    n_bags = 30 if args.quick else args.bags

    # ------------------------------------------------------------------ #
    # Solver section: identical problems, per-pair loop vs one batch.
    # ------------------------------------------------------------------ #
    grid, cost, weights_a, weights_b = make_histogram_batch(
        n_pairs, args.side, args.dim, args.seed
    )
    solver_kwargs = dict(epsilon=args.epsilon, max_iter=args.max_iter)

    def per_pair():
        return np.array(
            [
                sinkhorn_transport(cost, a, b, **solver_kwargs).distance
                for a, b in zip(weights_a, weights_b)
            ]
        )

    def batched():
        return sinkhorn_transport_batch(cost, weights_a, weights_b, **solver_kwargs).distances

    loop_time, loop_values = timed(per_pair)
    batch_time, batch_values = timed(batched)
    max_diff = float(np.abs(loop_values - batch_values).max())
    speedup = loop_time / batch_time if batch_time > 0 else float("inf")

    print(
        f"\nsolver: {n_pairs} pairs on a {args.side}^{args.dim} grid "
        f"({grid.shape[0]} atoms), epsilon={args.epsilon}"
    )
    print(f"{'method':<16}{'pairs/s':>12}{'seconds':>10}{'speed-up':>10}")
    for label, elapsed in (("per-pair", loop_time), ("batched", batch_time)):
        rate = n_pairs / elapsed if elapsed > 0 else float("inf")
        ratio = loop_time / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<16}{rate:>12.1f}{elapsed:>10.3f}{ratio:>10.2f}x")
    print(f"max |batched - per-pair| = {max_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Engine section: band build, exact LP vs batched Sinkhorn routing.
    # ------------------------------------------------------------------ #
    signatures = make_histogram_signatures(n_bags, args.side, args.dim, args.seed)
    n_band_pairs = BandedDistanceMatrix(n_bags, args.bandwidth).pair_indices()[0].size

    lp_time, _ = timed(
        lambda: PairwiseEMDEngine(backend="linprog").banded_matrix(
            signatures, args.bandwidth
        )
    )
    sinkhorn_engine = PairwiseEMDEngine(
        backend="sinkhorn_batch", sinkhorn_epsilon=args.epsilon,
        sinkhorn_max_iter=args.max_iter,
    )
    engine_time, _ = timed(
        lambda: sinkhorn_engine.banded_matrix(signatures, args.bandwidth)
    )
    print(
        f"\nengine: band build, {n_bags} bags, width {args.bandwidth} "
        f"({n_band_pairs} pairs, {sinkhorn_engine.n_sinkhorn_batched} batched)"
    )
    print(f"{'backend':<16}{'seconds':>10}{'speed-up':>10}")
    engine_speedup = lp_time / engine_time if engine_time > 0 else float("inf")
    print(f"{'exact linprog':<16}{lp_time:>10.3f}{1.0:>10.2f}x")
    print(f"{'sinkhorn_batch':<16}{engine_time:>10.3f}{engine_speedup:>10.2f}x")

    parity_ok = max_diff <= 1e-8
    speed_ok = args.quick or speedup >= args.threshold

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "sinkhorn_batch",
        {
            "n_pairs": n_pairs,
            "per_pair_seconds": loop_time,
            "batched_seconds": batch_time,
            "speedup": speedup,
            "max_parity_diff": max_diff,
            "engine_lp_seconds": lp_time,
            "engine_sinkhorn_seconds": engine_time,
            "engine_speedup": engine_speedup,
            "threshold": args.threshold,
            "threshold_enforced": not args.quick,
        },
        passed=parity_ok and speed_ok,
    )
    if not parity_ok:
        print(f"FAIL: batched and per-pair Sinkhorn disagree by {max_diff:.2e} > 1e-8")
        return 1
    if not speed_ok:
        print(f"FAIL: batched speed-up {speedup:.2f}x below threshold {args.threshold}x")
        return 1
    print(f"OK: batched solver {speedup:.2f}x faster than per-pair, parity {max_diff:.2e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
