"""Experiment E4 — paper Fig. 10 / Section 5.3 (synthetic bipartite streams).

Four synthetic streams of community-structured bipartite graphs are
generated; the parameters change every 20 steps with growing magnitude.
Each graph is reduced to seven bags of per-node/per-edge statistics and
the detector runs on every feature stream.  Expected shape (paper §5.3):
the edge-weight features 5 and 6 detect the changes in every dataset
(even early, small-magnitude ones), while the second-degree features 3
and 4 are largely uninformative for these generators.

Scaled down from 200-240 steps with ~200 nodes to 100 steps with ~150
nodes; datasets 1 and 2 are benchmarked (3 and 4 are variants of 2 and 1
and are covered by the unit/integration tests).
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.datasets import make_bipartite_stream
from repro.evaluation import match_alarms, score_auc
from repro.graphs import FEATURE_NAMES, feature_bag_sequences

from conftest import print_header, print_table

N_STEPS = 100
MEAN_NODES = 150
TOLERANCE = 6
DATASET_IDS = (1, 2)


def analyse_dataset(dataset_id: int):
    dataset = make_bipartite_stream(
        dataset_id, n_steps=N_STEPS, mean_nodes=MEAN_NODES, random_state=3
    )
    sequences = feature_bag_sequences(dataset.graphs)
    per_feature = {}
    for feature_id, bags in sequences.items():
        detector = BagChangePointDetector(
            tau=5, tau_test=5, signature_method="histogram", bins=20,
            n_bootstrap=80, random_state=0,
        )
        result = detector.detect(bags)
        matching = match_alarms(
            result.alarm_times.tolist(), dataset.change_points, tolerance=TOLERANCE
        )
        auc = score_auc(result.scores, result.times, dataset.change_points, tolerance=TOLERANCE)
        per_feature[feature_id] = (result, matching, auc)
    return dataset, per_feature


def run_experiment():
    return {dataset_id: analyse_dataset(dataset_id) for dataset_id in DATASET_IDS}


def test_fig10_bipartite_streams(run_once):
    outputs = run_once(run_experiment)

    print_header("Fig. 10 — change detection in synthetic bipartite-graph streams")
    for dataset_id, (dataset, per_feature) in outputs.items():
        print(f"\ndataset {dataset_id}: {len(dataset.graphs)} graphs, "
              f"change points every {dataset.metadata['block_length']} steps "
              f"at {dataset.change_points}")
        rows = []
        for feature_id, (result, matching, auc) in per_feature.items():
            rows.append(
                {
                    "feature": feature_id,
                    "name": FEATURE_NAMES[feature_id],
                    "alerts": int(result.alerts.sum()),
                    "detected changes": f"{matching.true_positives}/{len(dataset.change_points)}",
                    "recall": round(matching.recall, 2),
                    "precision": round(matching.precision, 2),
                    "AUC": round(auc, 3) if np.isfinite(auc) else "-",
                }
            )
        print_table(rows)

    # Shape criteria (paper §5.3): the weight features (5, 6) carry the
    # signal — every dataset's changes are detected by at least one of them
    # with good recall, and they beat the second-degree features (3, 4).
    for dataset_id, (dataset, per_feature) in outputs.items():
        recall_weight = max(per_feature[5][1].recall, per_feature[6][1].recall)
        recall_second = max(per_feature[3][1].recall, per_feature[4][1].recall)
        assert recall_weight >= 0.6, f"dataset {dataset_id}: weight features too weak"
        assert recall_weight >= recall_second, (
            f"dataset {dataset_id}: second-degree features unexpectedly beat weight features"
        )
