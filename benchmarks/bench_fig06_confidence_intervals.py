"""Experiment E2 — paper Fig. 6 / Section 5.1 (behaviour of confidence intervals).

Five synthetic 2-D bag datasets (20 bags each, n_t ~ Poisson(50),
tau = tau' = 5) probe the Bayesian-bootstrap confidence intervals:

1. large variance, no change           -> no alerts
2. 80% clean + 20% noise, no change    -> no alerts, wide intervals
3. slow circular drift, no change      -> no alerts, wide intervals
4. mean jump at t = 11                 -> alert near t = 11
5. drift speed-up at t = 11            -> the hard case (the paper misses it too)

For each dataset the harness regenerates the three panels of Fig. 6: the
pairwise EMD matrix, the 2-D MDS embedding of the bags, and the score
curve with its confidence interval and alerts.
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector
from repro.core import DetectorConfig
from repro.datasets import make_all_confidence_interval_datasets
from repro.embedding import classical_mds

from conftest import print_header, print_series, print_table


def run_experiment():
    datasets = make_all_confidence_interval_datasets(random_state=7)
    config = DetectorConfig(
        tau=5, tau_test=5, signature_method="exact", n_bootstrap=150, random_state=0
    )
    outputs = {}
    for dataset_id, dataset in datasets.items():
        detector = BagChangePointDetector(config)
        result = detector.detect(dataset.bags, return_distance_matrix=True)
        embedding = classical_mds(result.emd_matrix, n_components=2)
        outputs[dataset_id] = (dataset, result, embedding)
    return outputs


def test_fig06_confidence_interval_behaviour(run_once):
    outputs = run_once(run_experiment)

    print_header("Fig. 6 — behaviour of the Bayesian-bootstrap confidence intervals")
    summary_rows = []
    for dataset_id, (dataset, result, embedding) in outputs.items():
        mean_width = float(np.mean(result.upper - result.lower))
        summary_rows.append(
            {
                "dataset": dataset_id,
                "description": dataset.metadata["description"],
                "true change": dataset.change_points or "-",
                "alerts": result.alarm_times.tolist() or "-",
                "mean CI width": round(mean_width, 3),
                "max score": round(float(result.scores.max()), 3),
                "MDS stress": round(embedding.stress, 3),
            }
        )
    print_table(summary_rows)

    for dataset_id, (dataset, result, _) in outputs.items():
        print_series(f"dataset {dataset_id} score / alerts", result.times, result.scores, result.alerts)

    datasets = {k: v[0] for k, v in outputs.items()}
    results = {k: v[1] for k, v in outputs.items()}
    widths = {k: float(np.mean(results[k].upper - results[k].lower)) for k in results}

    # Shape criteria (paper Section 5.1):
    # no-change datasets raise no alarms ...
    for dataset_id in (1, 2, 3):
        assert not results[dataset_id].alerts.any(), f"dataset {dataset_id} raised a false alarm"
    # ... the clear jump of dataset 4 is caught near t=11 (index 10) ...
    alarm_times = results[4].alarm_times
    assert alarm_times.size > 0
    assert any(9 <= t <= 13 for t in alarm_times)
    # ... and the drifting datasets (3 and 5) have wider intervals than the
    # stationary dataset 1, which is what protects them from false alarms.
    # (The paper likewise reports no alert for dataset 5: the drift speed-up
    # is masked by the width of its confidence interval.)
    assert widths[3] > widths[1]
    assert widths[5] > widths[1]
