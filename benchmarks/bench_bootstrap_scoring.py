"""Benchmark: looped vs batched Bayesian-bootstrap interval computation.

The seed implementation computed each inspection point's confidence
interval with ``n_bootstrap`` scalar ``compute_score`` calls, every one of
them re-validating and re-logging the same window distance matrices.  The
:class:`repro.core.ScoreEngine` stacks the point score and all replicates
into one ``(B + 1, τ)`` weight matrix and reduces the whole stack with
matmul/einsum against log matrices computed once per window.

This benchmark prepares the banded EMD matrix for a bag sequence once,
then times only the interval stage both ways for B in {100, 500, 1000}
and checks the two paths produce the same intervals.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_bootstrap_scoring.py          # 200 bags
    PYTHONPATH=src python benchmarks/bench_bootstrap_scoring.py --quick  # CI smoke

In full mode the script exits non-zero unless the batched path is at
least ``--threshold`` times faster at B = 500.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.bootstrap import BayesianBootstrap, percentile_interval
from repro.core import DetectorConfig, ScoreEngine, WindowDistances, compute_score
from repro.datasets import make_confidence_interval_dataset
from repro.emd import PairwiseEMDEngine
from repro.information import resolve_weights
from repro.signatures import SignatureBuilder


def build_windows(n_bags, bag_size, tau, tau_test, seed):
    """Signatures -> banded EMD matrix -> one WindowDistances per point."""
    dataset = make_confidence_interval_dataset(
        4, n_bags=n_bags, mean_bag_size=bag_size, random_state=seed
    )
    builder = SignatureBuilder("kmeans", n_clusters=6, random_state=seed)
    signatures = builder.build_sequence(dataset.bags)
    banded = PairwiseEMDEngine().banded_matrix(signatures, tau + tau_test)
    windows = []
    for t in range(tau, len(signatures) - tau_test + 1):
        ref, test, cross = banded.window(t - tau, tau, tau_test)
        windows.append(WindowDistances(ref_pairwise=ref, test_pairwise=test, cross=cross))
    return windows


def looped_intervals(windows, score, tau, tau_test, n_bootstrap, alpha, seed):
    """The seed implementation: one scalar compute_score call per replicate."""
    ref_base = resolve_weights("uniform", tau, is_test=False)
    test_base = resolve_weights("uniform", tau_test, is_test=True)
    bootstrap = BayesianBootstrap(n_bootstrap, alpha=alpha, rng=np.random.default_rng(seed))
    intervals = []
    for window in windows:
        point = compute_score(score, window, ref_base, test_base)
        ref_w = bootstrap.resample_weights(tau, ref_base)
        test_w = bootstrap.resample_weights(tau_test, test_base)
        replicated = np.array(
            [compute_score(score, window, a, b) for a, b in zip(ref_w, test_w)]
        )
        intervals.append(percentile_interval(replicated, alpha, point=point))
    return intervals


def batched_intervals(windows, score, tau, tau_test, n_bootstrap, alpha, seed):
    """The ScoreEngine path: all replicates in one array contraction."""
    config = DetectorConfig(
        tau=tau, tau_test=tau_test, score=score, n_bootstrap=n_bootstrap, alpha=alpha
    )
    engine = ScoreEngine(config, rng=np.random.default_rng(seed))
    return [engine.point_and_interval(window)[1] for window in windows]


def max_interval_difference(a, b):
    return max(
        max(abs(x.lower - y.lower), abs(x.upper - y.upper), abs(x.point - y.point))
        for x, y in zip(a, b)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bags", type=int, default=200, help="sequence length")
    parser.add_argument("--bag-size", type=float, default=40.0, help="mean points per bag")
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--tau-test", type=int, default=5)
    parser.add_argument("--score", choices=("kl", "lr"), default="kl")
    parser.add_argument("--alpha", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="minimum batched-vs-looped speed-up required at B=500 in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce the threshold",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_bags = 60 if args.quick else args.bags
    bag_size = 20.0 if args.quick else args.bag_size
    replicate_counts = (50, 100) if args.quick else (100, 500, 1000)

    windows = build_windows(n_bags, bag_size, args.tau, args.tau_test, args.seed)
    print(f"\n{n_bags} bags -> {len(windows)} inspection points, "
          f"tau={args.tau}, tau'={args.tau_test}, score={args.score}")
    print(f"{'B':>6}{'looped s':>12}{'batched s':>12}{'speed-up':>10}{'max |diff|':>12}")

    from conftest import write_benchmark_json

    speedups = {}
    rows = []
    max_diff = 0.0
    for n_bootstrap in replicate_counts:
        start = time.perf_counter()
        looped = looped_intervals(
            windows, args.score, args.tau, args.tau_test, n_bootstrap, args.alpha, args.seed
        )
        looped_time = time.perf_counter() - start

        start = time.perf_counter()
        batched = batched_intervals(
            windows, args.score, args.tau, args.tau_test, n_bootstrap, args.alpha, args.seed
        )
        batched_time = time.perf_counter() - start

        diff = max_interval_difference(looped, batched)
        max_diff = max(max_diff, diff)
        speedup = looped_time / batched_time if batched_time > 0 else float("inf")
        speedups[n_bootstrap] = speedup
        rows.append(
            {
                "n_bootstrap": n_bootstrap,
                "looped_seconds": looped_time,
                "batched_seconds": batched_time,
                "speedup": speedup,
                "max_interval_diff": diff,
            }
        )
        print(f"{n_bootstrap:>6}{looped_time:>12.3f}{batched_time:>12.3f}"
              f"{speedup:>10.2f}x{diff:>12.2e}")
        if diff > 1e-9:
            write_benchmark_json(
                args.json, "bootstrap_scoring",
                {"rows": rows, "max_interval_diff": max_diff}, passed=False,
            )
            print(f"FAIL: batched intervals diverge from looped ones by {diff:.2e}")
            return 1

    gate = speedups.get(500, 0.0)
    passed = args.quick or gate >= args.threshold
    write_benchmark_json(
        args.json,
        "bootstrap_scoring",
        {
            "rows": rows,
            "max_interval_diff": max_diff,
            "speedup_at_500": gate,
            "threshold": args.threshold,
            "threshold_enforced": not args.quick,
        },
        passed=passed,
    )
    if not args.quick:
        if gate < args.threshold:
            print(f"FAIL: batched speed-up {gate:.2f}x at B=500 below threshold {args.threshold}x")
            return 1
        print(f"OK: batched interval stage {gate:.2f}x faster than looped at B=500")
    else:
        print("OK: quick smoke run (threshold not enforced)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
