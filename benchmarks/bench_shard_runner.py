"""Benchmark: sharded process-parallel band build vs the thread backend.

The band build over *irregular-support* signatures (k-means: every
support distinct) is the one workload the batched solvers cannot stack —
each pair needs its own LP, and the engine's thread pool is GIL-bound on
the per-pair Python/scipy overhead.  The sharded runner
(:mod:`repro.emd.sharding`) attacks exactly this case: the band's pair
set is split into row-block shards, the signatures are placed in
``multiprocessing.shared_memory`` once, and each worker process solves
its shards with a private serial engine — true CPU parallelism with
per-job payloads of a few integers.

Sections:

* **build** — the enforced comparison: the same irregular band built by
  the engine's thread pool (``parallel_backend="thread"``) and by the
  shard runner in process mode, both at ``--workers`` workers, with a
  1e-12 parity gate against the serial single-process build;
* **resume** — context: re-running the shard build against a directory
  of finished checkpoints (the recovery path after a kill), which only
  loads and merges.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_runner.py          # full
    PYTHONPATH=src python benchmarks/bench_shard_runner.py --quick  # CI smoke

In full mode the script exits non-zero unless the sharded process build
is at least ``--threshold`` times faster than the thread backend
(default 2.5x at 4 workers).  The 1e-12 parity gate applies in both
modes — a shard merge that differs from the plain build is a bug, not a
trade-off.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from repro.emd import EngineSettings, PairwiseEMDEngine, ShardPlan, ShardRunner
from repro.signatures import SignatureBuilder

PARITY_TOL = 1e-12


def make_irregular_signatures(n_bags, bag_size, n_clusters, seed):
    """k-means signatures: every support distinct, no batched stacking."""
    rng = np.random.default_rng(seed)
    bags = [rng.normal(0.0, 1.0, size=(bag_size, 3)) for _ in range(n_bags)]
    builder = SignatureBuilder("kmeans", n_clusters=n_clusters, random_state=seed)
    return builder.build_sequence(bags)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bags", type=int, default=90, help="sequence length")
    parser.add_argument("--bandwidth", type=int, default=10, help="band width tau + tau'")
    parser.add_argument("--bag-size", type=int, default=30, help="points per bag")
    parser.add_argument("--clusters", type=int, default=6, help="signature size K")
    parser.add_argument("--workers", type=int, default=4, help="worker count for both sides")
    parser.add_argument("--n-shards", type=int, default=8, help="row-block shard count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold", type=float, default=2.5,
        help="minimum sharded-vs-thread speed-up required in full mode",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs; reports but does not enforce "
        "the speed-up threshold (the 1e-12 parity gate still applies)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the key numbers as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    n_bags = 36 if args.quick else args.bags
    bandwidth = 6 if args.quick else args.bandwidth
    bag_size = 20 if args.quick else args.bag_size
    n_shards = 4 if args.quick else args.n_shards

    signatures = make_irregular_signatures(n_bags, bag_size, args.clusters, args.seed)
    plan = ShardPlan.build(n_bags, bandwidth, n_shards)
    settings = EngineSettings(backend="auto")

    # ------------------------------------------------------------------ #
    # Build section: serial reference, thread backend, sharded processes.
    # ------------------------------------------------------------------ #
    serial_time, reference = timed(
        lambda: PairwiseEMDEngine(backend="auto").banded_matrix(signatures, bandwidth)
    )

    with PairwiseEMDEngine(
        backend="auto", parallel_backend="thread", n_workers=args.workers
    ) as thread_engine:
        thread_time, thread_band = timed(
            lambda: thread_engine.banded_matrix(signatures, bandwidth)
        )

    shard_runner = ShardRunner(plan, settings, mode="process", n_workers=args.workers)
    shard_time, shard_band = timed(lambda: shard_runner.run(signatures))

    thread_diff = float(np.nanmax(np.abs(thread_band.band - reference.band)))
    shard_diff = float(np.nanmax(np.abs(shard_band.band - reference.band)))
    speedup = thread_time / shard_time if shard_time > 0 else float("inf")

    print(
        f"\nbuild: {plan.n_pairs} irregular band pairs ({n_bags} bags, "
        f"width {bandwidth}), {plan.n_shards} shards, {args.workers} workers"
    )
    print(f"{'method':<20}{'seconds':>10}{'vs serial':>12}{'vs thread':>12}")
    for label, elapsed in (
        ("serial", serial_time),
        ("thread pool", thread_time),
        ("sharded processes", shard_time),
    ):
        vs_serial = serial_time / elapsed if elapsed > 0 else float("inf")
        vs_thread = thread_time / elapsed if elapsed > 0 else float("inf")
        print(f"{label:<20}{elapsed:>10.3f}{vs_serial:>11.2f}x{vs_thread:>11.2f}x")
    print(f"max band |thread - serial|  = {thread_diff:.2e}")
    print(f"max band |sharded - serial| = {shard_diff:.2e}")

    # ------------------------------------------------------------------ #
    # Resume section: a fully checkpointed build only loads and merges.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        warm = ShardRunner(
            plan, settings, mode="serial", checkpoint_dir=checkpoint_dir
        )
        warm.run(signatures)
        resumer = ShardRunner(
            plan, settings, mode="serial", checkpoint_dir=checkpoint_dir
        )
        resume_time, resumed = timed(lambda: resumer.run(signatures))
    resume_diff = float(np.nanmax(np.abs(resumed.band - reference.band)))
    print(
        f"\nresume: all {plan.n_shards} shards from checkpoints in "
        f"{resume_time:.3f}s ({resumer.n_shards_resumed} resumed, "
        f"{resumer.n_shards_computed} computed), parity {resume_diff:.2e}"
    )

    max_diff = max(thread_diff, shard_diff, resume_diff)
    parity_ok = max_diff <= PARITY_TOL
    enforce = not args.quick
    speed_ok = args.quick or speedup >= args.threshold

    from conftest import write_benchmark_json

    write_benchmark_json(
        args.json,
        "shard_runner",
        {
            "n_bags": n_bags,
            "bandwidth": bandwidth,
            "n_pairs": plan.n_pairs,
            "n_shards": plan.n_shards,
            "workers": args.workers,
            "serial_seconds": serial_time,
            "thread_seconds": thread_time,
            "sharded_seconds": shard_time,
            "resume_seconds": resume_time,
            "speedup_vs_thread": speedup,
            "max_parity_diff": max_diff,
            "threshold": args.threshold,
            "threshold_enforced": enforce,
        },
        passed=parity_ok and speed_ok,
    )

    if not parity_ok:
        print(f"FAIL: sharded band disagrees with serial build by {max_diff:.2e} > {PARITY_TOL:.0e}")
        return 1
    if not speed_ok:
        print(
            f"FAIL: sharded speed-up {speedup:.2f}x over the thread backend "
            f"below threshold {args.threshold}x"
        )
        return 1
    print(
        f"OK: sharded processes {speedup:.2f}x faster than the thread pool, "
        f"parity {max_diff:.2e}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
