"""Classical multidimensional scaling (MDS) from a distance matrix.

The paper's Fig. 6 visualises each synthetic dataset by embedding the bags
into two dimensions with multidimensional scaling applied to the pairwise
EMD matrix.  Classical (Torgerson) MDS is implemented from scratch using
the double-centred squared-distance matrix and its top eigenvectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError


@dataclass(frozen=True)
class MDSResult:
    """Result of a classical MDS embedding.

    Attributes
    ----------
    embedding:
        Array of shape ``(n, n_components)`` with the embedded coordinates.
    eigenvalues:
        All eigenvalues of the double-centred Gram matrix in decreasing
        order (negative values indicate non-Euclidean structure in the
        distances).
    stress:
        Normalised residual ``sqrt(Σ (d_ij − δ_ij)² / Σ δ_ij²)`` between the
        embedded distances ``d`` and the input distances ``δ``.
    """

    embedding: np.ndarray
    eigenvalues: np.ndarray
    stress: float


def classical_mds(distance_matrix: np.ndarray, n_components: int = 2) -> MDSResult:
    """Embed points described by a distance matrix into Euclidean space.

    Parameters
    ----------
    distance_matrix:
        Symmetric non-negative ``(n, n)`` matrix with zero diagonal.
    n_components:
        Target dimensionality of the embedding.

    Returns
    -------
    MDSResult
    """
    n_components = check_positive_int(n_components, "n_components")
    dist = np.asarray(distance_matrix, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError("distance_matrix must be a square matrix")
    n = dist.shape[0]
    if n < 2:
        raise ValidationError("need at least two points to embed")
    if not np.allclose(dist, dist.T, atol=1e-8):
        raise ValidationError("distance_matrix must be symmetric")
    if np.any(dist < 0):
        raise ValidationError("distances must be non-negative")
    if n_components >= n:
        n_components = n - 1

    # Double centring of the squared distances: B = -1/2 J D^2 J.
    squared = dist**2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ squared @ centering

    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]

    top_values = np.clip(eigenvalues[:n_components], 0.0, None)
    embedding = eigenvectors[:, :n_components] * np.sqrt(top_values)[None, :]

    embedded_dist = np.sqrt(
        np.maximum(
            np.sum(embedding**2, axis=1)[:, None]
            - 2.0 * embedding @ embedding.T
            + np.sum(embedding**2, axis=1)[None, :],
            0.0,
        )
    )
    denom = float(np.sum(dist**2))
    stress = float(np.sqrt(np.sum((embedded_dist - dist) ** 2) / denom)) if denom > 0 else 0.0
    return MDSResult(embedding=embedding, eigenvalues=eigenvalues, stress=stress)
