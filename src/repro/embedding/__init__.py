"""Embedding utilities (classical MDS used for the Fig. 6 visualisations)."""

from .mds import MDSResult, classical_mds

__all__ = ["MDSResult", "classical_mds"]
