"""Segmentation of bag streams from detected change points.

The paper's introduction motivates change-point detection as a
preprocessing step: before fitting prediction models, time series should
be segmented at dramatic changes.  This module turns a
:class:`~repro.core.DetectionResult` (or an explicit list of alarm times)
into a segmentation of the original bag stream, merging alarms that are
closer than a minimum segment length and providing per-segment summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .results import DetectionResult


@dataclass(frozen=True)
class Segment:
    """A maximal run of bags between two consecutive (merged) change points.

    Attributes
    ----------
    start:
        Index of the first bag in the segment (inclusive).
    end:
        Index one past the last bag (exclusive), so ``end - start`` is the
        segment length.
    mean:
        Mean of all observations pooled over the segment's bags (``None``
        when the segmentation was built without the bags).
    n_observations:
        Total number of observations pooled over the segment's bags
        (0 when unknown).
    """

    start: int
    end: int
    mean: Optional[np.ndarray] = None
    n_observations: int = 0

    @property
    def length(self) -> int:
        """Number of bags in the segment."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(f"empty segment [{self.start}, {self.end})")


def merge_close_alarms(alarm_times: Sequence[int], min_gap: int) -> List[int]:
    """Collapse alarms that are fewer than ``min_gap`` steps apart.

    Consecutive alarms produced while the detector's windows straddle a
    single change are reported as one change point (the earliest alarm of
    each run is kept).
    """
    min_gap = check_positive_int(min_gap, "min_gap")
    merged: List[int] = []
    for alarm in sorted(int(a) for a in alarm_times):
        if not merged or alarm - merged[-1] >= min_gap:
            merged.append(alarm)
    return merged


def segment_stream(
    n_bags: int,
    alarm_times: Sequence[int],
    *,
    bags: Optional[Sequence[np.ndarray]] = None,
    min_segment_length: int = 1,
) -> List[Segment]:
    """Split ``[0, n_bags)`` into segments at the (merged) alarm times.

    Parameters
    ----------
    n_bags:
        Length of the stream being segmented.
    alarm_times:
        Change-point locations (each becomes the first index of a new
        segment).
    bags:
        The original bags; when given, per-segment means and observation
        counts are computed.
    min_segment_length:
        Alarms closer together than this are merged, so no returned segment
        is shorter than this many bags (except possibly the last one).
    """
    n_bags = check_positive_int(n_bags, "n_bags")
    if bags is not None and len(bags) != n_bags:
        raise ValidationError("bags must have length n_bags")
    boundaries = merge_close_alarms(
        [a for a in alarm_times if 0 < a < n_bags], min_segment_length
    )
    cuts = [0] + boundaries + [n_bags]
    segments: List[Segment] = []
    for start, end in zip(cuts[:-1], cuts[1:]):
        if end <= start:
            continue
        if bags is not None:
            pooled = np.vstack([np.asarray(bags[i], dtype=float).reshape(len(bags[i]), -1)
                                for i in range(start, end)])
            segments.append(
                Segment(start=start, end=end, mean=pooled.mean(axis=0), n_observations=len(pooled))
            )
        else:
            segments.append(Segment(start=start, end=end))
    return segments


def segment_from_result(
    result: DetectionResult,
    n_bags: int,
    *,
    bags: Optional[Sequence[np.ndarray]] = None,
    min_segment_length: Optional[int] = None,
) -> List[Segment]:
    """Segment a stream using the alarms of a :class:`DetectionResult`.

    ``min_segment_length`` defaults to the detector's test-window length
    (``tau_test``) when that is recorded in the result metadata, since
    alarms within one test window of each other almost always refer to the
    same underlying change.
    """
    if min_segment_length is None:
        min_segment_length = int(result.metadata.get("tau_test", 1))
    return segment_stream(
        n_bags,
        result.alarm_times.tolist(),
        bags=bags,
        min_segment_length=max(min_segment_length, 1),
    )
