"""Change-point scores on reference/test windows (paper Section 3.3).

Two scores are defined over the weighted reference set ``S_ref`` (the τ
bags before the inspection point ``t``) and the weighted test set
``S_test`` (the τ′ bags from ``t`` onward):

* :func:`score_likelihood_ratio` — Eq. 16,
  ``score_LR(S_t) = I(S_t; S_ref) − I(S_t; S_test \\ S_t)``;
* :func:`score_symmetric_kl` — Eq. 17,
  ``score_KL(S_t) = ½[H(S_ref,S_test) − H(S_ref) + H(S_ref,S_test) − H(S_test)]``.

Both are written as functions of precomputed EMD matrices and of the
window weight vectors, so the Bayesian bootstrap can resample the weights
cheaply without recomputing any distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ValidationError
from ..information import (
    DEFAULT_CONFIG,
    EstimatorConfig,
    auto_entropy,
    cross_entropy,
    information_content,
)


@dataclass(frozen=True)
class WindowDistances:
    """EMD matrices for one inspection point.

    Attributes
    ----------
    ref_pairwise:
        ``(τ, τ)`` symmetric matrix of EMDs within the reference window.
    test_pairwise:
        ``(τ′, τ′)`` symmetric matrix of EMDs within the test window.
    cross:
        ``(τ, τ′)`` matrix with ``EMD(S_ref_i, S_test_j)``.
    """

    ref_pairwise: np.ndarray
    test_pairwise: np.ndarray
    cross: np.ndarray

    def __post_init__(self) -> None:
        ref = np.asarray(self.ref_pairwise, dtype=float)
        test = np.asarray(self.test_pairwise, dtype=float)
        cross = np.asarray(self.cross, dtype=float)
        if ref.ndim != 2 or ref.shape[0] != ref.shape[1]:
            raise ValidationError("ref_pairwise must be a square matrix")
        if test.ndim != 2 or test.shape[0] != test.shape[1]:
            raise ValidationError("test_pairwise must be a square matrix")
        if cross.shape != (ref.shape[0], test.shape[0]):
            raise ValidationError(
                f"cross must have shape ({ref.shape[0]}, {test.shape[0]}), got {cross.shape}"
            )
        object.__setattr__(self, "ref_pairwise", ref)
        object.__setattr__(self, "test_pairwise", test)
        object.__setattr__(self, "cross", cross)

    @property
    def n_reference(self) -> int:
        """Number of bags in the reference window (τ)."""
        return int(self.ref_pairwise.shape[0])

    @property
    def n_test(self) -> int:
        """Number of bags in the test window (τ′)."""
        return int(self.test_pairwise.shape[0])


def _check_weights(distances: WindowDistances, ref_weights, test_weights):
    ref_w = np.asarray(ref_weights, dtype=float).ravel()
    test_w = np.asarray(test_weights, dtype=float).ravel()
    if ref_w.shape[0] != distances.n_reference:
        raise ValidationError(
            f"ref_weights has length {ref_w.shape[0]}, expected {distances.n_reference}"
        )
    if test_w.shape[0] != distances.n_test:
        raise ValidationError(
            f"test_weights has length {test_w.shape[0]}, expected {distances.n_test}"
        )
    return ref_w, test_w


def score_symmetric_kl(
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Symmetrised KL-divergence change-point score (paper Eq. 17).

    ``½ [D_KL(S_ref || S_test) + D_KL(S_test || S_ref)]`` expressed with the
    distance-based estimators as
    ``H(S_ref, S_test) − ½ (H(S_ref) + H(S_test))``.
    """
    ref_w, test_w = _check_weights(distances, ref_weights, test_weights)
    h_cross = cross_entropy(distances.cross, ref_w, test_w, config=config)
    h_ref = auto_entropy(distances.ref_pairwise, ref_w, config=config)
    h_test = auto_entropy(distances.test_pairwise, test_w, config=config)
    return h_cross - 0.5 * (h_ref + h_test)


def score_likelihood_ratio(
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    inspection_index: int = 0,
) -> float:
    """Log-likelihood-ratio change-point score (paper Eq. 16).

    ``score_LR(S_t) = I(S_t; S_ref) − I(S_t; S_test \\ S_t)``, where ``S_t``
    is the signature at position ``inspection_index`` of the test window
    (the paper always uses the first test bag, i.e. the bag observed at the
    inspection point itself).
    """
    ref_w, test_w = _check_weights(distances, ref_weights, test_weights)
    k = int(inspection_index)
    if not 0 <= k < distances.n_test:
        raise ConfigurationError(
            f"inspection_index must lie in [0, {distances.n_test}), got {k}"
        )
    if distances.n_test < 2:
        raise ConfigurationError("the test window needs at least 2 bags for score_LR")

    # I(S_t; S_ref): distances from every reference signature to S_t.
    dist_ref_to_t = distances.cross[:, k]
    info_ref = information_content(dist_ref_to_t, ref_w, config=config)

    # I(S_t; S_test \ S_t): remaining test signatures, weights renormalised.
    mask = np.arange(distances.n_test) != k
    dist_test_to_t = distances.test_pairwise[mask, k]
    remaining_weights = test_w[mask]
    if remaining_weights.sum() <= 0:
        raise ValidationError("test weights excluding the inspection bag must have positive mass")
    info_test = information_content(dist_test_to_t, remaining_weights, config=config)
    return info_ref - info_test


def compute_score(
    kind: str,
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    inspection_index: int = 0,
) -> float:
    """Dispatch to :func:`score_symmetric_kl` (``"kl"``) or
    :func:`score_likelihood_ratio` (``"lr"``).

    ``inspection_index`` selects the test bag ``S_t`` of the ``"lr"``
    score; the ``"kl"`` score does not use it.
    """
    name = str(kind).lower()
    if name == "kl":
        return score_symmetric_kl(distances, ref_weights, test_weights, config=config)
    if name == "lr":
        return score_likelihood_ratio(
            distances,
            ref_weights,
            test_weights,
            config=config,
            inspection_index=inspection_index,
        )
    raise ConfigurationError(f"unknown score kind {kind!r}; expected 'kl' or 'lr'")
