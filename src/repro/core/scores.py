"""Change-point scores on reference/test windows (paper Section 3.3).

Two scores are defined over the weighted reference set ``S_ref`` (the τ
bags before the inspection point ``t``) and the weighted test set
``S_test`` (the τ′ bags from ``t`` onward):

* :func:`score_likelihood_ratio` — Eq. 16,
  ``score_LR(S_t) = I(S_t; S_ref) − I(S_t; S_test \\ S_t)``;
* :func:`score_symmetric_kl` — Eq. 17,
  ``score_KL(S_t) = ½[H(S_ref,S_test) − H(S_ref) + H(S_ref,S_test) − H(S_test)]``.

Both are written as functions of precomputed EMD matrices and of the
window weight vectors, so the Bayesian bootstrap can resample the weights
cheaply without recomputing any distance.

Each score also has a ``*_batch`` form operating on a ``(B, τ)`` /
``(B, τ′)`` matrix of weight vectors at once.  The batched forms take a
:class:`LogWindowDistances` — the window's three EMD blocks already
clipped and logged — so the point score and all its bootstrap replicates
share a single log transform per window; :func:`score_batch` is the
batched counterpart of :func:`compute_score`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError, ValidationError
from ..information import (
    DEFAULT_CONFIG,
    EstimatorConfig,
    auto_entropy,
    auto_entropy_batch,
    cross_entropy,
    cross_entropy_batch,
    information_content,
    information_content_batch,
    log_distances,
)


@dataclass(frozen=True)
class WindowDistances:
    """EMD matrices for one inspection point.

    Attributes
    ----------
    ref_pairwise:
        ``(τ, τ)`` symmetric matrix of EMDs within the reference window.
    test_pairwise:
        ``(τ′, τ′)`` symmetric matrix of EMDs within the test window.
    cross:
        ``(τ, τ′)`` matrix with ``EMD(S_ref_i, S_test_j)``.
    """

    ref_pairwise: np.ndarray
    test_pairwise: np.ndarray
    cross: np.ndarray

    def __post_init__(self) -> None:
        ref = np.asarray(self.ref_pairwise, dtype=float)
        test = np.asarray(self.test_pairwise, dtype=float)
        cross = np.asarray(self.cross, dtype=float)
        if ref.ndim != 2 or ref.shape[0] != ref.shape[1]:
            raise ValidationError("ref_pairwise must be a square matrix")
        if test.ndim != 2 or test.shape[0] != test.shape[1]:
            raise ValidationError("test_pairwise must be a square matrix")
        if cross.shape != (ref.shape[0], test.shape[0]):
            raise ValidationError(
                f"cross must have shape ({ref.shape[0]}, {test.shape[0]}), got {cross.shape}"
            )
        object.__setattr__(self, "ref_pairwise", ref)
        object.__setattr__(self, "test_pairwise", test)
        object.__setattr__(self, "cross", cross)

    @property
    def n_reference(self) -> int:
        """Number of bags in the reference window (τ)."""
        return int(self.ref_pairwise.shape[0])

    @property
    def n_test(self) -> int:
        """Number of bags in the test window (τ′)."""
        return int(self.test_pairwise.shape[0])


@dataclass(frozen=True)
class LogWindowDistances:
    """Clipped-and-logged EMD matrices for one inspection point.

    The information estimators only ever consume ``log(max(d, floor))`` of
    the window distances, so precomputing that transform once per window
    lets the point score and every bootstrap replicate reuse it.  Built
    from a :class:`WindowDistances` via :meth:`from_window`, or directly
    from already-logged blocks (the online detector maintains a rolling
    logged matrix across pushes).

    Attributes
    ----------
    ref_log:
        ``(τ, τ)`` log-distance matrix of the reference window.
    test_log:
        ``(τ′, τ′)`` log-distance matrix of the test window.
    cross_log:
        ``(τ, τ′)`` log-distance matrix between the two windows.
    config:
        Estimator constants the blocks were logged under (``min_distance``
        is already applied; ``constant``/``dimension`` are applied by the
        estimators).
    """

    ref_log: np.ndarray
    test_log: np.ndarray
    cross_log: np.ndarray
    config: EstimatorConfig = field(default_factory=EstimatorConfig)

    def __post_init__(self) -> None:
        ref = np.asarray(self.ref_log, dtype=float)
        test = np.asarray(self.test_log, dtype=float)
        cross = np.asarray(self.cross_log, dtype=float)
        if ref.ndim != 2 or ref.shape[0] != ref.shape[1]:
            raise ValidationError("ref_log must be a square matrix")
        if test.ndim != 2 or test.shape[0] != test.shape[1]:
            raise ValidationError("test_log must be a square matrix")
        if cross.shape != (ref.shape[0], test.shape[0]):
            raise ValidationError(
                f"cross_log must have shape ({ref.shape[0]}, {test.shape[0]}), got {cross.shape}"
            )
        object.__setattr__(self, "ref_log", ref)
        object.__setattr__(self, "test_log", test)
        object.__setattr__(self, "cross_log", cross)

    @classmethod
    def from_window(
        cls, window: WindowDistances, config: EstimatorConfig = DEFAULT_CONFIG
    ) -> "LogWindowDistances":
        """Clip and log the three blocks of ``window`` exactly once."""
        return cls(
            ref_log=log_distances(window.ref_pairwise, config),
            test_log=log_distances(window.test_pairwise, config),
            cross_log=log_distances(window.cross, config),
            config=config,
        )

    @property
    def n_reference(self) -> int:
        """Number of bags in the reference window (τ)."""
        return int(self.ref_log.shape[0])

    @property
    def n_test(self) -> int:
        """Number of bags in the test window (τ′)."""
        return int(self.test_log.shape[0])


def _check_weights(
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    ref_w = np.asarray(ref_weights, dtype=float).ravel()
    test_w = np.asarray(test_weights, dtype=float).ravel()
    if ref_w.shape[0] != distances.n_reference:
        raise ValidationError(
            f"ref_weights has length {ref_w.shape[0]}, expected {distances.n_reference}"
        )
    if test_w.shape[0] != distances.n_test:
        raise ValidationError(
            f"test_weights has length {test_w.shape[0]}, expected {distances.n_test}"
        )
    return ref_w, test_w


def score_symmetric_kl(
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Symmetrised KL-divergence change-point score (paper Eq. 17).

    ``½ [D_KL(S_ref || S_test) + D_KL(S_test || S_ref)]`` expressed with the
    distance-based estimators as
    ``H(S_ref, S_test) − ½ (H(S_ref) + H(S_test))``.
    """
    ref_w, test_w = _check_weights(distances, ref_weights, test_weights)
    h_cross = cross_entropy(distances.cross, ref_w, test_w, config=config)
    h_ref = auto_entropy(distances.ref_pairwise, ref_w, config=config)
    h_test = auto_entropy(distances.test_pairwise, test_w, config=config)
    return h_cross - 0.5 * (h_ref + h_test)


def score_likelihood_ratio(
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    inspection_index: int = 0,
) -> float:
    """Log-likelihood-ratio change-point score (paper Eq. 16).

    ``score_LR(S_t) = I(S_t; S_ref) − I(S_t; S_test \\ S_t)``, where ``S_t``
    is the signature at position ``inspection_index`` of the test window
    (the paper always uses the first test bag, i.e. the bag observed at the
    inspection point itself).
    """
    ref_w, test_w = _check_weights(distances, ref_weights, test_weights)
    k = int(inspection_index)
    if not 0 <= k < distances.n_test:
        raise ConfigurationError(
            f"inspection_index must lie in [0, {distances.n_test}), got {k}"
        )
    if distances.n_test < 2:
        raise ConfigurationError("the test window needs at least 2 bags for score_LR")

    # I(S_t; S_ref): distances from every reference signature to S_t.
    dist_ref_to_t = distances.cross[:, k]
    info_ref = information_content(dist_ref_to_t, ref_w, config=config)

    # I(S_t; S_test \ S_t): remaining test signatures, weights renormalised.
    mask = np.arange(distances.n_test) != k
    dist_test_to_t = distances.test_pairwise[mask, k]
    remaining_weights = test_w[mask]
    if remaining_weights.sum() <= 0:
        raise ValidationError("test weights excluding the inspection bag must have positive mass")
    info_test = information_content(dist_test_to_t, remaining_weights, config=config)
    return info_ref - info_test


def compute_score(
    kind: str,
    distances: WindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    inspection_index: int = 0,
) -> float:
    """Dispatch to :func:`score_symmetric_kl` (``"kl"``) or
    :func:`score_likelihood_ratio` (``"lr"``).

    ``inspection_index`` selects the test bag ``S_t`` of the ``"lr"``
    score; the ``"kl"`` score does not use it.
    """
    name = str(kind).lower()
    if name == "kl":
        return score_symmetric_kl(distances, ref_weights, test_weights, config=config)
    if name == "lr":
        return score_likelihood_ratio(
            distances,
            ref_weights,
            test_weights,
            config=config,
            inspection_index=inspection_index,
        )
    raise ConfigurationError(f"unknown score kind {kind!r}; expected 'kl' or 'lr'")


# ---------------------------------------------------------------------- #
# Batched scores (all bootstrap replicates in one shot)
# ---------------------------------------------------------------------- #
def _check_weight_batches(ref_weights, test_weights) -> tuple:
    """Promote both weight batches to 2-D and check their batch sizes match.

    Per-matrix validation (column counts, finiteness, non-negativity,
    normalisation) happens inside the batched estimators.
    """
    ref_w = np.asarray(ref_weights, dtype=float)
    test_w = np.asarray(test_weights, dtype=float)
    if ref_w.ndim == 1:
        ref_w = ref_w[None, :]
    if test_w.ndim == 1:
        test_w = test_w[None, :]
    if ref_w.ndim != 2 or test_w.ndim != 2:
        raise ValidationError("batched weights must be (B, n) matrices")
    if ref_w.shape[0] != test_w.shape[0]:
        raise ValidationError(
            f"ref_weights ({ref_w.shape[0]} rows) and test_weights ({test_w.shape[0]} rows) "
            "must have the same batch size"
        )
    return ref_w, test_w


def score_symmetric_kl_batch(
    log_window: LogWindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
) -> np.ndarray:
    """Symmetrised KL score (Eq. 17) for a batch of weight-vector pairs.

    Row ``b`` of the result equals :func:`score_symmetric_kl` evaluated on
    row ``b`` of ``ref_weights``/``test_weights`` (up to floating-point
    reassociation, within ~1e-12); the three entropy terms reduce over all
    ``B`` replicates with single matmul/einsum contractions against the
    precomputed log blocks.
    """
    ref_w, test_w = _check_weight_batches(ref_weights, test_weights)
    config = log_window.config
    h_cross = cross_entropy_batch(
        None, ref_w, test_w, config=config, precomputed_log=log_window.cross_log
    )
    h_ref = auto_entropy_batch(
        None, ref_w, config=config, precomputed_log=log_window.ref_log
    )
    h_test = auto_entropy_batch(
        None, test_w, config=config, precomputed_log=log_window.test_log
    )
    return h_cross - 0.5 * (h_ref + h_test)


def score_likelihood_ratio_batch(
    log_window: LogWindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    inspection_index: int = 0,
) -> np.ndarray:
    """Log-likelihood-ratio score (Eq. 16) for a batch of weight-vector pairs.

    Row ``b`` of the result equals :func:`score_likelihood_ratio` on row
    ``b`` of the weight matrices; both information-content terms are
    weighted sums over one column of the log blocks, evaluated for all
    replicates with a single matrix-vector product each.
    """
    ref_w, test_w = _check_weight_batches(ref_weights, test_weights)
    if test_w.shape[1] != log_window.n_test:
        raise ValidationError(
            f"test_weights has {test_w.shape[1]} columns, expected {log_window.n_test}"
        )
    config = log_window.config
    k = int(inspection_index)
    if not 0 <= k < log_window.n_test:
        raise ConfigurationError(
            f"inspection_index must lie in [0, {log_window.n_test}), got {k}"
        )
    if log_window.n_test < 2:
        raise ConfigurationError("the test window needs at least 2 bags for score_LR")

    info_ref = information_content_batch(
        None, ref_w, config=config, precomputed_log=log_window.cross_log[:, k]
    )
    mask = np.arange(log_window.n_test) != k
    remaining = test_w[:, mask]
    if np.any(remaining.sum(axis=1) <= 0):
        raise ValidationError("test weights excluding the inspection bag must have positive mass")
    info_test = information_content_batch(
        None, remaining, config=config, precomputed_log=log_window.test_log[mask, k]
    )
    return info_ref - info_test


def score_batch(
    kind: str,
    log_window: LogWindowDistances,
    ref_weights: np.ndarray,
    test_weights: np.ndarray,
    *,
    inspection_index: int = 0,
) -> np.ndarray:
    """Batched counterpart of :func:`compute_score`.

    Dispatches to :func:`score_symmetric_kl_batch` (``"kl"``) or
    :func:`score_likelihood_ratio_batch` (``"lr"``); returns one score per
    row of the ``(B, τ)`` / ``(B, τ′)`` weight matrices.
    """
    name = str(kind).lower()
    if name == "kl":
        return score_symmetric_kl_batch(log_window, ref_weights, test_weights)
    if name == "lr":
        return score_likelihood_ratio_batch(
            log_window, ref_weights, test_weights, inspection_index=inspection_index
        )
    raise ConfigurationError(f"unknown score kind {kind!r}; expected 'kl' or 'lr'")
