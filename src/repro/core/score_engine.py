"""Batched bootstrap scoring engine shared by both detectors.

:class:`ScoreEngine` owns everything the detectors need *after* the EMD
values of a window are known: the estimator constants, the base window
weights (paper Eq. 15 / uniform), and the Bayesian bootstrap.  Its
central entry point :meth:`ScoreEngine.point_and_interval` computes the
point score and its percentile confidence interval (paper Section 4.2)
for one inspection point:

1. the window's three EMD blocks are clipped and logged exactly once
   (:class:`~repro.core.scores.LogWindowDistances`);
2. the base weights and all ``B`` resampled weight vectors are stacked
   into one ``(B + 1, τ)`` / ``(B + 1, τ′)`` matrix pair;
3. a single :func:`~repro.core.scores.score_batch` call reduces the whole
   stack with matmul/einsum contractions — no per-replicate Python calls.

This replaces the seed implementation's loop of ``n_bootstrap`` scalar
``compute_score`` calls per inspection point, which re-validated and
re-logged the same matrices for every replicate.  Scores agree with the
scalar path to within ~1e-12 (floating-point reassociation only).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .._validation import as_rng
from ..bootstrap import BayesianBootstrap, ConfidenceInterval, percentile_interval
from ..exceptions import ConfigurationError
from ..information import resolve_weights
from .config import DetectorConfig
from .scores import LogWindowDistances, WindowDistances, score_batch

WindowInput = Union[WindowDistances, LogWindowDistances]


class ScoreEngine:
    """Computes change-point scores and bootstrap intervals for windows.

    Parameters
    ----------
    config:
        The detector configuration; the engine reads the score kind, the
        window lengths, the weighting scheme, the estimator constants and
        the bootstrap parameters from it.
    rng:
        Generator (or seed) driving the Dirichlet weight resampling.
        Detectors pass their own generator so the bootstrap draws stay on
        the same stream as signature construction.

    Attributes
    ----------
    ref_weights, test_weights:
        The base (non-resampled) weight vectors of the reference and test
        windows, resolved from ``config.weighting``.
    bootstrap:
        The :class:`~repro.bootstrap.BayesianBootstrap` used for the
        confidence intervals.
    """

    def __init__(
        self,
        config: DetectorConfig,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.config = config
        self.ref_weights = resolve_weights(config.weighting, config.tau, is_test=False)
        self.test_weights = resolve_weights(config.weighting, config.tau_test, is_test=True)
        self.bootstrap = BayesianBootstrap(
            config.n_bootstrap,
            alpha=config.alpha,
            rng=as_rng(rng if rng is not None else config.random_state),
        )

    # ------------------------------------------------------------------ #
    # Window preparation
    # ------------------------------------------------------------------ #
    def log_window(self, window: WindowInput) -> LogWindowDistances:
        """Clip-and-log ``window`` once (pass-through if already logged).

        A prebuilt :class:`~repro.core.scores.LogWindowDistances` must have
        been logged under this engine's estimator constants — a mismatch
        would silently score with the wrong floor/dimension.
        """
        if isinstance(window, LogWindowDistances):
            if window.config != self.config.estimator:
                raise ConfigurationError(
                    "LogWindowDistances was built with estimator constants "
                    f"{window.config} but this ScoreEngine uses {self.config.estimator}"
                )
            return window
        return LogWindowDistances.from_window(window, self.config.estimator)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def point_score(self, window: WindowInput) -> float:
        """Score of the window under the base (non-resampled) weights."""
        scores = score_batch(
            self.config.score,
            self.log_window(window),
            self.ref_weights,
            self.test_weights,
            inspection_index=self.config.lr_inspection_index,
        )
        return float(scores[0])

    def replicate_scores(
        self, window: WindowInput, *, include_point: bool = False
    ) -> np.ndarray:
        """All ``B`` bootstrap-replicated scores of the window.

        With ``include_point=True`` the base-weight score is prepended, so
        one batched call yields the point score and every replicate from
        the same logged matrices.
        """
        cfg = self.config
        log_window = self.log_window(window)
        ref_resampled = self.bootstrap.resample_weights(cfg.tau, self.ref_weights)
        test_resampled = self.bootstrap.resample_weights(cfg.tau_test, self.test_weights)
        if include_point:
            ref_resampled = np.vstack([self.ref_weights[None, :], ref_resampled])
            test_resampled = np.vstack([self.test_weights[None, :], test_resampled])
        return score_batch(
            cfg.score,
            log_window,
            ref_resampled,
            test_resampled,
            inspection_index=cfg.lr_inspection_index,
        )

    def masked_point_and_interval(self) -> Tuple[float, ConfidenceInterval]:
        """NaN score and interval for a window holding masked distances.

        A degraded stream (one whose solver failed a push) carries NaN
        entries in its rolling window; the estimators cannot score such
        a window, but the stream must keep emitting.  This draws — and
        discards — exactly the bootstrap weights a scored window would
        consume, so the stream's generator stays in lockstep with an
        unfaulted run and its scores re-converge bit-for-bit once the
        masked bag has left the window.
        """
        cfg = self.config
        self.bootstrap.resample_weights(cfg.tau, self.ref_weights)
        self.bootstrap.resample_weights(cfg.tau_test, self.test_weights)
        nan = float("nan")
        return nan, ConfidenceInterval(lower=nan, upper=nan, level=1.0 - cfg.alpha, point=nan)

    def point_and_interval(
        self, window: WindowInput
    ) -> Tuple[float, ConfidenceInterval]:
        """Point score and percentile confidence interval for one window.

        Accepts either raw :class:`~repro.core.scores.WindowDistances` or a
        prebuilt :class:`~repro.core.scores.LogWindowDistances` (the online
        detector maintains the latter incrementally across pushes).
        """
        scores = self.replicate_scores(window, include_point=True)
        point = float(scores[0])
        interval = percentile_interval(scores[1:], self.config.alpha, point=point)
        return point, interval
