"""Streaming (online) variant of the bag-of-data change-point detector.

Bags are pushed one at a time; a score for inspection point ``t`` can be
emitted as soon as the τ′-th bag of its test window (i.e. bag
``t + τ′ − 1``) has arrived, so the detector reports with an inherent lag
of τ′ − 1 steps.

Consecutive inspection points share all but one signature, so the
detector keeps one rolling ``(τ + τ′) × (τ + τ′)`` matrix of pairwise
EMD values and, on each :meth:`push`, shifts it up-left by one row and
column (reusing every overlapping entry) and computes only the
``τ + τ′ − 1`` new distances that involve the arriving bag — batched
through :class:`~repro.emd.PairwiseEMDEngine`.  Memory stays bounded by
O((τ + τ′)²) distances, and (with ``DetectorConfig.history_limit`` set)
by O(history_limit) retained score points.

Scoring is delegated to the batched
:class:`~repro.core.score_engine.ScoreEngine`.  A second rolling matrix
holds the *clipped-and-logged* distances (the only form the estimators
consume), so each push logs just the ``τ + τ′ − 1`` arriving values and
every inspection point reuses the logged entries of all previous pushes.

Robustness contract (the streaming service builds on these):

* **Failed pushes are retryable.**  :meth:`push` mutates no detector
  state — not the signature window, not the rolling matrices, not even
  the random generator — until the arriving bag's distances have been
  solved.  A :class:`~repro.exceptions.SolverError` mid-push therefore
  leaves the detector exactly as it was, and retrying the same push
  replays the identical signature-construction draws.
* **State is serialisable.**  :meth:`state_dict` captures everything a
  bit-identical continuation needs (signature window, rolling matrices,
  RNG bit-generator state, threshold intervals, history tail) and
  :meth:`from_state_dict` rebuilds a detector whose subsequent scores
  match an uninterrupted run to float equality.  The stamped on-disk
  form lives in :mod:`repro.service.snapshots`.
* **Lifecycle is explicit.**  A closed detector raises
  :class:`~repro.exceptions.DetectorClosedError` from :meth:`push`
  instead of surfacing whatever the released engine happens to throw,
  and :meth:`close` is idempotent.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .._validation import as_rng
from ..bootstrap import ConfidenceInterval
from ..emd import PairwiseEMDEngine
from ..exceptions import (
    CheckpointError,
    DetectorClosedError,
    SolverError,
    ValidationError,
)
from ..signatures import Signature, SignatureBuilder
from .config import DetectorConfig
from .results import DetectionResult, ScorePoint
from .score_engine import ScoreEngine
from .scores import LogWindowDistances
from .thresholding import AdaptiveThreshold

#: Version of the :meth:`OnlineBagDetector.state_dict` layout; bumped on
#: layout changes so a stale snapshot is rejected instead of misread.
STATE_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class PendingPush:
    """The solve-ready first half of a :meth:`OnlineBagDetector.push`.

    Produced by :meth:`OnlineBagDetector.prepare`: the arriving bag has
    been quantised into its signature and the ``(older, new)`` signature
    pairs whose distances the push needs have been enumerated, but *no*
    detector state has been mutated yet (only the shared random
    generator has advanced past the signature-construction draws, which
    :meth:`OnlineBagDetector.rollback` rewinds).  A caller — typically
    :class:`repro.service.StreamSupervisor`'s cross-stream batched
    drain — solves :attr:`pairs` however it likes (stacked with other
    streams' pairs, per-pair, masked) and hands the distances to
    :meth:`OnlineBagDetector.commit`.

    Attributes
    ----------
    index:
        The arriving bag's stream index (``detector.n_seen`` at
        :meth:`~OnlineBagDetector.prepare` time).  Commit and rollback
        validate it, so a stale or doubly-committed pending push is an
        error rather than silent corruption.
    signature:
        The quantised arriving bag.
    pairs:
        The ``(older, signature)`` pairs needing distances, oldest
        first — exactly the order :meth:`~OnlineBagDetector.push` would
        solve them in, so scattering externally computed distances
        commits bit-identically.
    rng_state:
        The generator's bit-generator state captured *before* the
        signature build; :meth:`~OnlineBagDetector.rollback` restores
        it so a retried push replays identical draws.
    """

    index: int
    signature: Signature
    pairs: Tuple[Tuple[Signature, Signature], ...]
    rng_state: Dict[str, Any]


class OnlineBagDetector:
    """Incremental detector consuming one bag per :meth:`push` call.

    Parameters
    ----------
    config:
        Detector configuration (same object as the offline detector).
        Keyword arguments may be passed instead and are forwarded to the
        config.

    Notes
    -----
    :meth:`push` returns ``None`` until enough bags have arrived to form a
    complete reference + test window; afterwards it returns one
    :class:`~repro.core.ScorePoint` per call, for the inspection point
    ``t = current_index − τ′ + 1``.
    """

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs: object) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)  # type: ignore[arg-type]
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self._rng = as_rng(config.random_state)
        self._builder = SignatureBuilder(
            config.signature_method,
            n_clusters=config.n_clusters,
            bins=config.bins,
            histogram_range=config.histogram_range,
            random_state=self._rng,
        )
        self._engine = PairwiseEMDEngine(
            ground_distance=config.ground_distance,
            backend=config.emd_backend,
            parallel_backend=config.parallel_backend,
            n_workers=config.n_workers,
            sinkhorn_epsilon=config.sinkhorn_epsilon,
            sinkhorn_max_iter=config.sinkhorn_max_iter,
            sinkhorn_tol=config.sinkhorn_tol,
            sinkhorn_anneal=config.sinkhorn_anneal,
        )
        self._score_engine = ScoreEngine(config, rng=self._rng)
        self._threshold = AdaptiveThreshold(config.tau_test)

        span = config.window_span
        self._signatures: Deque[Tuple[int, Signature]] = deque(maxlen=span)
        # Rolling pairwise-EMD matrix of the signatures currently in the
        # window: entry (a, b) is the distance between the a-th and b-th
        # oldest of them.  Shifted, not rebuilt, as the window slides.
        self._window_matrix = np.zeros((span, span), dtype=float)
        # Rolling clipped-and-logged copy of the same matrix: each push
        # logs only the arriving row/column, so inspection points never
        # re-log distances carried over from previous pushes.
        self._log_floor = float(np.log(config.estimator.min_distance))
        self._log_matrix = np.full((span, span), self._log_floor, dtype=float)
        self._next_index = 0
        # Emitted score points; bounded when config.history_limit is set
        # so a long-running stream's memory stays O(limit).
        self._history: Deque[ScorePoint] = deque(maxlen=config.history_limit)
        self._history_result: Optional[DetectionResult] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the EMD engine's worker pool (idempotent).

        Only needed when ``parallel_backend`` is ``"thread"``/``"process"``
        — the engine keeps its pool alive across pushes.  A closed
        detector raises :class:`~repro.exceptions.DetectorClosedError`
        from :meth:`push`; its history and :meth:`state_dict` stay
        readable, so a supervised stream can still be snapshotted during
        teardown.
        """
        if self._closed:
            return
        self._engine.close()
        self._closed = True

    def __enter__(self) -> "OnlineBagDetector":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DetectorClosedError(
                "this OnlineBagDetector has been closed and cannot consume "
                "more bags; create a new detector, or restore one from a "
                "snapshot with OnlineBagDetector.from_state_dict()"
            )

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _pending_pairs(self, signature: Signature) -> Tuple[Tuple[Signature, Signature], ...]:
        """The ``(older, new)`` pairs an arriving signature needs solved.

        Exactly ``len(window) − 1`` pairs (τ + τ′ − 1 once the window is
        full); when the window is full its oldest signature is about to
        leave and needs no distance.  Older signature first in each
        pair, matching the offline band's (i, j) ordering so both paths
        agree bit-for-bit.
        """
        staying = list(self._signatures)
        if len(staying) == self.config.window_span:
            staying = staying[1:]
        return tuple((entry[1], signature) for entry in staying)

    def _apply_distances(self, signature: Signature, new_distances: np.ndarray) -> None:
        """Slide the rolling matrix and scatter the arriving distances in.

        The mutation half of a push: every entry except the arriving
        row/column is reused from the previous step.  NaN distances (the
        masked/degraded path) propagate into the log matrix, where
        :meth:`_emit` detects them.
        """
        span = self.config.window_span
        if len(self._signatures) == span:
            # The oldest signature leaves: shift the kept blocks up-left.
            self._window_matrix[:-1, :-1] = self._window_matrix[1:, 1:]
            self._log_matrix[:-1, :-1] = self._log_matrix[1:, 1:]
        self._signatures.append((self._next_index, signature))
        m = len(self._signatures)
        if m > 1:
            self._window_matrix[m - 1, : m - 1] = new_distances
            self._window_matrix[: m - 1, m - 1] = new_distances
            # np.maximum propagates NaN, so masked entries stay NaN in
            # the log matrix too and _emit can detect them.
            new_logs = np.log(
                np.maximum(new_distances, self.config.estimator.min_distance)
            )
            self._log_matrix[m - 1, : m - 1] = new_logs
            self._log_matrix[: m - 1, m - 1] = new_logs
        self._window_matrix[m - 1, m - 1] = 0.0
        self._log_matrix[m - 1, m - 1] = self._log_floor

    def _emit(self) -> Optional[ScorePoint]:
        """Score the current window once it is full and record the point."""
        cfg = self.config
        if len(self._signatures) < cfg.window_span:
            return None
        inspection_time = self._signatures[cfg.tau][0]
        if np.isnan(self._log_matrix).any():
            # The window still contains a masked (failed) bag: the
            # estimators cannot score it, but the bootstrap draws are
            # consumed anyway so the stream re-converges with an
            # unfaulted run once the masked bag leaves the window.
            point_score, interval = self._score_engine.masked_point_and_interval()
        else:
            log_window = LogWindowDistances(
                ref_log=self._log_matrix[: cfg.tau, : cfg.tau].copy(),
                test_log=self._log_matrix[cfg.tau :, cfg.tau :].copy(),
                cross_log=self._log_matrix[: cfg.tau, cfg.tau :].copy(),
                config=cfg.estimator,
            )
            point_score, interval = self._score_engine.point_and_interval(log_window)
        gamma, alert = self._threshold.update(inspection_time, interval)
        point = ScorePoint(
            time=inspection_time,
            score=point_score,
            interval=interval,
            gamma=gamma,
            alert=alert,
        )
        self._history.append(point)
        self._history_result = None
        return point

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def n_seen(self) -> int:
        """Number of bags pushed so far."""
        return self._next_index

    @property
    def n_distance_evaluations(self) -> int:
        """Total EMD evaluations performed by the engine so far."""
        return self._engine.n_evaluations

    @property
    def history(self) -> DetectionResult:
        """The retained score points, as a :class:`DetectionResult`.

        Bounded to the ``config.history_limit`` most recent points when
        a limit is set.  The result is cached between pushes (no full
        re-copy per access) and rebuilt lazily after the next emission;
        treat it as read-only.
        """
        if self._history_result is None:
            self._history_result = DetectionResult(points=list(self._history))
        return self._history_result

    def prepare(self, bag: np.ndarray) -> PendingPush:
        """Phase one of a push: quantise the bag, enumerate its pairs.

        Returns a :class:`PendingPush` holding the arriving signature
        and the ``(older, new)`` signature pairs whose distances the
        push needs — *without* mutating any detector state (the rolling
        matrices, window and counter are untouched; only the shared
        random generator has advanced past the signature-construction
        draws, and the pending push remembers how to rewind it).  Solve
        the pairs — in any batch, stacked with other detectors' pairs —
        and hand the distances to :meth:`commit`; a caller abandoning
        the push (e.g. because the external solve failed) must call
        :meth:`rollback` instead.

        A :class:`~repro.exceptions.SolverError` raised by the signature
        build itself (stochastic quantisers can solve internally) rewinds
        the generator before propagating, so ``prepare`` keeps the same
        retryability contract as :meth:`push`.
        """
        self._check_open()
        index = self._next_index
        data = np.asarray(bag, dtype=float)
        rng_state = self._rng.bit_generator.state
        try:
            signature = self._builder.build(data, label=index)
        except SolverError:
            self._rng.bit_generator.state = rng_state
            raise
        return PendingPush(
            index=index,
            signature=signature,
            pairs=self._pending_pairs(signature),
            rng_state=rng_state,
        )

    def _check_pending(self, pending: PendingPush) -> None:
        if pending.index != self._next_index:
            raise ValidationError(
                f"pending push is for bag index {pending.index}, but this "
                f"detector is at index {self._next_index}; each prepared "
                "push must be committed or rolled back exactly once, "
                "before the next prepare()"
            )

    def commit(
        self, pending: PendingPush, distances: np.ndarray
    ) -> Optional[ScorePoint]:
        """Phase two of a push: scatter solved distances, score, record.

        ``distances[k]`` must be the EMD of ``pending.pairs[k]`` (NaN
        entries take the masked/degraded path).  Committing a prepared
        push with the distances its own engine would have computed is
        bit-identical to :meth:`push` — same matrix updates, same
        bootstrap draws, same emitted point.  A stale pending push (the
        detector has moved on, or it was already committed) is rejected
        with :class:`~repro.exceptions.ValidationError`.
        """
        self._check_open()
        self._check_pending(pending)
        values = np.asarray(distances, dtype=float)
        if values.shape != (len(pending.pairs),):
            raise ValidationError(
                f"expected {len(pending.pairs)} distances for this pending "
                f"push, got array of shape {values.shape}"
            )
        self._apply_distances(pending.signature, values)
        self._next_index += 1
        return self._emit()

    def rollback(self, pending: PendingPush) -> None:
        """Abandon a prepared push, rewinding the generator draws.

        Restores the random generator to its pre-:meth:`prepare` state
        (the signature build may have consumed draws), so re-preparing
        the same bag replays identical draws and the stream stays
        convergent with an unfaulted run.  No other state needs undoing —
        :meth:`prepare` mutates nothing else.
        """
        self._check_open()
        self._check_pending(pending)
        self._rng.bit_generator.state = pending.rng_state

    def push(self, bag: np.ndarray) -> Optional[ScorePoint]:
        """Consume one bag; return a score point once the window is full.

        Exactly :meth:`prepare` → solve → :meth:`commit` on the
        detector's own engine.  A
        :class:`~repro.exceptions.SolverError` raised by the arriving
        bag's distance solves leaves the detector untouched — including
        the random generator, which is rewound past the signature
        construction draws — so the same push can simply be retried.
        """
        pending = self.prepare(bag)
        try:
            distances = self._engine.compute_pairs(list(pending.pairs))
        except SolverError:
            # Rewind the signature-construction draws so a retried push
            # replays the identical draws and converges with an
            # unfaulted run.
            self.rollback(pending)
            raise
        return self.commit(pending, distances)

    def push_masked(self, bag: np.ndarray) -> Optional[ScorePoint]:
        """Consume one bag *without solving*: its distances enter as NaN.

        The degraded-service path for a bag whose :meth:`push` failed
        with a :class:`~repro.exceptions.SolverError`: the stream keeps
        advancing, every inspection point whose window still contains
        the masked bag emits a NaN score (never an alert), and once the
        bag has left the window the scores are again bit-identical to an
        unfaulted run (the signature draws and bootstrap draws are
        consumed identically either way).
        """
        pending = self.prepare(bag)
        return self.commit(pending, np.full(len(pending.pairs), np.nan))

    def push_many(self, bags: Any) -> List[ScorePoint]:
        """Push a sequence of bags, returning the score points that were emitted."""
        emitted: List[ScorePoint] = []
        for bag in bags:
            point = self.push(bag)
            if point is not None:
                emitted.append(point)
        return emitted

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Everything a bit-identical continuation of this stream needs.

        The returned mapping holds plain arrays, scalars and frozen
        value objects (safe to serialise):

        * ``format_version`` — :data:`STATE_FORMAT_VERSION`;
        * ``n_seen`` — bags consumed so far;
        * ``signatures`` — the ``(index, Signature)`` window entries;
        * ``window_matrix`` / ``log_matrix`` — the rolling matrices;
        * ``rng_state`` — the generator's bit-generator state (both the
          signature builder and the bootstrap draw from this one
          generator, so restoring it restores every future draw);
        * ``threshold`` — the ``lag`` most recent confidence intervals
          (the only ones a future γ can reference);
        * ``history`` — the retained :class:`ScorePoint` tail.

        The stamped, checksummed on-disk form is produced by
        :func:`repro.service.snapshots.save_stream_snapshot`.
        """
        return {
            "format_version": STATE_FORMAT_VERSION,
            "n_seen": int(self._next_index),
            "signatures": list(self._signatures),
            "window_matrix": self._window_matrix.copy(),
            "log_matrix": self._log_matrix.copy(),
            "rng_state": self._rng.bit_generator.state,
            "threshold": self._threshold.state(tail_only=True),
            "history": list(self._history),
        }

    @classmethod
    def from_state_dict(
        cls,
        state: Mapping[str, Any],
        config: Optional[DetectorConfig] = None,
        **kwargs: object,
    ) -> "OnlineBagDetector":
        """Rebuild a detector that continues exactly where ``state`` left off.

        ``config`` (or keyword arguments) must describe the same
        computation as the snapshotted stream — window lengths, solver,
        score, bootstrap size; a mismatched geometry or RNG family is
        rejected with :class:`~repro.exceptions.CheckpointError`.  The
        stamped on-disk loader
        (:func:`repro.service.snapshots.load_stream_snapshot`) addition­
        ally verifies a config fingerprint and payload checksum before
        the state ever reaches this method.
        """
        detector = cls(config, **kwargs)
        version = int(state.get("format_version", -1))
        if version != STATE_FORMAT_VERSION:
            raise CheckpointError(
                f"stream state has format version {version}, expected "
                f"{STATE_FORMAT_VERSION}; re-snapshot the stream with this "
                "library version"
            )
        span = detector.config.window_span
        window_matrix = np.asarray(state["window_matrix"], dtype=float)
        log_matrix = np.asarray(state["log_matrix"], dtype=float)
        if window_matrix.shape != (span, span) or log_matrix.shape != (span, span):
            raise CheckpointError(
                f"stream state was captured with window span "
                f"{window_matrix.shape[0]}, but this config has "
                f"tau + tau_test = {span}; restore with the original "
                "tau/tau_test"
            )
        entries: List[Tuple[int, Signature]] = [
            (int(index), signature) for index, signature in state["signatures"]
        ]
        if len(entries) > span:
            raise CheckpointError(
                f"stream state holds {len(entries)} window signatures, "
                f"more than the window span {span}"
            )
        rng_state = dict(state["rng_state"])
        bit_generator = detector._rng.bit_generator
        current_family = type(bit_generator).__name__
        saved_family = str(rng_state.get("bit_generator"))
        if saved_family != current_family:
            raise CheckpointError(
                f"stream state was captured from a {saved_family} bit "
                f"generator but this config yields {current_family}; "
                "restore with the original random_state family"
            )
        # In-place: the signature builder and the bootstrap hold this
        # same Generator object, so every future draw is restored too.
        bit_generator.state = rng_state
        detector._signatures.extend(entries)
        detector._window_matrix[...] = window_matrix
        detector._log_matrix[...] = log_matrix
        detector._next_index = int(state["n_seen"])
        threshold_state: Mapping[int, ConfidenceInterval] = state["threshold"]
        detector._threshold.restore(threshold_state)
        detector._history.extend(state["history"])
        detector._history_result = None
        return detector
