"""Streaming (online) variant of the bag-of-data change-point detector.

Bags are pushed one at a time; a score for inspection point ``t`` can be
emitted as soon as the τ′-th bag of its test window (i.e. bag
``t + τ′ − 1``) has arrived, so the detector reports with an inherent lag
of τ′ − 1 steps.

Consecutive inspection points share all but one signature, so the
detector keeps one rolling ``(τ + τ′) × (τ + τ′)`` matrix of pairwise
EMD values and, on each :meth:`push`, shifts it up-left by one row and
column (reusing every overlapping entry) and computes only the
``τ + τ′ − 1`` new distances that involve the arriving bag — batched
through :class:`~repro.emd.PairwiseEMDEngine`.  Memory stays bounded by
O((τ + τ′)²) distances.

Scoring is delegated to the batched
:class:`~repro.core.score_engine.ScoreEngine`.  A second rolling matrix
holds the *clipped-and-logged* distances (the only form the estimators
consume), so each push logs just the ``τ + τ′ − 1`` arriving values and
every inspection point reuses the logged entries of all previous pushes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .._validation import as_rng
from ..emd import PairwiseEMDEngine
from ..exceptions import ValidationError
from ..signatures import Signature, SignatureBuilder
from .config import DetectorConfig
from .results import DetectionResult, ScorePoint
from .score_engine import ScoreEngine
from .scores import LogWindowDistances
from .thresholding import AdaptiveThreshold


class OnlineBagDetector:
    """Incremental detector consuming one bag per :meth:`push` call.

    Parameters
    ----------
    config:
        Detector configuration (same object as the offline detector).
        Keyword arguments may be passed instead and are forwarded to the
        config.

    Notes
    -----
    :meth:`push` returns ``None`` until enough bags have arrived to form a
    complete reference + test window; afterwards it returns one
    :class:`~repro.core.ScorePoint` per call, for the inspection point
    ``t = current_index − τ′ + 1``.
    """

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs: object) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self._rng = as_rng(config.random_state)
        self._builder = SignatureBuilder(
            config.signature_method,
            n_clusters=config.n_clusters,
            bins=config.bins,
            histogram_range=config.histogram_range,
            random_state=self._rng,
        )
        self._engine = PairwiseEMDEngine(
            ground_distance=config.ground_distance,
            backend=config.emd_backend,
            parallel_backend=config.parallel_backend,
            n_workers=config.n_workers,
            sinkhorn_epsilon=config.sinkhorn_epsilon,
            sinkhorn_max_iter=config.sinkhorn_max_iter,
            sinkhorn_tol=config.sinkhorn_tol,
            sinkhorn_anneal=config.sinkhorn_anneal,
        )
        self._score_engine = ScoreEngine(config, rng=self._rng)
        self._threshold = AdaptiveThreshold(config.tau_test)

        span = config.window_span
        self._signatures: Deque[Tuple[int, Signature]] = deque(maxlen=span)
        # Rolling pairwise-EMD matrix of the signatures currently in the
        # window: entry (a, b) is the distance between the a-th and b-th
        # oldest of them.  Shifted, not rebuilt, as the window slides.
        self._window_matrix = np.zeros((span, span), dtype=float)
        # Rolling clipped-and-logged copy of the same matrix: each push
        # logs only the arriving row/column, so inspection points never
        # re-log distances carried over from previous pushes.
        self._log_floor = float(np.log(config.estimator.min_distance))
        self._log_matrix = np.full((span, span), self._log_floor, dtype=float)
        self._next_index = 0
        self._history: List[ScorePoint] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the EMD engine's worker pool (idempotent).

        Only needed when ``parallel_backend`` is ``"thread"``/``"process"``
        — the engine keeps its pool alive across pushes; a closed detector
        cannot ``push`` again.
        """
        self._engine.close()

    def __enter__(self) -> "OnlineBagDetector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _extend_window_matrix(self, signature: Signature) -> None:
        """Slide the rolling matrix and add the arriving bag's distances.

        Computes exactly ``len(window) − 1`` new EMD values (τ + τ′ − 1
        once the window is full); every other entry of the matrix is
        reused from the previous step.
        """
        span = self.config.window_span
        # Compute the arriving bag's distances before touching any state,
        # so a failed solve leaves the detector consistent and the push
        # retryable.  When the window is full its oldest signature is about
        # to leave and needs no distance.  Older signature first in each
        # pair, matching the offline band's (i, j) ordering so both paths
        # agree bit-for-bit.
        staying = list(self._signatures)
        if len(staying) == span:
            staying = staying[1:]
        new_distances = self._engine.compute_pairs(
            [(entry[1], signature) for entry in staying]
        )
        if len(self._signatures) == span:
            # The oldest signature leaves: shift the kept blocks up-left.
            self._window_matrix[:-1, :-1] = self._window_matrix[1:, 1:]
            self._log_matrix[:-1, :-1] = self._log_matrix[1:, 1:]
        self._signatures.append((self._next_index, signature))
        m = len(self._signatures)
        if m > 1:
            self._window_matrix[m - 1, : m - 1] = new_distances
            self._window_matrix[: m - 1, m - 1] = new_distances
            new_logs = np.log(
                np.maximum(new_distances, self.config.estimator.min_distance)
            )
            self._log_matrix[m - 1, : m - 1] = new_logs
            self._log_matrix[: m - 1, m - 1] = new_logs
        self._window_matrix[m - 1, m - 1] = 0.0
        self._log_matrix[m - 1, m - 1] = self._log_floor

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def n_seen(self) -> int:
        """Number of bags pushed so far."""
        return self._next_index

    @property
    def n_distance_evaluations(self) -> int:
        """Total EMD evaluations performed by the engine so far."""
        return self._engine.n_evaluations

    @property
    def history(self) -> DetectionResult:
        """All score points emitted so far, as a :class:`DetectionResult`."""
        return DetectionResult(points=list(self._history))

    def push(self, bag: np.ndarray) -> Optional[ScorePoint]:
        """Consume one bag; return a score point once the window is full."""
        cfg = self.config
        index = self._next_index
        signature = self._builder.build(np.asarray(bag, dtype=float), label=index)
        self._extend_window_matrix(signature)
        self._next_index += 1

        if len(self._signatures) < cfg.window_span:
            return None

        inspection_time = self._signatures[cfg.tau][0]
        log_window = LogWindowDistances(
            ref_log=self._log_matrix[: cfg.tau, : cfg.tau].copy(),
            test_log=self._log_matrix[cfg.tau :, cfg.tau :].copy(),
            cross_log=self._log_matrix[: cfg.tau, cfg.tau :].copy(),
            config=cfg.estimator,
        )
        point_score, interval = self._score_engine.point_and_interval(log_window)
        gamma, alert = self._threshold.update(inspection_time, interval)
        point = ScorePoint(
            time=inspection_time,
            score=point_score,
            interval=interval,
            gamma=gamma,
            alert=alert,
        )
        self._history.append(point)
        return point

    def push_many(self, bags) -> List[ScorePoint]:
        """Push a sequence of bags, returning the score points that were emitted."""
        emitted: List[ScorePoint] = []
        for bag in bags:
            point = self.push(bag)
            if point is not None:
                emitted.append(point)
        return emitted
