"""Streaming (online) variant of the bag-of-data change-point detector.

Bags are pushed one at a time; a score for inspection point ``t`` can be
emitted as soon as the τ′-th bag of its test window (i.e. bag
``t + τ′ − 1``) has arrived, so the detector reports with an inherent lag
of τ′ − 1 steps.

Consecutive inspection points share all but one signature, so the
detector keeps one rolling ``(τ + τ′) × (τ + τ′)`` matrix of pairwise
EMD values and, on each :meth:`push`, shifts it up-left by one row and
column (reusing every overlapping entry) and computes only the
``τ + τ′ − 1`` new distances that involve the arriving bag — batched
through :class:`~repro.emd.PairwiseEMDEngine`.  Memory stays bounded by
O((τ + τ′)²) distances.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .._validation import as_rng
from ..bootstrap import BayesianBootstrap, percentile_interval
from ..emd import PairwiseEMDEngine
from ..exceptions import ValidationError
from ..information import resolve_weights
from ..signatures import Signature, SignatureBuilder
from .config import DetectorConfig
from .results import DetectionResult, ScorePoint
from .scores import WindowDistances, compute_score
from .thresholding import AdaptiveThreshold


class OnlineBagDetector:
    """Incremental detector consuming one bag per :meth:`push` call.

    Parameters
    ----------
    config:
        Detector configuration (same object as the offline detector).
        Keyword arguments may be passed instead and are forwarded to the
        config.

    Notes
    -----
    :meth:`push` returns ``None`` until enough bags have arrived to form a
    complete reference + test window; afterwards it returns one
    :class:`~repro.core.ScorePoint` per call, for the inspection point
    ``t = current_index − τ′ + 1``.
    """

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs):
        if config is None:
            config = DetectorConfig(**kwargs)
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self._rng = as_rng(config.random_state)
        self._builder = SignatureBuilder(
            config.signature_method,
            n_clusters=config.n_clusters,
            bins=config.bins,
            histogram_range=config.histogram_range,
            random_state=self._rng,
        )
        self._engine = PairwiseEMDEngine(
            ground_distance=config.ground_distance,
            backend=config.emd_backend,
            parallel_backend=config.parallel_backend,
            n_workers=config.n_workers,
        )
        self._bootstrap = BayesianBootstrap(
            config.n_bootstrap, alpha=config.alpha, rng=self._rng
        )
        self._threshold = AdaptiveThreshold(config.tau_test)
        self._ref_base = resolve_weights(config.weighting, config.tau, is_test=False)
        self._test_base = resolve_weights(config.weighting, config.tau_test, is_test=True)

        span = config.window_span
        self._signatures: Deque[Tuple[int, Signature]] = deque(maxlen=span)
        # Rolling pairwise-EMD matrix of the signatures currently in the
        # window: entry (a, b) is the distance between the a-th and b-th
        # oldest of them.  Shifted, not rebuilt, as the window slides.
        self._window_matrix = np.zeros((span, span), dtype=float)
        self._next_index = 0
        self._history: List[ScorePoint] = []

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _extend_window_matrix(self, signature: Signature) -> None:
        """Slide the rolling matrix and add the arriving bag's distances.

        Computes exactly ``len(window) − 1`` new EMD values (τ + τ′ − 1
        once the window is full); every other entry of the matrix is
        reused from the previous step.
        """
        span = self.config.window_span
        if len(self._signatures) == span:
            # The oldest signature leaves: shift the kept block up-left.
            self._window_matrix[:-1, :-1] = self._window_matrix[1:, 1:]
        self._signatures.append((self._next_index, signature))
        m = len(self._signatures)
        if m > 1:
            # Older signature first in each pair, matching the offline
            # band's (i, j) ordering so both paths agree bit-for-bit.
            new_distances = self._engine.compute_pairs(
                [(entry[1], signature) for entry in list(self._signatures)[:-1]]
            )
            self._window_matrix[m - 1, : m - 1] = new_distances
            self._window_matrix[: m - 1, m - 1] = new_distances
        self._window_matrix[m - 1, m - 1] = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def n_seen(self) -> int:
        """Number of bags pushed so far."""
        return self._next_index

    @property
    def n_distance_evaluations(self) -> int:
        """Total EMD evaluations performed by the engine so far."""
        return self._engine.n_evaluations

    @property
    def history(self) -> DetectionResult:
        """All score points emitted so far, as a :class:`DetectionResult`."""
        return DetectionResult(points=list(self._history))

    def push(self, bag: np.ndarray) -> Optional[ScorePoint]:
        """Consume one bag; return a score point once the window is full."""
        cfg = self.config
        index = self._next_index
        signature = self._builder.build(np.asarray(bag, dtype=float), label=index)
        self._extend_window_matrix(signature)
        self._next_index += 1

        if len(self._signatures) < cfg.window_span:
            return None

        inspection_time = self._signatures[cfg.tau][0]
        window = WindowDistances(
            ref_pairwise=self._window_matrix[: cfg.tau, : cfg.tau].copy(),
            test_pairwise=self._window_matrix[cfg.tau :, cfg.tau :].copy(),
            cross=self._window_matrix[: cfg.tau, cfg.tau :].copy(),
        )
        point_score = compute_score(
            cfg.score,
            window,
            self._ref_base,
            self._test_base,
            config=cfg.estimator,
            inspection_index=cfg.lr_inspection_index,
        )
        ref_resampled = self._bootstrap.resample_weights(cfg.tau, self._ref_base)
        test_resampled = self._bootstrap.resample_weights(cfg.tau_test, self._test_base)
        replicated = np.array(
            [
                compute_score(
                    cfg.score,
                    window,
                    rw,
                    tw,
                    config=cfg.estimator,
                    inspection_index=cfg.lr_inspection_index,
                )
                for rw, tw in zip(ref_resampled, test_resampled)
            ]
        )
        interval = percentile_interval(replicated, cfg.alpha, point=point_score)
        gamma, alert = self._threshold.update(inspection_time, interval)
        point = ScorePoint(
            time=inspection_time,
            score=point_score,
            interval=interval,
            gamma=gamma,
            alert=alert,
        )
        self._history.append(point)
        return point

    def push_many(self, bags) -> List[ScorePoint]:
        """Push a sequence of bags, returning the score points that were emitted."""
        emitted: List[ScorePoint] = []
        for bag in bags:
            point = self.push(bag)
            if point is not None:
                emitted.append(point)
        return emitted
