"""Streaming (online) variant of the bag-of-data change-point detector.

Bags are pushed one at a time; a score for inspection point ``t`` can be
emitted as soon as the τ′-th bag of its test window (i.e. bag
``t + τ′ − 1``) has arrived, so the detector reports with an inherent lag
of τ′ − 1 steps.  Pairwise EMD values are cached and old signatures are
discarded once they can no longer participate in any window, keeping
memory bounded by O((τ + τ′)²) distances.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from .._validation import as_rng
from ..bootstrap import BayesianBootstrap, percentile_interval
from ..emd import emd
from ..information import resolve_weights
from ..signatures import Signature, SignatureBuilder
from .config import DetectorConfig
from .results import DetectionResult, ScorePoint
from .scores import WindowDistances, compute_score
from .thresholding import AdaptiveThreshold


class OnlineBagDetector:
    """Incremental detector consuming one bag per :meth:`push` call.

    Parameters
    ----------
    config:
        Detector configuration (same object as the offline detector).

    Notes
    -----
    :meth:`push` returns ``None`` until enough bags have arrived to form a
    complete reference + test window; afterwards it returns one
    :class:`~repro.core.ScorePoint` per call, for the inspection point
    ``t = current_index − τ′ + 1``.
    """

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs):
        if config is None:
            config = DetectorConfig(**kwargs)
        self.config = config
        self._rng = as_rng(config.random_state)
        self._builder = SignatureBuilder(
            config.signature_method,
            n_clusters=config.n_clusters,
            bins=config.bins,
            histogram_range=config.histogram_range,
            random_state=self._rng,
        )
        self._bootstrap = BayesianBootstrap(
            config.n_bootstrap, alpha=config.alpha, rng=self._rng
        )
        self._threshold = AdaptiveThreshold(config.tau_test)
        self._ref_base = resolve_weights(config.weighting, config.tau, is_test=False)
        self._test_base = resolve_weights(config.weighting, config.tau_test, is_test=True)

        self._signatures: Deque[Tuple[int, Signature]] = deque(maxlen=config.window_span)
        self._distances: Dict[Tuple[int, int], float] = {}
        self._next_index = 0
        self._history: List[ScorePoint] = []

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _distance(self, idx_a: int, sig_a: Signature, idx_b: int, sig_b: Signature) -> float:
        key = (idx_a, idx_b) if idx_a <= idx_b else (idx_b, idx_a)
        if key not in self._distances:
            self._distances[key] = emd(
                sig_a,
                sig_b,
                ground_distance=self.config.ground_distance,
                backend=self.config.emd_backend,
            )
        return self._distances[key]

    def _prune_cache(self) -> None:
        """Drop cached distances involving indices that fell out of the window."""
        if not self._signatures:
            return
        oldest = self._signatures[0][0]
        stale = [key for key in self._distances if key[0] < oldest or key[1] < oldest]
        for key in stale:
            del self._distances[key]

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def n_seen(self) -> int:
        """Number of bags pushed so far."""
        return self._next_index

    @property
    def history(self) -> DetectionResult:
        """All score points emitted so far, as a :class:`DetectionResult`."""
        return DetectionResult(points=list(self._history))

    def push(self, bag: np.ndarray) -> Optional[ScorePoint]:
        """Consume one bag; return a score point once the window is full."""
        cfg = self.config
        index = self._next_index
        self._next_index += 1
        signature = self._builder.build(np.asarray(bag, dtype=float), label=index)
        self._signatures.append((index, signature))
        self._prune_cache()

        if len(self._signatures) < cfg.window_span:
            return None

        entries = list(self._signatures)
        ref_entries = entries[: cfg.tau]
        test_entries = entries[cfg.tau :]
        inspection_time = test_entries[0][0]

        ref_pair = np.zeros((cfg.tau, cfg.tau))
        for i in range(cfg.tau):
            for j in range(i + 1, cfg.tau):
                ref_pair[i, j] = ref_pair[j, i] = self._distance(
                    ref_entries[i][0], ref_entries[i][1], ref_entries[j][0], ref_entries[j][1]
                )
        test_pair = np.zeros((cfg.tau_test, cfg.tau_test))
        for i in range(cfg.tau_test):
            for j in range(i + 1, cfg.tau_test):
                test_pair[i, j] = test_pair[j, i] = self._distance(
                    test_entries[i][0], test_entries[i][1], test_entries[j][0], test_entries[j][1]
                )
        cross = np.zeros((cfg.tau, cfg.tau_test))
        for i in range(cfg.tau):
            for j in range(cfg.tau_test):
                cross[i, j] = self._distance(
                    ref_entries[i][0], ref_entries[i][1], test_entries[j][0], test_entries[j][1]
                )

        window = WindowDistances(ref_pairwise=ref_pair, test_pairwise=test_pair, cross=cross)
        point_score = compute_score(
            cfg.score, window, self._ref_base, self._test_base, config=cfg.estimator
        )
        ref_resampled = self._bootstrap.resample_weights(cfg.tau, self._ref_base)
        test_resampled = self._bootstrap.resample_weights(cfg.tau_test, self._test_base)
        replicated = np.array(
            [
                compute_score(cfg.score, window, rw, tw, config=cfg.estimator)
                for rw, tw in zip(ref_resampled, test_resampled)
            ]
        )
        interval = percentile_interval(replicated, cfg.alpha, point=point_score)
        gamma, alert = self._threshold.update(inspection_time, interval)
        point = ScorePoint(
            time=inspection_time,
            score=point_score,
            interval=interval,
            gamma=gamma,
            alert=alert,
        )
        self._history.append(point)
        return point

    def push_many(self, bags) -> List[ScorePoint]:
        """Push a sequence of bags, returning the score points that were emitted."""
        emitted: List[ScorePoint] = []
        for bag in bags:
            point = self.push(bag)
            if point is not None:
                emitted.append(point)
        return emitted
