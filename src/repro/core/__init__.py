"""Core change-point detection pipeline (paper Sections 2-4)."""

from .bag import Bag, BagSequence
from .config import DetectorConfig
from .detector import BagChangePointDetector
from .online import OnlineBagDetector, PendingPush
from .results import DetectionResult, ScorePoint
from .score_engine import ScoreEngine
from .scores import (
    LogWindowDistances,
    WindowDistances,
    compute_score,
    score_batch,
    score_likelihood_ratio,
    score_likelihood_ratio_batch,
    score_symmetric_kl,
    score_symmetric_kl_batch,
)
from .segmentation import Segment, merge_close_alarms, segment_from_result, segment_stream
from .thresholding import AdaptiveThreshold, apply_threshold, gamma_statistic, is_significant

__all__ = [
    "Bag",
    "BagSequence",
    "DetectorConfig",
    "BagChangePointDetector",
    "OnlineBagDetector",
    "PendingPush",
    "DetectionResult",
    "ScorePoint",
    "Segment",
    "segment_stream",
    "segment_from_result",
    "merge_close_alarms",
    "WindowDistances",
    "LogWindowDistances",
    "ScoreEngine",
    "compute_score",
    "score_batch",
    "score_likelihood_ratio",
    "score_likelihood_ratio_batch",
    "score_symmetric_kl",
    "score_symmetric_kl_batch",
    "AdaptiveThreshold",
    "apply_threshold",
    "gamma_statistic",
    "is_significant",
]
