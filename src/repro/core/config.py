"""Configuration object for the bag-of-data change-point detector."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..emd.batch import EMD_SOLVERS, PARALLEL_BACKENDS, _check_anneal
from ..emd.registry import (
    POISON_POLICIES,
    EMDSolverName,
    ParallelBackendName,
    PoisonPolicyName,
)
from ..exceptions import ConfigurationError, ValidationError
from ..information import EstimatorConfig
from ..signatures.builders import SIGNATURE_METHODS

#: Change-point scores: symmetrised KL (Eq. 17) and likelihood ratio (Eq. 16).
SCORES = ("kl", "lr")
#: Window-weighting schemes: the paper's uniform weights or Eq. 15 discounting.
WEIGHTINGS = ("uniform", "discounted")

_SCORES = SCORES
_WEIGHTING = WEIGHTINGS
_SIGNATURE_METHODS = SIGNATURE_METHODS


@dataclass
class DetectorConfig:
    """All tunable parameters of :class:`~repro.core.BagChangePointDetector`.

    Attributes
    ----------
    tau:
        Number of bags in the reference (past) window, ``τ`` in the paper.
    tau_test:
        Number of bags in the test (future) window, ``τ′``.
    score:
        ``"kl"`` for the symmetrised KL-divergence score (Eq. 17, the
        paper's default for the experiments) or ``"lr"`` for the
        log-likelihood-ratio score (Eq. 16).
    signature_method:
        Quantiser used to build signatures (paper Section 3.1).
    n_clusters:
        Number of signature representatives for clustering quantisers.
    bins:
        Bins per dimension for the histogram quantiser.
    histogram_range:
        Optional fixed histogram range shared by all bags.
    ground_distance:
        Ground distance of the EMD (Section 3.2).
    emd_backend:
        ``"auto"``, ``"linprog"``, ``"simplex"`` (exact per-pair
        solvers), ``"linprog_batch"`` — the block-diagonal batched
        *exact* LP, which stacks common-support pairs (e.g. histogram
        signatures over a shared grid) into single HiGHS solves with
        distances exactly equal to ``"linprog"`` — or
        ``"sinkhorn_batch"`` — the tensor-batched *entropic* solver over
        the same support grouping.  Exact 1-D pairs always take the
        closed-form fast path; irregular supports fall back to the
        per-pair exact LP.  Note ``"sinkhorn_batch"`` computes the
        *normalised-mass* (balanced) EMD throughout — equal to the
        paper's partial-matching EMD whenever bags carry equal total
        mass, an approximation otherwise — while ``"linprog_batch"``
        keeps the paper's partial-matching functional unchanged.
    sinkhorn_epsilon:
        Unit-free regularisation strength of the batched Sinkhorn solver
        (smaller = closer to the exact EMD but slower); only used with
        ``emd_backend="sinkhorn_batch"``.
    sinkhorn_max_iter:
        Iteration budget per batched Sinkhorn solve.
    sinkhorn_tol:
        L1 row-marginal tolerance at which a batched Sinkhorn pair
        counts as converged.  The solver default (1e-9) is far tighter
        than the detection scores can resolve; raising it (e.g. to
        1e-6) shortens the band build without moving any alert.
    sinkhorn_anneal:
        Optional decreasing epsilon-annealing prefix for the batched
        Sinkhorn solver: each solve runs the schedule
        ``(*sinkhorn_anneal, sinkhorn_epsilon)`` with warm-started
        duals, reaching a small final epsilon much faster than a cold
        start at it.  Stages must be strictly decreasing and stay above
        ``sinkhorn_epsilon``.
    parallel_backend:
        How the EMD engine computes batches of pair distances:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.
    n_workers:
        Worker-pool size for ``"thread"``/``"process"`` (and for the
        sharded band build); ``None`` uses the CPU count.
    n_shards:
        When set (> 1), the offline detector builds the EMD band
        through :class:`repro.emd.sharding.ShardRunner`: the band's
        pair set is partitioned into that many contiguous row-blocks,
        executed process-parallel when ``parallel_backend="process"``
        (signatures shared via ``multiprocessing.shared_memory``) and
        sequentially otherwise, then merged — bit-for-bit equal to the
        unsharded build.  ``None`` (default) keeps the single-pass
        build.
    shard_checkpoint_dir:
        Optional directory for per-shard ``.npz`` checkpoints.  With it
        set, a killed detection run resumes its band build at the last
        finished shard (setting only this, without ``n_shards``, runs
        the build as a single checkpointed shard); checkpoints from a
        different plan or solver configuration are rejected, never
        merged.
    shard_retries:
        Retry budget per shard of the fault-tolerant band build: a
        shard whose worker crashes, times out or fails transiently is
        re-enqueued (with exponential backoff) up to this many times
        before the build aborts.
    shard_timeout:
        Per-shard wall-clock budget in seconds for the band build;
        a shard attempt still running past it is killed and retried.
        ``None`` (default) disables the timeout.
    on_poison_pair:
        What the band build does with pairs that keep failing the
        solver after bisection and per-pair exact-LP rescue:
        ``"strict"`` (default) raises
        :class:`~repro.exceptions.PoisonPairError` with the quarantine
        manifest attached; ``"degraded"`` warns and returns the band
        with exactly those entries masked as NaN.
    history_limit:
        Maximum number of emitted :class:`~repro.core.ScorePoint`\\ s the
        online detector retains (a bounded deque).  ``None`` (default)
        keeps the full history — fine for finite runs, unbounded growth
        in a long-running service, which is why
        :class:`repro.service.StreamSupervisor` substitutes a bounded
        default for its streams when this is ``None``.  Only the
        retained tail is serialised into stream snapshots.
    lr_inspection_index:
        Position (0-based) within the test window of the bag ``S_t`` that
        the ``"lr"`` score compares against both windows (Eq. 16).  The
        paper uses the first test bag (0); ignored by the ``"kl"`` score.
    weighting:
        ``"uniform"`` (paper's experiments) or ``"discounted"`` (Eq. 15).
    n_bootstrap:
        Number of Bayesian-bootstrap replicates ``T`` per time step.
    alpha:
        Significance level of the confidence intervals (0.05 → 95% CI).
    estimator:
        Constants of the information estimators (``c``, ``d``,
        distance floor).
    random_state:
        Seed or generator controlling signature construction and the
        bootstrap.
    """

    tau: int = 5
    tau_test: int = 5
    score: str = "kl"
    signature_method: str = "kmeans"
    n_clusters: int = 8
    bins: Union[int, Sequence[int]] = 10
    histogram_range: Optional[Sequence] = None
    ground_distance: str = "euclidean"
    emd_backend: EMDSolverName = "auto"
    sinkhorn_epsilon: float = 0.05
    sinkhorn_max_iter: int = 2000
    sinkhorn_tol: float = 1e-9
    sinkhorn_anneal: Optional[Sequence[float]] = None
    parallel_backend: ParallelBackendName = "serial"
    n_workers: Optional[int] = None
    n_shards: Optional[int] = None
    shard_checkpoint_dir: Optional[Union[str, Path]] = None
    shard_retries: int = 2
    shard_timeout: Optional[float] = None
    on_poison_pair: PoisonPolicyName = "strict"
    history_limit: Optional[int] = None
    lr_inspection_index: int = 0
    weighting: str = "uniform"
    n_bootstrap: int = 200
    alpha: float = 0.05
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    random_state: Union[None, int, np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.tau < 2:
            raise ConfigurationError("tau must be at least 2 (the reference window needs >= 2 bags)")
        if self.tau_test < 2:
            raise ConfigurationError("tau_test must be at least 2 (the test window needs >= 2 bags)")
        if self.score not in _SCORES:
            raise ConfigurationError(f"score must be one of {_SCORES}, got {self.score!r}")
        if self.signature_method not in _SIGNATURE_METHODS:
            raise ConfigurationError(
                f"signature_method must be one of {_SIGNATURE_METHODS}, got {self.signature_method!r}"
            )
        if self.weighting not in _WEIGHTING:
            raise ConfigurationError(
                f"weighting must be one of {_WEIGHTING}, got {self.weighting!r}"
            )
        if self.emd_backend not in EMD_SOLVERS:
            raise ConfigurationError(
                f"emd_backend must be one of {EMD_SOLVERS}, got {self.emd_backend!r}"
            )
        if not np.isfinite(self.sinkhorn_epsilon) or self.sinkhorn_epsilon <= 0:
            raise ConfigurationError("sinkhorn_epsilon must be positive and finite")
        if not np.isfinite(self.sinkhorn_tol) or self.sinkhorn_tol <= 0:
            raise ConfigurationError("sinkhorn_tol must be positive and finite")
        if self.sinkhorn_anneal is not None:
            self.sinkhorn_anneal = _check_anneal(self.sinkhorn_anneal, self.sinkhorn_epsilon)
        try:
            check_positive_int(self.sinkhorn_max_iter, "sinkhorn_max_iter")
            if self.n_shards is not None:
                check_positive_int(self.n_shards, "n_shards")
            if self.history_limit is not None:
                check_positive_int(self.history_limit, "history_limit")
        except ValidationError as exc:
            raise ConfigurationError(str(exc)) from None
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigurationError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, got {self.parallel_backend!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError("n_workers must be a positive integer or None")
        if self.shard_retries < 0:
            raise ConfigurationError(
                f"shard_retries must be a non-negative integer, got {self.shard_retries}"
            )
        if self.shard_timeout is not None and not (
            np.isfinite(self.shard_timeout) and self.shard_timeout > 0
        ):
            raise ConfigurationError(
                f"shard_timeout must be a positive number or None, got {self.shard_timeout}"
            )
        if self.on_poison_pair not in POISON_POLICIES:
            raise ConfigurationError(
                f"on_poison_pair must be one of {POISON_POLICIES}, got {self.on_poison_pair!r}"
            )
        if not 0 <= self.lr_inspection_index < self.tau_test:
            raise ConfigurationError(
                f"lr_inspection_index must lie in [0, tau_test={self.tau_test}), "
                f"got {self.lr_inspection_index}"
            )
        if self.n_bootstrap < 2:
            raise ConfigurationError("n_bootstrap must be at least 2")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("alpha must lie strictly between 0 and 1")

    @property
    def window_span(self) -> int:
        """Total number of bags needed around an inspection point (τ + τ′)."""
        return self.tau + self.tau_test
