"""Result containers returned by the detectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..bootstrap import ConfidenceInterval


@dataclass(frozen=True)
class ScorePoint:
    """Score, confidence interval and alert decision at one inspection point.

    Attributes
    ----------
    time:
        Index of the inspection point ``t`` (position of the first test bag
        in the original sequence).
    score:
        Point estimate of the change-point score with the nominal weights.
    interval:
        Bayesian-bootstrap confidence interval of the score.
    gamma:
        Test statistic ``γ_t = θ_lo(t) − θ_up(t − τ′)`` (paper Eq. 20);
        ``nan`` when no comparison interval exists yet.
    alert:
        Whether a significant change was declared at ``t`` (``γ_t > 0``).
    """

    time: int
    score: float
    interval: ConfidenceInterval
    gamma: float = float("nan")
    alert: bool = False


@dataclass
class DetectionResult:
    """Full output of a change-point detection run.

    The per-time-step information is held in :attr:`points`; convenience
    array views (:attr:`times`, :attr:`scores`, …) are provided for
    plotting and evaluation.
    """

    points: List[ScorePoint] = field(default_factory=list)
    emd_matrix: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Array views
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> np.ndarray:
        """Inspection-point indices."""
        return np.array([p.time for p in self.points], dtype=int)

    @property
    def scores(self) -> np.ndarray:
        """Point estimates of the change-point score."""
        return np.array([p.score for p in self.points], dtype=float)

    @property
    def lower(self) -> np.ndarray:
        """Lower confidence bounds ``θ_lo(t)``."""
        return np.array([p.interval.lower for p in self.points], dtype=float)

    @property
    def upper(self) -> np.ndarray:
        """Upper confidence bounds ``θ_up(t)``."""
        return np.array([p.interval.upper for p in self.points], dtype=float)

    @property
    def gammas(self) -> np.ndarray:
        """Test statistics ``γ_t``."""
        return np.array([p.gamma for p in self.points], dtype=float)

    @property
    def alerts(self) -> np.ndarray:
        """Boolean alert flags."""
        return np.array([p.alert for p in self.points], dtype=bool)

    @property
    def alarm_times(self) -> np.ndarray:
        """Times at which alerts were raised."""
        return self.times[self.alerts]

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[ScorePoint]:
        return iter(self.points)

    def to_dict(self) -> Dict[str, list]:
        """Plain-python dictionary view (useful for CSV/JSON export)."""
        return {
            "time": self.times.tolist(),
            "score": self.scores.tolist(),
            "lower": self.lower.tolist(),
            "upper": self.upper.tolist(),
            "gamma": [None if np.isnan(g) else float(g) for g in self.gammas],
            "alert": self.alerts.tolist(),
        }

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the run."""
        n_alerts = int(self.alerts.sum())
        if len(self.points) == 0:
            return "DetectionResult(empty)"
        return (
            f"DetectionResult: {len(self.points)} inspection points "
            f"(t={self.times[0]}..{self.times[-1]}), "
            f"{n_alerts} alert(s) at {self.alarm_times.tolist()}, "
            f"max score {self.scores.max():.4f}"
        )
