"""Offline bag-of-data change-point detector (the paper's main algorithm).

:class:`BagChangePointDetector` runs the full pipeline over a complete
sequence of bags:

1. build a signature per bag (Section 3.1);
2. compute the EMD between every pair of signatures that can ever share a
   reference/test window (Section 3.2) — only a band of width τ + τ′ of
   the full pairwise matrix is needed;
3. at each inspection point ``t`` compute the change-point score
   (Section 3.3) and its Bayesian-bootstrap confidence interval
   (Section 4.2) through the batched
   :class:`~repro.core.score_engine.ScoreEngine` — the point score and
   all replicates share one log transform and one array contraction;
4. apply the adaptive interval-overlap test to decide where alerts are
   raised (Section 4.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .._typing import IntArray
from .._validation import as_rng
from ..emd import BandedDistanceMatrix, PairwiseEMDEngine
from ..emd.orchestrator import RetryPolicy, ShardOrchestrator
from ..emd.sharding import EngineSettings, ShardPlan
from ..exceptions import ValidationError
from ..signatures import Signature, SignatureBuilder
from .bag import BagSequence
from .config import DetectorConfig
from .results import DetectionResult, ScorePoint
from .score_engine import ScoreEngine
from .scores import WindowDistances
from .segmentation import merge_close_alarms
from .thresholding import AdaptiveThreshold

BagsInput = Union[BagSequence, Sequence[np.ndarray], Sequence[Signature]]


class BagChangePointDetector:
    """Change-point detector for sequences of bags of data.

    Parameters
    ----------
    config:
        A fully specified :class:`~repro.core.DetectorConfig`.  Keyword
        arguments may be passed instead and are forwarded to the config.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BagChangePointDetector
    >>> rng = np.random.default_rng(0)
    >>> bags = [rng.normal(0, 1, size=(50, 2)) for _ in range(10)]
    >>> bags += [rng.normal(4, 1, size=(50, 2)) for _ in range(10)]
    >>> detector = BagChangePointDetector(tau=5, tau_test=5, random_state=0)
    >>> result = detector.detect(bags)
    >>> bool(result.alerts.any())
    True
    """

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs: object) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self._rng = as_rng(config.random_state)
        self._engine = PairwiseEMDEngine(
            ground_distance=config.ground_distance,
            backend=config.emd_backend,
            parallel_backend=config.parallel_backend,
            n_workers=config.n_workers,
            sinkhorn_epsilon=config.sinkhorn_epsilon,
            sinkhorn_max_iter=config.sinkhorn_max_iter,
            sinkhorn_tol=config.sinkhorn_tol,
            sinkhorn_anneal=config.sinkhorn_anneal,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the EMD engine's worker pool (idempotent).

        Only needed when ``parallel_backend`` is ``"thread"``/``"process"``
        — the engine keeps its pool alive across calls; a closed detector
        cannot ``detect`` again.
        """
        self._engine.close()

    def __enter__(self) -> "BagChangePointDetector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Signature construction
    # ------------------------------------------------------------------ #
    def build_signatures(self, bags: BagsInput) -> List[Signature]:
        """Turn the input into a list of signatures, one per time step."""
        if isinstance(bags, BagSequence):
            arrays = bags.arrays()
        elif len(bags) > 0 and isinstance(bags[0], Signature):
            return list(bags)  # already signatures
        else:
            arrays = [np.asarray(bag, dtype=float) for bag in bags]
        builder = SignatureBuilder(
            self.config.signature_method,
            n_clusters=self.config.n_clusters,
            bins=self.config.bins,
            histogram_range=self.config.histogram_range,
            random_state=self._rng,
        )
        return builder.build_sequence(arrays)

    # ------------------------------------------------------------------ #
    # Distance computation
    # ------------------------------------------------------------------ #
    def _banded_distances(self, signatures: Sequence[Signature]) -> BandedDistanceMatrix:
        """Pairwise EMD values inside the band that windows can reach.

        Signature ``i`` and ``j`` appear in the same reference/test window
        only when ``|i − j| < τ + τ′``; only those entries are computed
        (in batches, through :class:`~repro.emd.PairwiseEMDEngine`) and
        stored.  With ``config.n_shards`` set, the band is built through
        the fault-tolerant :class:`~repro.emd.orchestrator.ShardOrchestrator`
        instead — row-block shards executed process-parallel when
        ``parallel_backend="process"`` (signatures in shared memory, one
        placement per worker) and sequentially otherwise, with per-shard
        retry/backoff (``config.shard_retries``), optional timeouts
        (``config.shard_timeout``), poison-pair quarantine
        (``config.on_poison_pair``), checkpointing per shard when
        ``config.shard_checkpoint_dir`` is set, then merged into the
        identical banded matrix.
        """
        cfg = self.config
        if cfg.n_shards is not None or cfg.shard_checkpoint_dir is not None:
            # A checkpoint dir alone still means "make the build
            # resumable": run it as a single checkpointed shard.
            plan = ShardPlan.build(len(signatures), cfg.window_span, cfg.n_shards or 1)
            orchestrator = ShardOrchestrator(
                plan,
                EngineSettings.from_config(cfg),
                policy=RetryPolicy.from_config(cfg),
                mode="process" if cfg.parallel_backend == "process" else "serial",
                n_workers=cfg.n_workers,
                checkpoint_dir=cfg.shard_checkpoint_dir,
            )
            return orchestrator.run(signatures)
        return self._engine.banded_matrix(signatures, self.config.window_span)

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def detect(
        self,
        bags: BagsInput,
        *,
        return_distance_matrix: bool = False,
    ) -> DetectionResult:
        """Run detection over a full sequence of bags.

        Parameters
        ----------
        bags:
            A :class:`~repro.core.BagSequence`, a list of ``(n_t, d)``
            arrays, or a list of prebuilt :class:`~repro.signatures.Signature`.
        return_distance_matrix:
            Attach the (banded) pairwise EMD matrix to the result, as
            visualised in the paper's Fig. 6 left panels.

        Returns
        -------
        DetectionResult
            One :class:`~repro.core.ScorePoint` per inspection point
            ``t ∈ [τ, T − τ′]``.
        """
        cfg = self.config
        signatures = self.build_signatures(bags)
        n = len(signatures)
        if n < cfg.window_span:
            raise ValidationError(
                f"need at least tau + tau_test = {cfg.window_span} bags, got {n}"
            )

        distance_matrix = self._banded_distances(signatures)
        score_engine = ScoreEngine(cfg, rng=self._rng)
        threshold = AdaptiveThreshold(cfg.tau_test)
        points: List[ScorePoint] = []

        for t in range(cfg.tau, n - cfg.tau_test + 1):
            ref_pairwise, test_pairwise, cross = distance_matrix.window(
                t - cfg.tau, cfg.tau, cfg.tau_test
            )
            window = WindowDistances(
                ref_pairwise=ref_pairwise,
                test_pairwise=test_pairwise,
                cross=cross,
            )
            point_score, interval = score_engine.point_and_interval(window)
            gamma, alert = threshold.update(t, interval)
            points.append(
                ScorePoint(
                    time=t, score=point_score, interval=interval, gamma=gamma, alert=alert
                )
            )

        result = DetectionResult(
            points=points,
            emd_matrix=distance_matrix.to_dense() if return_distance_matrix else None,
            metadata={
                "tau": cfg.tau,
                "tau_test": cfg.tau_test,
                "score": cfg.score,
                "n_bags": n,
                "signature_method": cfg.signature_method,
            },
        )
        return result

    # ------------------------------------------------------------------ #
    # Estimator facade (repro.api contract)
    # ------------------------------------------------------------------ #
    def fit_predict(self, bags: BagsInput, *, min_gap: Optional[int] = None) -> IntArray:
        """Run detection and return sparse change-point indices.

        This is the :mod:`repro.api` estimator contract: unlike
        :meth:`detect`, which returns the full per-step score trace,
        ``fit_predict`` collapses the alarms into change points — runs of
        alarms closer than ``min_gap`` merge into one, keeping the
        earliest time (consecutive alarms while the test window straddles
        one change refer to the same event).

        Parameters
        ----------
        bags:
            Same input as :meth:`detect`.
        min_gap:
            Merging distance; defaults to the test-window length
            ``tau_test``.

        Returns
        -------
        IntArray
            Strictly increasing indices in ``(0, len(bags))``, each the
            first bag of a new segment.
        """
        result = self.detect(bags)
        gap = int(min_gap) if min_gap is not None else self.config.tau_test
        merged = merge_close_alarms(result.alarm_times.tolist(), max(gap, 1))
        n = int(result.metadata["n_bags"])
        return np.asarray([cp for cp in merged if 0 < cp < n], dtype=np.int64)

    def fit_transform(self, bags: BagsInput, *, min_gap: Optional[int] = None) -> IntArray:
        """Run detection and return dense per-bag segment labels.

        Parameters
        ----------
        bags:
            Same input as :meth:`detect`.
        min_gap:
            Alarm-merging distance, as in :meth:`fit_predict`.

        Returns
        -------
        IntArray
            One segment label per bag (``0`` before the first change
            point), i.e. ``sparse_to_dense(fit_predict(bags), len(bags))``.
        """
        # Local import: repro.api imports repro.core, not the reverse.
        from ..api.conversion import sparse_to_dense

        signatures = self.build_signatures(bags)
        return sparse_to_dense(self.fit_predict(signatures), len(signatures))
