"""Adaptive thresholding of change-point scores (paper Section 4).

Instead of comparing the score to a fixed threshold η, the paper performs
a per-step statistical test: the Bayesian bootstrap gives a
``100(1 − α)%`` confidence interval ``[θ_lo(t), θ_up(t)]`` of the score at
every time step, and a significant change is declared at ``t`` when

    γ_t = θ_lo(t) − θ_up(t − τ′) > 0,

i.e. when the interval at ``t`` lies entirely above the interval τ′ steps
earlier (the two intervals then involve disjoint test windows).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int
from ..bootstrap import ConfidenceInterval


def gamma_statistic(
    current: ConfidenceInterval, earlier: Optional[ConfidenceInterval]
) -> float:
    """Compute ``γ_t = θ_lo(t) − θ_up(t − τ′)`` (paper Eq. 20).

    Returns ``nan`` when the earlier interval is not available (start of
    the sequence), in which case no alert can be raised.
    """
    if earlier is None:
        return float("nan")
    return current.lower - earlier.upper


def is_significant(gamma: float) -> bool:
    """Alert decision ``γ_t > 0`` (paper Eq. 18)."""
    return bool(np.isfinite(gamma) and gamma > 0.0)


class AdaptiveThreshold:
    """Stateful helper applying the interval-overlap test along a sequence.

    Intervals are registered in time order via :meth:`update`, which
    returns the γ statistic and the alert decision for the newly added
    time step by comparing it to the interval ``lag`` steps earlier
    (``lag = τ′`` in the paper, so the two test windows share no bag).
    """

    def __init__(self, lag: int) -> None:
        self.lag = check_positive_int(lag, "lag")
        self._intervals: Dict[int, ConfidenceInterval] = {}

    def update(self, time: int, interval: ConfidenceInterval) -> Tuple[float, bool]:
        """Register the interval at ``time`` and test it against ``time − lag``."""
        self._intervals[int(time)] = interval
        earlier = self._intervals.get(int(time) - self.lag)
        gamma = gamma_statistic(interval, earlier)
        return gamma, is_significant(gamma)

    def interval_at(self, time: int) -> Optional[ConfidenceInterval]:
        """The interval registered at ``time``, if any."""
        return self._intervals.get(int(time))

    def state(self, *, tail_only: bool = False) -> Dict[int, ConfidenceInterval]:
        """The registered intervals, for snapshotting.

        With ``tail_only=True`` only the ``lag`` most recent entries are
        returned — the only ones a future :meth:`update` can still
        compare against, since registration times strictly increase.
        """
        if not tail_only or len(self._intervals) <= self.lag:
            return dict(self._intervals)
        kept = sorted(self._intervals)[-self.lag :]
        return {t: self._intervals[t] for t in kept}

    def restore(self, intervals: Mapping[int, ConfidenceInterval]) -> None:
        """Replace the registered intervals (snapshot restore)."""
        self._intervals = {int(t): interval for t, interval in intervals.items()}

    def __len__(self) -> int:
        return len(self._intervals)


def apply_threshold(
    times: Sequence[int],
    intervals: Sequence[ConfidenceInterval],
    lag: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vector form of the adaptive threshold over an entire run.

    Parameters
    ----------
    times:
        Inspection-point indices, in increasing order.
    intervals:
        Confidence interval for each inspection point.
    lag:
        Interval separation τ′.

    Returns
    -------
    tuple
        ``(gammas, alerts)`` arrays aligned with ``times``.
    """
    if len(times) != len(intervals):
        raise ValueError("times and intervals must have the same length")
    threshold = AdaptiveThreshold(lag)
    gammas: List[float] = []
    alerts: List[bool] = []
    for t, interval in zip(times, intervals):
        gamma, alert = threshold.update(int(t), interval)
        gammas.append(gamma)
        alerts.append(alert)
    return np.array(gammas, dtype=float), np.array(alerts, dtype=bool)
