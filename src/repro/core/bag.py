"""Bag and bag-sequence containers (paper Section 2).

A *bag* ``B_t = {x_i^(t)}`` is the observation at a single time step: a
collection of ``d``-dimensional vectors whose size ``n_t`` may vary over
time.  A :class:`BagSequence` is the time-ordered stream of bags that the
change-point detector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from .._validation import check_matrix
from ..exceptions import ValidationError


@dataclass(frozen=True)
class Bag:
    """A single bag of observations.

    Attributes
    ----------
    data:
        Array of shape ``(n_t, d)`` with the observations of this time step.
    index:
        The time index (or any identifying label) of the bag.
    """

    data: np.ndarray
    index: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        data = check_matrix(self.data, "data")
        data = data.copy()
        data.setflags(write=False)
        object.__setattr__(self, "data", data)

    @property
    def size(self) -> int:
        """Number of observations ``n_t`` in the bag."""
        return int(self.data.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of each observation."""
        return int(self.data.shape[1])

    def mean(self) -> np.ndarray:
        """Sample mean of the bag (the summary that loses shape information,
        used by the paper's Fig. 1 to show why descriptive statistics fail)."""
        return self.data.mean(axis=0)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bag(index={self.index!r}, size={self.size}, dimension={self.dimension})"


class BagSequence:
    """A time-ordered sequence of bags with a common dimensionality.

    Parameters
    ----------
    bags:
        Iterable of :class:`Bag` objects or raw ``(n_t, d)`` arrays.
    indices:
        Optional time labels; defaults to ``0, 1, 2, …``.
    """

    def __init__(
        self,
        bags: Iterable,
        indices: Optional[Sequence[object]] = None,
    ):
        materialised: List[Bag] = []
        for position, item in enumerate(bags):
            label = indices[position] if indices is not None else position
            if isinstance(item, Bag):
                bag = item if item.index is not None and indices is None else Bag(item.data, label)
            else:
                bag = Bag(np.asarray(item, dtype=float), label)
            materialised.append(bag)
        if not materialised:
            raise ValidationError("a BagSequence needs at least one bag")
        dims = {bag.dimension for bag in materialised}
        if len(dims) != 1:
            raise ValidationError(
                f"all bags must share the same dimensionality; found {sorted(dims)}"
            )
        self._bags = materialised

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._bags)

    def __iter__(self) -> Iterator[Bag]:
        return iter(self._bags)

    def __getitem__(self, item: Union[int, slice]) -> Union[Bag, "BagSequence"]:
        if isinstance(item, slice):
            return BagSequence(self._bags[item])
        return self._bags[item]

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Common dimensionality of all bags."""
        return self._bags[0].dimension

    @property
    def sizes(self) -> np.ndarray:
        """Array of bag sizes ``n_t``."""
        return np.array([bag.size for bag in self._bags], dtype=int)

    @property
    def indices(self) -> list:
        """Time labels of the bags."""
        return [bag.index for bag in self._bags]

    @property
    def bags(self) -> List[Bag]:
        """The underlying list of bags (do not mutate)."""
        return list(self._bags)

    # ------------------------------------------------------------------ #
    # Views and summaries
    # ------------------------------------------------------------------ #
    def arrays(self) -> List[np.ndarray]:
        """The raw data arrays of all bags, in order."""
        return [bag.data for bag in self._bags]

    def window(self, start: int, length: int) -> "BagSequence":
        """Sub-sequence of ``length`` bags starting at position ``start``."""
        if start < 0 or length <= 0 or start + length > len(self._bags):
            raise ValidationError(
                f"invalid window [{start}, {start + length}) for a sequence of "
                f"length {len(self._bags)}"
            )
        return BagSequence(self._bags[start : start + length])

    def mean_sequence(self) -> np.ndarray:
        """Sequence of per-bag sample means, shape ``(T, d)``.

        This is the descriptive-statistics summary that conventional
        (single-vector) change-point detectors are run on in the paper's
        motivating example (Fig. 1(b)).
        """
        return np.vstack([bag.mean() for bag in self._bags])

    def stack(self) -> np.ndarray:
        """All observations from all bags stacked into one ``(Σ n_t, d)`` array."""
        return np.vstack([bag.data for bag in self._bags])

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_arrays(arrays: Sequence[np.ndarray]) -> "BagSequence":
        """Build a sequence from a list of ``(n_t, d)`` arrays."""
        return BagSequence(arrays)

    @staticmethod
    def from_long_format(
        times: np.ndarray, values: np.ndarray
    ) -> "BagSequence":
        """Build a sequence from long-format data.

        Parameters
        ----------
        times:
            Length-``N`` vector assigning each observation to a time step;
            bags are formed by grouping equal values, ordered by sorted
            unique time.
        values:
            ``(N, d)`` array (or length-``N`` vector) of observations.
        """
        times = np.asarray(times).ravel()
        values = check_matrix(values, "values")
        if times.shape[0] != values.shape[0]:
            raise ValidationError("times and values must have the same length")
        unique_times = np.unique(times)
        bags = [Bag(values[times == t], index=t) for t in unique_times]
        return BagSequence(bags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BagSequence(n_bags={len(self)}, dimension={self.dimension}, "
            f"mean_bag_size={self.sizes.mean():.1f})"
        )
