"""Named registry of seeded benchmark datasets.

The companion of :mod:`repro.api.registry` on the data side: every entry
is a builder that maps a seed to a fully materialised
:class:`~repro.datasets.BagDataset` with ground-truth change points, so
the ``repro-detect zoo`` harness (and any test) can cross any registered
detector with any registered dataset by name.

Registered datasets:

``mixture``
    The paper's Fig. 1 three-regime Gaussian-mixture stream (150 bags of
    ~300 observations; changes at 50 and 100).
``mixture_small``
    A scaled-down variant (60 bags of ~60 observations; changes at 20
    and 40) for quick smoke runs.
``ci1`` … ``ci5``
    The five Section-5.1 confidence-interval datasets (20 bags each).
``pamap``
    One simulated PAMAP subject performing the default activity protocol
    (~230 bags of ~950 sensor records).
``darknet``
    Window-aggregated darknet traffic with the default scripted attack
    campaigns (100 bags).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ValidationError
from .base import BagDataset
from .darknet import DarknetTrafficSimulator
from .mixtures import make_mixture_stream
from .pamap import PamapSimulator
from .synthetic_bags import make_confidence_interval_dataset

__all__ = ["dataset_names", "make_dataset", "register_dataset"]

#: A builder maps a seed to a materialised dataset.
DatasetBuilder = Callable[[int], BagDataset]

_REGISTRY: Dict[str, DatasetBuilder] = {}


def register_dataset(name: str) -> Callable[[DatasetBuilder], DatasetBuilder]:
    """Decorator: enrol a seeded dataset builder under ``name``.

    Parameters
    ----------
    name:
        Registry key (also the CLI spelling).  Must be unique; a
        duplicate registration raises
        :class:`~repro.exceptions.ValidationError`.
    """
    if not name:
        raise ValidationError("dataset name must be non-empty")

    def decorator(builder: DatasetBuilder) -> DatasetBuilder:
        if name in _REGISTRY and _REGISTRY[name] is not builder:
            raise ValidationError(f"dataset name {name!r} is already registered")
        _REGISTRY[name] = builder
        return builder

    return decorator


def make_dataset(name: str, *, random_state: int = 0) -> BagDataset:
    """Materialise a registered dataset.

    Parameters
    ----------
    name:
        A key previously passed to :func:`register_dataset`.
    random_state:
        Integer seed handed to the builder; the same seed always yields
        the same dataset.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValidationError(
            f"unknown dataset {name!r}; registered datasets: {known}"
        ) from None
    dataset = builder(int(random_state))
    if not dataset.name:
        dataset.name = name
    return dataset


def dataset_names() -> List[str]:
    """All registered dataset names, sorted."""
    return sorted(_REGISTRY)


@register_dataset("mixture")
def _mixture(seed: int) -> BagDataset:
    return make_mixture_stream(random_state=seed)


@register_dataset("mixture_small")
def _mixture_small(seed: int) -> BagDataset:
    return make_mixture_stream(
        steps_per_regime=20, bag_size=60, bag_size_jitter=10, random_state=seed
    )


def _register_ci(dataset_id: int) -> None:
    @register_dataset(f"ci{dataset_id}")
    def _build(seed: int) -> BagDataset:
        return make_confidence_interval_dataset(dataset_id, random_state=seed)


for _dataset_id in (1, 2, 3, 4, 5):
    _register_ci(_dataset_id)


@register_dataset("pamap")
def _pamap(seed: int) -> BagDataset:
    return PamapSimulator(random_state=seed).simulate_subject()


@register_dataset("darknet")
def _darknet(seed: int) -> BagDataset:
    return DarknetTrafficSimulator(random_state=seed).generate()
