"""Common containers for the synthetic datasets shipped with the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..core.bag import BagSequence


@dataclass
class BagDataset:
    """A generated bag stream together with its ground truth.

    Attributes
    ----------
    bags:
        The list of per-time-step bags (``(n_t, d)`` arrays).
    change_points:
        Sorted list of time indices at which the generating distribution
        changed (the index of the *first* bag drawn from the new regime).
    name:
        Identifier of the dataset/configuration.
    metadata:
        Free-form extra information (parameters, labels per step, …).
    """

    bags: List[np.ndarray]
    change_points: List[int]
    name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.bags)

    @property
    def sizes(self) -> np.ndarray:
        """Number of observations in each bag."""
        return np.array([len(bag) for bag in self.bags], dtype=int)

    def to_sequence(self) -> BagSequence:
        """The bags wrapped in a :class:`~repro.core.BagSequence`."""
        return BagSequence(self.bags)


@dataclass
class GraphDataset:
    """A generated sequence of bipartite graphs together with its ground truth.

    Attributes
    ----------
    graphs:
        List of :class:`~repro.graphs.BipartiteGraph`, one per time step.
    change_points:
        Time indices at which the generating parameters changed.
    name:
        Identifier of the dataset/configuration.
    metadata:
        Free-form extra information (event labels, parameters per step, …).
    """

    graphs: list
    change_points: List[int]
    name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.graphs)
