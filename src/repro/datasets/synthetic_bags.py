"""The five synthetic 2-D bag datasets of paper Section 5.1 (Fig. 6).

Each dataset is a sequence of 20 bags of two-dimensional Gaussian vectors;
the number of vectors per bag follows a Poisson distribution with mean 50.
The five configurations probe the behaviour of the Bayesian-bootstrap
confidence intervals:

1. large variance, no change point;
2. 80% standard normal + 20% wide noise, no change point;
3. mean moving slowly on a circle (gradual drift), no significant change;
4. a mean jump from (3, 0) to (−3, 0) at t = 11 (one clear change point);
5. the rotation speed of the mean increases at t = 11.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ConfigurationError
from .base import BagDataset

BagSampler = Callable[[int, int, np.random.Generator], np.ndarray]
"""Signature of a per-dataset sampler: ``(t, n_t, rng) -> (n_t, 2) array``.

Time indices ``t`` run from 1 to ``n_bags`` to match the paper's notation.
"""


def _dataset1(t: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """All vectors from N(0, 15·I): large variance, no change."""
    return rng.multivariate_normal(np.zeros(2), 15.0 * np.eye(2), size=n)


def _dataset2(t: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """~80% standard normal, ~20% wide noise around random centres."""
    n_clean = int(np.ceil(0.8 * n))
    clean = rng.multivariate_normal(np.zeros(2), np.eye(2), size=n_clean)
    n_noise = n - n_clean
    if n_noise <= 0:
        return clean
    noise_means = rng.multivariate_normal(np.zeros(2), 20.0 * np.eye(2), size=n_noise)
    noise = noise_means + rng.multivariate_normal(np.zeros(2), 5.0 * np.eye(2), size=n_noise)
    return np.vstack([clean, noise])


def _circular_mean(t: int, radius: float) -> np.ndarray:
    angle = np.pi * (t - 0.5) / 5.0
    return radius * np.array([np.cos(angle), np.sin(angle)])


def _dataset3(t: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """Mean moving on a circle of radius √3 (constant gradual drift)."""
    return rng.multivariate_normal(_circular_mean(t, np.sqrt(3.0)), np.eye(2), size=n)


def _dataset4(t: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """Mean jumps from (3, 0) to (−3, 0) at t = 11."""
    mean = np.array([3.0, 0.0]) if t <= 10 else np.array([-3.0, 0.0])
    return rng.multivariate_normal(mean, np.eye(2), size=n)


def _dataset5(t: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """The radius of the circular drift changes from √3 to 3 at t = 11."""
    radius = np.sqrt(3.0) if t <= 10 else 3.0
    return rng.multivariate_normal(_circular_mean(t, radius), np.eye(2), size=n)


_SAMPLERS: Dict[int, Tuple[BagSampler, List[int], str]] = {
    1: (_dataset1, [], "large variance, no change"),
    2: (_dataset2, [], "80% clean + 20% noise, no change"),
    3: (_dataset3, [], "slow circular drift, no significant change"),
    4: (_dataset4, [10], "mean jump (3,0) -> (-3,0) at t=11"),
    5: (_dataset5, [10], "circular drift speeds up at t=11"),
}


def make_confidence_interval_dataset(
    dataset_id: int,
    *,
    n_bags: int = 20,
    mean_bag_size: float = 50.0,
    random_state: Union[None, int, np.random.Generator] = None,
) -> BagDataset:
    """Generate one of the five Section-5.1 datasets.

    Parameters
    ----------
    dataset_id:
        1 through 5, matching the paper's numbering.
    n_bags:
        Number of bags (the paper uses 20).
    mean_bag_size:
        Poisson mean of the per-bag sample count (the paper uses λ = 50).
    random_state:
        Seed or generator.

    Returns
    -------
    BagDataset
        ``change_points`` uses 0-based indexing: the paper's "change at
        t = 11" (1-based) is reported as index 10.
    """
    if dataset_id not in _SAMPLERS:
        raise ConfigurationError(f"dataset_id must be in {sorted(_SAMPLERS)}, got {dataset_id}")
    n_bags = check_positive_int(n_bags, "n_bags")
    rng = as_rng(random_state)
    sampler, change_points, description = _SAMPLERS[dataset_id]

    bags: List[np.ndarray] = []
    for t in range(1, n_bags + 1):
        size = max(int(rng.poisson(mean_bag_size)), 2)
        bags.append(sampler(t, size, rng))
    return BagDataset(
        bags=bags,
        change_points=[cp for cp in change_points if cp < n_bags],
        name=f"section5.1_dataset{dataset_id}",
        metadata={"dataset_id": dataset_id, "description": description},
    )


def make_all_confidence_interval_datasets(
    *,
    n_bags: int = 20,
    mean_bag_size: float = 50.0,
    random_state: Union[None, int, np.random.Generator] = None,
) -> Dict[int, BagDataset]:
    """All five Section-5.1 datasets keyed by their id."""
    rng = as_rng(random_state)
    return {
        dataset_id: make_confidence_interval_dataset(
            dataset_id, n_bags=n_bags, mean_bag_size=mean_bag_size, random_state=rng
        )
        for dataset_id in sorted(_SAMPLERS)
    }
