"""The four synthetic bipartite-graph streams of paper Section 5.3 (Fig. 10).

All four datasets share the same backbone: at every time step a bipartite
graph with two source-node clusters and two destination-node clusters is
sampled; node counts follow Poisson(200); each community (source cluster k,
destination cluster l) has edge weights that are Poisson with rate λ_{k,l}.
The initial state is λ = [[10, 3], [1, 5]], κ = δ = 0.5.  Every 20 steps
the parameters are perturbed, and the magnitude of the perturbation grows
over time, so later change points are easier to detect than earlier ones:

* **Dataset 1** — the rates are all shifted by ``a + 1`` inside alternating
  20-step blocks (total traffic changes, partitions fixed).
* **Dataset 2** — the partition fractions κ = δ jump to ``0.5 ± 0.1a``
  inside alternating blocks (partitioning changes, rates fixed).
* **Dataset 3** — like dataset 2 but the total edge weight is fixed to
  100 000 and distributed according to the rate ratios, so only the
  *structure* changes while the traffic volume stays constant.
* **Dataset 4** — κ, δ stay fixed and the λ values are permuted in a
  different way every block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ConfigurationError
from ..graphs import BipartiteGraph, CommunityModel, sample_community_graph
from .base import GraphDataset

#: Initial community parameters of Section 5.3.
INITIAL_RATES = np.array([[10.0, 3.0], [1.0, 5.0]])
INITIAL_KAPPA = 0.5
INITIAL_DELTA = 0.5
BLOCK_LENGTH = 20

#: Permutations of (λ11, λ12, λ21, λ22) applied by dataset 4, one per block.
_DATASET4_PERMUTATIONS = [
    (1, 0, 3, 2),   # swap within rows
    (2, 3, 0, 1),   # swap rows
    (3, 2, 1, 0),   # full reversal
    (0, 2, 1, 3),   # swap off-diagonal
    (3, 1, 2, 0),   # swap diagonal
    (1, 3, 0, 2),   # rotate
]


def _block_index(t: int) -> int:
    """Block number of time step ``t`` (0-based; blocks are 20 steps long)."""
    return t // BLOCK_LENGTH


def _base_model(mean_nodes: float) -> CommunityModel:
    return CommunityModel(
        rate_matrix=INITIAL_RATES.copy(),
        source_fractions=np.array([INITIAL_KAPPA, 1.0 - INITIAL_KAPPA]),
        destination_fractions=np.array([INITIAL_DELTA, 1.0 - INITIAL_DELTA]),
        mean_sources=mean_nodes,
        mean_destinations=mean_nodes,
    )


def _model_for_step(
    dataset_id: int,
    t: int,
    mean_nodes: float,
    rng: np.random.Generator,
    block_signs: Dict[int, int],
) -> tuple[CommunityModel, Optional[float]]:
    """Community model (and optional fixed total weight) for time step ``t``."""
    model = _base_model(mean_nodes)
    block = _block_index(t)
    # Block 0 is the initial state; perturbations start from block 1 and the
    # perturbation magnitude index is a = block (grows over time), with only
    # every other block perturbed so the parameters alternate back and forth
    # (each block boundary is a change point).
    if block == 0:
        fixed_total = 100_000.0 if dataset_id == 3 else None
        return model, fixed_total
    magnitude = block  # a = 1, 2, ... grows with time
    perturbed = block % 2 == 1  # odd blocks carry the perturbation

    if dataset_id == 1:
        if perturbed:
            model = model.with_rates(np.full((2, 2), magnitude + 1.0))
        else:
            model = model.with_rates(np.ones((2, 2)))
        return model, None

    if dataset_id in (2, 3):
        if perturbed:
            if block not in block_signs:
                block_signs[block] = int(rng.integers(0, 2))
            sign = 1.0 if block_signs[block] == 1 else -1.0
            fraction = float(np.clip(0.5 + 0.1 * magnitude * sign, 0.05, 0.95))
        else:
            fraction = 0.5
        model = model.with_partitions(fraction, fraction)
        fixed_total = 100_000.0 if dataset_id == 3 else None
        return model, fixed_total

    if dataset_id == 4:
        flat = INITIAL_RATES.ravel()
        if perturbed:
            permutation = _DATASET4_PERMUTATIONS[(block // 2) % len(_DATASET4_PERMUTATIONS)]
            flat = flat[list(permutation)]
        model = model.with_rates(flat.reshape(2, 2))
        return model, None

    raise ConfigurationError(f"dataset_id must be 1, 2, 3 or 4, got {dataset_id}")


def make_bipartite_stream(
    dataset_id: int,
    *,
    n_steps: Optional[int] = None,
    mean_nodes: float = 200.0,
    random_state: Union[None, int, np.random.Generator] = None,
) -> GraphDataset:
    """Generate one of the four Section-5.3 bipartite streams.

    Parameters
    ----------
    dataset_id:
        1 through 4, matching the paper's numbering.
    n_steps:
        Number of graphs; defaults to 200 (240 for dataset 4, matching the
        horizontal axes of Fig. 10).
    mean_nodes:
        Poisson mean of the source/destination node counts (paper: 200).
    random_state:
        Seed or generator.

    Returns
    -------
    GraphDataset
        ``change_points`` are the block boundaries (every 20 steps, starting
        at step 20); ``metadata["block_length"]`` records the block size.
    """
    if dataset_id not in (1, 2, 3, 4):
        raise ConfigurationError(f"dataset_id must be 1, 2, 3 or 4, got {dataset_id}")
    if n_steps is None:
        n_steps = 240 if dataset_id == 4 else 200
    n_steps = check_positive_int(n_steps, "n_steps")
    rng = as_rng(random_state)

    graphs: List[BipartiteGraph] = []
    block_signs: Dict[int, int] = {}
    for t in range(n_steps):
        model, fixed_total = _model_for_step(dataset_id, t, mean_nodes, rng, block_signs)
        graphs.append(
            sample_community_graph(
                model, rng=rng, index=t, fixed_total_weight=fixed_total
            )
        )

    change_points = [t for t in range(BLOCK_LENGTH, n_steps, BLOCK_LENGTH)]
    return GraphDataset(
        graphs=graphs,
        change_points=change_points,
        name=f"section5.3_dataset{dataset_id}",
        metadata={
            "dataset_id": dataset_id,
            "block_length": BLOCK_LENGTH,
            "mean_nodes": mean_nodes,
        },
    )
