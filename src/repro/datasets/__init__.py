"""Synthetic data generators mirroring the paper's evaluation section."""

from .base import BagDataset, GraphDataset
from .bipartite_streams import BLOCK_LENGTH, INITIAL_RATES, make_bipartite_stream
from .darknet import (
    DEFAULT_CAMPAIGNS,
    PACKET_FEATURES,
    AttackCampaign,
    DarknetTrafficSimulator,
)
from .enron import DEFAULT_EVENTS, EnronLikeStream, OrganizationalEvent
from .mixtures import make_mixture_stream
from .registry import dataset_names, make_dataset, register_dataset
from .pamap import (
    ACTIVITIES,
    ACTIVITY_PROFILES,
    DEFAULT_PROTOCOL,
    ActivityProfile,
    PamapSimulator,
)
from .synthetic_bags import (
    make_all_confidence_interval_datasets,
    make_confidence_interval_dataset,
)

__all__ = [
    "BagDataset",
    "GraphDataset",
    "make_mixture_stream",
    "make_dataset",
    "dataset_names",
    "register_dataset",
    "make_confidence_interval_dataset",
    "make_all_confidence_interval_datasets",
    "PamapSimulator",
    "ActivityProfile",
    "ACTIVITIES",
    "ACTIVITY_PROFILES",
    "DEFAULT_PROTOCOL",
    "make_bipartite_stream",
    "BLOCK_LENGTH",
    "INITIAL_RATES",
    "EnronLikeStream",
    "OrganizationalEvent",
    "DEFAULT_EVENTS",
    "DarknetTrafficSimulator",
    "AttackCampaign",
    "DEFAULT_CAMPAIGNS",
    "PACKET_FEATURES",
]
