"""The motivating Gaussian-mixture stream of the paper's Fig. 1.

At every time step roughly 300 one-dimensional observations are drawn;
from t = 0 to 49 they come from a single Gaussian, from t = 50 to 99 from
a mixture of two Gaussians, and from t = 100 to 149 from a mixture of
three Gaussians.  The sample mean of each bag barely moves, which is why
detectors run on the mean sequence (Fig. 1(b)) miss both changes while the
bag-of-data detector finds them.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ValidationError
from .base import BagDataset

# Mixture components per regime: (means, standard deviations, mixing weights).
_DEFAULT_REGIMES = (
    (np.array([0.0]), np.array([1.0]), np.array([1.0])),
    (np.array([-4.0, 4.0]), np.array([1.0, 1.0]), np.array([0.5, 0.5])),
    (np.array([-6.0, 0.0, 6.0]), np.array([1.0, 1.0, 1.0]), np.array([1 / 3, 1 / 3, 1 / 3])),
)


def _sample_mixture(
    means: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    components = rng.choice(len(means), size=size, p=weights)
    return rng.normal(means[components], stds[components]).reshape(-1, 1)


def make_mixture_stream(
    *,
    steps_per_regime: int = 50,
    bag_size: int = 300,
    bag_size_jitter: int = 30,
    regimes: Sequence = _DEFAULT_REGIMES,
    random_state: Union[None, int, np.random.Generator] = None,
) -> BagDataset:
    """Generate the Fig. 1 stream (or a customised variant of it).

    Parameters
    ----------
    steps_per_regime:
        Number of time steps in each regime (the paper uses 50).
    bag_size:
        Nominal number of observations per bag (the paper uses ~300).
    bag_size_jitter:
        Uniform jitter applied to the bag size so that sizes vary over time.
    regimes:
        Sequence of ``(means, stds, weights)`` triples, one per regime;
        the default reproduces the 1 → 2 → 3 component mixture of Fig. 1.
    random_state:
        Seed or generator.

    Returns
    -------
    BagDataset
        ``change_points`` holds the first index of every regime after the
        first (``[50, 100]`` with the defaults).
    """
    steps_per_regime = check_positive_int(steps_per_regime, "steps_per_regime")
    bag_size = check_positive_int(bag_size, "bag_size")
    if bag_size_jitter < 0 or bag_size_jitter >= bag_size:
        raise ValidationError("bag_size_jitter must lie in [0, bag_size)")
    if len(regimes) < 1:
        raise ValidationError("at least one regime is required")
    rng = as_rng(random_state)

    bags = []
    for means, stds, weights in regimes:
        means = np.asarray(means, dtype=float)
        stds = np.asarray(stds, dtype=float)
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
        for _ in range(steps_per_regime):
            if bag_size_jitter > 0:
                size = int(bag_size + rng.integers(-bag_size_jitter, bag_size_jitter + 1))
            else:
                size = bag_size
            bags.append(_sample_mixture(means, stds, weights, max(size, 1), rng))

    change_points = [steps_per_regime * k for k in range(1, len(regimes))]
    return BagDataset(
        bags=bags,
        change_points=change_points,
        name="fig1_mixture_stream",
        metadata={
            "steps_per_regime": steps_per_regime,
            "bag_size": bag_size,
            "n_regimes": len(regimes),
        },
    )
