"""Darknet-like traffic simulator (cyber-attack detection scenario).

The paper's concluding remarks mention that the method "has been used to
detect cyber attacks in a darknet, and it has performed very well" but
gives no figures or tables for that application.  To make the scenario
runnable (and to provide a third, security-flavoured example domain), this
module simulates darknet telescope traffic: unsolicited packets arriving at
unused IP space, aggregated into fixed time windows.  Each window is a bag
of per-packet feature vectors (destination port group, packet size, source
entropy proxy, inter-arrival time); scripted attack campaigns (port scans,
worm outbreaks, backscatter floods) change the composition of the traffic
and form the ground-truth change points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ConfigurationError
from .base import BagDataset


@dataclass(frozen=True)
class AttackCampaign:
    """A scripted attack observed by the darknet telescope.

    Attributes
    ----------
    start:
        Window index at which the campaign begins.
    duration:
        Number of windows the campaign lasts.
    kind:
        ``"port_scan"`` (many destination ports, tiny packets),
        ``"worm"`` (a single targeted port, mid-size packets, huge volume) or
        ``"backscatter"`` (responses to spoofed floods: large packets,
        few source networks).
    intensity:
        Multiplicative increase of the packet rate during the campaign.
    """

    start: int
    duration: int
    kind: str
    intensity: float = 3.0

    _KINDS = ("port_scan", "worm", "backscatter")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"kind must be one of {self._KINDS}, got {self.kind!r}")
        if self.start < 0 or self.duration <= 0:
            raise ConfigurationError("start must be >= 0 and duration positive")
        if self.intensity <= 0:
            raise ConfigurationError("intensity must be positive")


#: Default campaign script used when none is provided.
DEFAULT_CAMPAIGNS: Tuple[AttackCampaign, ...] = (
    AttackCampaign(start=25, duration=8, kind="port_scan", intensity=2.5),
    AttackCampaign(start=50, duration=10, kind="worm", intensity=4.0),
    AttackCampaign(start=75, duration=6, kind="backscatter", intensity=3.0),
)

#: Feature order of each packet vector.
PACKET_FEATURES = ("port_group", "packet_size", "source_entropy", "inter_arrival")


class DarknetTrafficSimulator:
    """Generator of darknet traffic bags with scripted attack campaigns.

    Parameters
    ----------
    n_windows:
        Number of aggregation windows (bags) to generate.
    base_rate:
        Mean number of background packets per window.
    campaigns:
        Scripted attacks; defaults to :data:`DEFAULT_CAMPAIGNS`.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_windows: int = 100,
        *,
        base_rate: float = 200.0,
        campaigns: Optional[Sequence[AttackCampaign]] = None,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        self.n_windows = check_positive_int(n_windows, "n_windows")
        if base_rate <= 0:
            raise ConfigurationError("base_rate must be positive")
        self.base_rate = float(base_rate)
        self.campaigns = tuple(campaigns) if campaigns is not None else DEFAULT_CAMPAIGNS
        for campaign in self.campaigns:
            if campaign.start + campaign.duration > self.n_windows:
                raise ConfigurationError(
                    f"campaign starting at {campaign.start} exceeds the stream length"
                )
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Packet models
    # ------------------------------------------------------------------ #
    def _background_packets(self, count: int) -> np.ndarray:
        """Benign scanning noise: diffuse ports, mixed sizes."""
        rng = self._rng
        port_group = rng.uniform(0.0, 10.0, count)
        packet_size = rng.gamma(shape=2.0, scale=120.0, size=count)
        source_entropy = rng.normal(4.5, 0.8, count)
        inter_arrival = rng.exponential(1.0, count)
        return np.column_stack([port_group, packet_size, source_entropy, inter_arrival])

    def _attack_packets(self, kind: str, count: int) -> np.ndarray:
        rng = self._rng
        if kind == "port_scan":
            port_group = rng.uniform(0.0, 10.0, count)          # sweeps the whole port space
            packet_size = rng.normal(60.0, 5.0, count)          # tiny SYN probes
            source_entropy = rng.normal(1.0, 0.3, count)        # few scanning hosts
            inter_arrival = rng.exponential(0.1, count)         # rapid fire
        elif kind == "worm":
            port_group = rng.normal(4.45, 0.05, count)          # one targeted service
            packet_size = rng.normal(400.0, 30.0, count)        # exploit payload
            source_entropy = rng.normal(6.0, 0.5, count)        # many infected hosts
            inter_arrival = rng.exponential(0.3, count)
        else:  # backscatter
            port_group = rng.normal(8.0, 0.2, count)            # high ephemeral ports
            packet_size = rng.normal(1200.0, 100.0, count)      # large responses
            source_entropy = rng.normal(2.0, 0.4, count)        # a handful of victims
            inter_arrival = rng.exponential(0.5, count)
        return np.column_stack(
            [port_group, np.maximum(packet_size, 20.0), source_entropy, inter_arrival]
        )

    def _active_campaign(self, window: int) -> Optional[AttackCampaign]:
        for campaign in self.campaigns:
            if campaign.start <= window < campaign.start + campaign.duration:
                return campaign
        return None

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def generate(self) -> BagDataset:
        """Generate the window-aggregated traffic stream.

        Returns
        -------
        BagDataset
            ``change_points`` holds both the onset and the end of every
            campaign (traffic composition changes at both);
            ``metadata["campaigns"]`` records the script.
        """
        bags: List[np.ndarray] = []
        for window in range(self.n_windows):
            campaign = self._active_campaign(window)
            background_count = max(int(self._rng.poisson(self.base_rate)), 5)
            packets = [self._background_packets(background_count)]
            if campaign is not None:
                attack_count = max(
                    int(self._rng.poisson(self.base_rate * (campaign.intensity - 1.0))), 1
                )
                packets.append(self._attack_packets(campaign.kind, attack_count))
            bags.append(np.vstack(packets))

        change_points = sorted(
            {campaign.start for campaign in self.campaigns}
            | {
                campaign.start + campaign.duration
                for campaign in self.campaigns
                if campaign.start + campaign.duration < self.n_windows
            }
        )
        return BagDataset(
            bags=bags,
            change_points=change_points,
            name="darknet_traffic",
            metadata={
                "campaigns": [
                    {
                        "start": campaign.start,
                        "duration": campaign.duration,
                        "kind": campaign.kind,
                        "intensity": campaign.intensity,
                    }
                    for campaign in self.campaigns
                ],
                "features": PACKET_FEATURES,
            },
        )
