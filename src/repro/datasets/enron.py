"""Enron-like weekly e-mail stream with scripted organisational events (§5.4).

The paper's case study builds one bipartite sender/recipient graph per week
from the Enron corpus (July 2000 – May 2002, ~100 weeks) and checks that
the change-point scores of the seven graph features coincide with known
events in the company's collapse.  The corpus itself is not available
offline, so this module generates a *synthetic organisational e-mail
stream*: a community-structured sender/recipient model whose parameters
receive scripted shocks at "event" weeks.  Each event perturbs the traffic
volume, the community structure, or both — the same kinds of change the
real events produced — so the evaluation logic of Fig. 11 (are event weeks
flagged by at least one feature?) carries over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ConfigurationError
from ..graphs import BipartiteGraph, CommunityModel, sample_community_graph
from .base import GraphDataset


@dataclass(frozen=True)
class OrganizationalEvent:
    """A scripted shock to the e-mail network.

    Attributes
    ----------
    week:
        Week index at which the shock takes effect.
    label:
        Human-readable description (mirrors the event table of Fig. 11).
    traffic_factor:
        Multiplicative change of all communication rates from this week on.
    restructuring:
        Extra concentration of traffic into the first community
        (0 = none, 1 = strong), modelling reorganisations / crisis
        communication patterns.
    transient:
        When ``True`` the shock only lasts for ``duration`` weeks and then
        reverts to the pre-event parameters.
    duration:
        Length of a transient shock in weeks.
    """

    week: int
    label: str
    traffic_factor: float = 1.0
    restructuring: float = 0.0
    transient: bool = False
    duration: int = 2


#: Default scripted timeline, loosely mirroring the density of events in
#: the paper's Fig. 11 table (weeks are indices into a ~100-week stream).
DEFAULT_EVENTS: Tuple[OrganizationalEvent, ...] = (
    OrganizationalEvent(20, "chief executive resigns", traffic_factor=1.6, restructuring=0.2),
    OrganizationalEvent(33, "energy plan legislation", traffic_factor=1.2, transient=True),
    OrganizationalEvent(45, "stock divestment by executives", traffic_factor=1.4, restructuring=0.3),
    OrganizationalEvent(58, "quarterly loss announced", traffic_factor=2.0, restructuring=0.4),
    OrganizationalEvent(63, "regulator opens inquiry", traffic_factor=1.8, restructuring=0.5),
    OrganizationalEvent(70, "merger deal collapses", traffic_factor=2.5, restructuring=0.6),
    OrganizationalEvent(74, "bankruptcy filing and layoffs", traffic_factor=0.5, restructuring=0.8),
    OrganizationalEvent(80, "criminal investigation opens", traffic_factor=1.5, restructuring=0.7),
    OrganizationalEvent(88, "chairman resigns from the board", traffic_factor=1.3, restructuring=0.5),
    OrganizationalEvent(95, "accounting reform legislation", traffic_factor=0.8, transient=True),
)


class EnronLikeStream:
    """Generator of weekly sender/recipient bipartite graphs with events.

    Parameters
    ----------
    n_weeks:
        Length of the stream (the paper's window is ~100 weeks).
    events:
        Scripted shocks; defaults to :data:`DEFAULT_EVENTS`.
    mean_senders, mean_recipients:
        Poisson means of the weekly numbers of active senders/recipients.
    base_rate:
        Baseline within-community communication rate.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_weeks: int = 100,
        *,
        events: Optional[Tuple[OrganizationalEvent, ...]] = None,
        mean_senders: float = 120.0,
        mean_recipients: float = 150.0,
        base_rate: float = 4.0,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        self.n_weeks = check_positive_int(n_weeks, "n_weeks")
        self.events = tuple(events) if events is not None else DEFAULT_EVENTS
        for event in self.events:
            if event.week < 0 or event.week >= self.n_weeks:
                raise ConfigurationError(
                    f"event week {event.week} outside the stream of {self.n_weeks} weeks"
                )
        self.mean_senders = float(mean_senders)
        self.mean_recipients = float(mean_recipients)
        self.base_rate = float(base_rate)
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Week-level parameters
    # ------------------------------------------------------------------ #
    def _parameters_for_week(self, week: int) -> Tuple[float, float]:
        """Cumulative ``(traffic multiplier, restructuring level)`` at ``week``."""
        traffic = 1.0
        restructuring = 0.0
        for event in self.events:
            if event.transient:
                if event.week <= week < event.week + event.duration:
                    traffic *= event.traffic_factor
                    restructuring = max(restructuring, event.restructuring)
            elif week >= event.week:
                traffic *= event.traffic_factor
                restructuring = max(restructuring, event.restructuring)
        return traffic, restructuring

    def _model_for_week(self, week: int) -> CommunityModel:
        traffic, restructuring = self._parameters_for_week(week)
        base = self.base_rate
        # Two sender clusters (e.g. executives vs staff) and two recipient
        # clusters; restructuring concentrates traffic into community (0, 0).
        rates = np.array(
            [
                [base * (1.0 + 4.0 * restructuring), base * 0.6],
                [base * 0.4, base * (1.0 - 0.5 * restructuring)],
            ]
        ) * traffic
        kappa = float(np.clip(0.3 + 0.3 * restructuring, 0.05, 0.95))
        delta = 0.5
        return CommunityModel(
            rate_matrix=rates,
            source_fractions=np.array([kappa, 1.0 - kappa]),
            destination_fractions=np.array([delta, 1.0 - delta]),
            mean_sources=self.mean_senders,
            mean_destinations=self.mean_recipients,
        )

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def generate(self) -> GraphDataset:
        """Generate the weekly graph stream.

        Returns
        -------
        GraphDataset
            ``change_points`` holds the event weeks (transient events
            contribute their onset week); ``metadata["events"]`` maps each
            week to its label.
        """
        graphs: List[BipartiteGraph] = []
        for week in range(self.n_weeks):
            model = self._model_for_week(week)
            graphs.append(sample_community_graph(model, rng=self._rng, index=week))
        event_weeks = sorted({event.week for event in self.events})
        return GraphDataset(
            graphs=graphs,
            change_points=event_weeks,
            name="enron_like_email_stream",
            metadata={
                "events": {event.week: event.label for event in self.events},
                "n_weeks": self.n_weeks,
            },
        )
