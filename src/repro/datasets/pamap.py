"""Simulator standing in for the PAMAP2 physical-activity dataset (§5.2).

The paper evaluates its detector on the PAMAP2 dataset: nine subjects wear
three inertial measurement units (IMUs) and a heart-rate monitor while
performing twelve scripted activities (paper Table 1); the sensor stream
is cut into 10-second bags and the detector is asked to flag the activity
transitions.

The real dataset cannot be downloaded in this offline environment, so this
module provides a *regime-switching sensor simulator* with the same
interface characteristics the method actually relies on:

* each activity is a distinct multivariate sensor regime — its own mean
  level, covariance scale and periodic (gait-like) component for the
  accelerometer channels, plus an activity-specific heart-rate level;
* the number of records per bag is irregular (sampling-frequency mismatch
  and random drop-outs, as in the real recordings);
* a subject performs the activities of Table 1 in a protocol order, with
  per-activity durations, so that the ground-truth change points are the
  activity transitions.

Because the detector only consumes bags of sensor vectors whose
distribution shifts at activity boundaries, the simulator exercises
exactly the same code path (signatures → EMD → score → confidence
interval) while preserving the evaluation logic of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ConfigurationError
from .base import BagDataset

#: Paper Table 1 — activities and their IDs.
ACTIVITIES: Dict[int, str] = {
    1: "lying",
    2: "sitting",
    3: "standing",
    4: "ironing",
    5: "vacuum cleaning",
    6: "ascending stairs",
    7: "descending stairs",
    8: "walking",
    9: "Nordic walking",
    10: "cycling",
    11: "running",
    12: "rope jumping",
}

#: Default protocol order for a subject, loosely following the paper's
#: Fig. 7 horizontal axes (activity 7 appears twice, as in the figure).
DEFAULT_PROTOCOL: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 7, 8, 9, 10, 11, 12)


@dataclass(frozen=True)
class ActivityProfile:
    """Sensor regime of one activity.

    Attributes
    ----------
    intensity:
        Overall movement intensity; sets the accelerometer variance and the
        amplitude of the periodic component.
    heart_rate:
        Mean heart rate (beats per minute) during the activity.
    cadence:
        Frequency (Hz) of the periodic gait component; 0 for static
        activities.
    posture:
        Baseline offsets of the accelerometer channels (orientation of the
        IMUs for that posture).
    """

    intensity: float
    heart_rate: float
    cadence: float
    posture: Tuple[float, float, float]


#: Hand-crafted, physiologically plausible regime per activity id.
ACTIVITY_PROFILES: Dict[int, ActivityProfile] = {
    1: ActivityProfile(0.05, 65.0, 0.0, (0.0, 0.0, 9.8)),
    2: ActivityProfile(0.08, 70.0, 0.0, (3.0, 0.0, 9.0)),
    3: ActivityProfile(0.10, 75.0, 0.0, (9.8, 0.0, 1.0)),
    4: ActivityProfile(0.35, 85.0, 0.5, (9.5, 1.0, 2.0)),
    5: ActivityProfile(0.55, 95.0, 0.8, (9.0, 2.0, 3.0)),
    6: ActivityProfile(0.90, 120.0, 1.6, (8.5, 3.0, 4.0)),
    7: ActivityProfile(0.85, 115.0, 1.7, (8.5, -3.0, 4.0)),
    8: ActivityProfile(0.70, 105.0, 1.8, (9.0, 0.5, 3.5)),
    9: ActivityProfile(0.80, 110.0, 1.9, (9.0, 1.5, 3.5)),
    10: ActivityProfile(0.60, 115.0, 1.4, (5.0, 5.0, 6.0)),
    11: ActivityProfile(1.30, 150.0, 2.8, (9.0, 0.0, 4.5)),
    12: ActivityProfile(1.60, 160.0, 2.2, (9.5, 0.0, 5.0)),
}

#: Number of simulated sensor channels: 3 IMUs × 3 accelerometer axes + heart rate.
N_CHANNELS = 10


class PamapSimulator:
    """Generator of PAMAP-like activity-monitoring bag streams.

    Parameters
    ----------
    sampling_rate:
        Nominal number of sensor records per second (the real IMUs record
        at ~100 Hz; the default keeps bags around the paper's ~950 records
        per 10-second bag).
    bag_seconds:
        Length of each bag in seconds (the paper uses 10).
    dropout:
        Fraction of records randomly lost per bag (hardware faults /
        connection loss in the real data).
    rate_jitter:
        Relative jitter of the per-second record count (sampling-frequency
        mismatch between the IMUs).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        *,
        sampling_rate: float = 100.0,
        bag_seconds: float = 10.0,
        dropout: float = 0.05,
        rate_jitter: float = 0.1,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        if sampling_rate <= 0 or bag_seconds <= 0:
            raise ConfigurationError("sampling_rate and bag_seconds must be positive")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError("dropout must lie in [0, 1)")
        if rate_jitter < 0:
            raise ConfigurationError("rate_jitter must be non-negative")
        self.sampling_rate = float(sampling_rate)
        self.bag_seconds = float(bag_seconds)
        self.dropout = float(dropout)
        self.rate_jitter = float(rate_jitter)
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Low-level sampling
    # ------------------------------------------------------------------ #
    def _bag_size(self) -> int:
        nominal = self.sampling_rate * self.bag_seconds
        jittered = nominal * (1.0 + self._rng.normal(0.0, self.rate_jitter))
        kept = jittered * (1.0 - self._rng.uniform(0.0, self.dropout))
        return max(int(round(kept)), 10)

    def sample_bag(self, activity_id: int, *, phase: float = 0.0) -> np.ndarray:
        """One 10-second bag of sensor records for ``activity_id``.

        Each record has ``N_CHANNELS`` values: nine accelerometer channels
        (three per simulated IMU) plus heart rate.
        """
        if activity_id not in ACTIVITY_PROFILES:
            raise ConfigurationError(
                f"unknown activity id {activity_id}; expected one of {sorted(ACTIVITIES)}"
            )
        profile = ACTIVITY_PROFILES[activity_id]
        n = self._bag_size()
        t = np.linspace(0.0, self.bag_seconds, n) + phase

        records = np.zeros((n, N_CHANNELS))
        for imu in range(3):
            base = np.array(profile.posture) * (1.0 + 0.1 * imu)
            periodic = profile.intensity * 3.0 * np.sin(
                2.0 * np.pi * profile.cadence * t[:, None] + imu * np.pi / 3.0 + self._rng.uniform(0, 2 * np.pi)
            )
            noise = self._rng.normal(0.0, 0.5 + profile.intensity, size=(n, 3))
            records[:, imu * 3 : (imu + 1) * 3] = base[None, :] + periodic + noise
        heart = profile.heart_rate + self._rng.normal(0.0, 3.0, size=n)
        # Slow within-bag drift of heart rate toward the activity level.
        heart += np.linspace(-1.0, 1.0, n) * profile.intensity * 2.0
        records[:, 9] = heart
        return records

    # ------------------------------------------------------------------ #
    # Subject-level stream
    # ------------------------------------------------------------------ #
    def simulate_subject(
        self,
        protocol: Sequence[int] = DEFAULT_PROTOCOL,
        *,
        bags_per_activity: Union[int, Sequence[int]] = 18,
        bags_per_activity_jitter: int = 4,
    ) -> BagDataset:
        """Simulate one subject performing ``protocol`` in order.

        Parameters
        ----------
        protocol:
            Activity ids in the order performed (paper Table 1 / Fig. 7).
        bags_per_activity:
            Mean number of 10-second bags spent in each activity (a scalar)
            or an explicit per-activity list.  The default yields ~230 bags
            per subject, close to the paper's average of 251.8.
        bags_per_activity_jitter:
            Uniform jitter applied when ``bags_per_activity`` is a scalar.

        Returns
        -------
        BagDataset
            ``change_points`` are the indices of the first bag of every new
            activity; ``metadata["activity_per_bag"]`` records the activity
            id of every bag.
        """
        protocol = list(protocol)
        if not protocol:
            raise ConfigurationError("protocol must contain at least one activity")
        if isinstance(bags_per_activity, (int, np.integer)):
            check_positive_int(int(bags_per_activity), "bags_per_activity")
            durations = [
                max(
                    2,
                    int(bags_per_activity)
                    + int(self._rng.integers(-bags_per_activity_jitter, bags_per_activity_jitter + 1)),
                )
                for _ in protocol
            ]
        else:
            durations = [check_positive_int(int(d), "bags_per_activity entry") for d in bags_per_activity]
            if len(durations) != len(protocol):
                raise ConfigurationError("bags_per_activity list must match the protocol length")

        bags: List[np.ndarray] = []
        activity_per_bag: List[int] = []
        change_points: List[int] = []
        for position, (activity_id, duration) in enumerate(zip(protocol, durations)):
            if position > 0:
                change_points.append(len(bags))
            for k in range(duration):
                bags.append(self.sample_bag(activity_id, phase=k * self.bag_seconds))
                activity_per_bag.append(activity_id)

        return BagDataset(
            bags=bags,
            change_points=change_points,
            name="pamap_like_subject",
            metadata={
                "protocol": protocol,
                "durations": durations,
                "activity_per_bag": activity_per_bag,
                "activities": ACTIVITIES,
            },
        )

    def simulate_subjects(
        self,
        n_subjects: int = 3,
        protocol: Sequence[int] = DEFAULT_PROTOCOL,
        **kwargs,
    ) -> List[BagDataset]:
        """Simulate several subjects (the paper reports three of its nine)."""
        n_subjects = check_positive_int(n_subjects, "n_subjects")
        return [self.simulate_subject(protocol, **kwargs) for _ in range(n_subjects)]
