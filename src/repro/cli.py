"""Command-line interface: run the detector on bag data stored in files.

Usage
-----
``repro-detect`` (or ``python -m repro``) accepts either

* an ``.npz`` file where each array is one bag (arrays are processed in
  the lexicographic order of their names), or
* a CSV file in long format with a ``time`` column and one column per
  feature dimension: rows sharing a ``time`` value form one bag.

The detected scores, confidence bounds and alerts are printed as CSV on
standard output (or written to ``--output``).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from .core import BagChangePointDetector, BagSequence, DetectorConfig
from .emd import EMD_SOLVERS
from .exceptions import ValidationError


def _load_npz(path: Path) -> List[np.ndarray]:
    archive = np.load(path)
    names = sorted(archive.files)
    if not names:
        raise ValidationError(f"{path} contains no arrays")
    return [np.asarray(archive[name], dtype=float) for name in names]


def _load_csv(path: Path, time_column: str) -> List[np.ndarray]:
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or time_column not in reader.fieldnames:
            raise ValidationError(f"{path} has no '{time_column}' column")
        value_columns = [c for c in reader.fieldnames if c != time_column]
        if not value_columns:
            raise ValidationError(f"{path} has no value columns besides '{time_column}'")
        times: List[float] = []
        values: List[List[float]] = []
        for row in reader:
            times.append(float(row[time_column]))
            values.append([float(row[c]) for c in value_columns])
    sequence = BagSequence.from_long_format(np.array(times), np.array(values))
    return sequence.arrays()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Bag-of-data change-point detection (Koshijima, Hino & Murata).",
    )
    parser.add_argument("input", type=Path, help="input .npz (one array per bag) or long-format .csv")
    parser.add_argument("--time-column", default="time", help="time column name for CSV input")
    parser.add_argument("--tau", type=int, default=5, help="reference window length")
    parser.add_argument("--tau-test", type=int, default=5, help="test window length")
    parser.add_argument("--score", choices=("kl", "lr"), default="kl", help="change-point score")
    parser.add_argument(
        "--signature",
        choices=("kmeans", "kmedoids", "histogram", "lvq", "exact"),
        default="kmeans",
        help="signature construction method",
    )
    parser.add_argument("--clusters", type=int, default=8, help="signature size K")
    parser.add_argument(
        "--emd-backend",
        choices=EMD_SOLVERS,
        default="auto",
        help="transportation solver: exact per-pair (auto/linprog/simplex), "
        "the block-diagonal batched exact LP (linprog_batch) or the "
        "tensor-batched entropic approximation (sinkhorn_batch)",
    )
    parser.add_argument(
        "--sinkhorn-epsilon", type=float, default=0.05,
        help="regularisation strength for --emd-backend sinkhorn_batch",
    )
    parser.add_argument(
        "--sinkhorn-max-iter", type=int, default=2000,
        help="iteration budget per batched Sinkhorn solve",
    )
    parser.add_argument(
        "--parallel",
        choices=("serial", "thread", "process"),
        default="serial",
        help="how the EMD engine computes distance batches",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --parallel thread/process (default: CPU count)",
    )
    parser.add_argument(
        "--lr-inspection-index", type=int, default=0,
        help="test-window position of the inspected bag for --score lr",
    )
    parser.add_argument("--bootstrap", type=int, default=200, help="Bayesian bootstrap replicates")
    parser.add_argument("--alpha", type=float, default=0.05, help="CI significance level")
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument("--output", type=Path, default=None, help="write CSV here instead of stdout")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-detect`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    path: Path = args.input
    if not path.exists():
        parser.error(f"input file {path} does not exist")
    if path.suffix.lower() == ".npz":
        bags = _load_npz(path)
    elif path.suffix.lower() == ".csv":
        bags = _load_csv(path, args.time_column)
    else:
        parser.error("input must be a .npz or .csv file")
        return 2  # pragma: no cover - parser.error raises

    config = DetectorConfig(
        tau=args.tau,
        tau_test=args.tau_test,
        score=args.score,
        signature_method=args.signature,
        n_clusters=args.clusters,
        emd_backend=args.emd_backend,
        sinkhorn_epsilon=args.sinkhorn_epsilon,
        sinkhorn_max_iter=args.sinkhorn_max_iter,
        parallel_backend=args.parallel,
        n_workers=args.workers,
        lr_inspection_index=args.lr_inspection_index,
        n_bootstrap=args.bootstrap,
        alpha=args.alpha,
        random_state=args.seed,
    )
    with BagChangePointDetector(config) as detector:
        result = detector.detect(bags)

    rows = result.to_dict()
    header = ["time", "score", "lower", "upper", "gamma", "alert"]
    lines = [",".join(header)]
    for i in range(len(result)):
        lines.append(
            ",".join(
                str(rows[column][i]) if rows[column][i] is not None else ""
                for column in header
            )
        )
    output_text = "\n".join(lines) + "\n"
    if args.output is not None:
        args.output.write_text(output_text)
    else:
        sys.stdout.write(output_text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
