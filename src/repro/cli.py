"""Command-line interface: run the detector on bag data stored in files.

Usage
-----
``repro-detect`` (or ``python -m repro``) accepts either

* an ``.npz`` file where each array is one bag (arrays are processed in
  the lexicographic order of their names), or
* a CSV file in long format with a ``time`` column and one column per
  feature dimension: rows sharing a ``time`` value form one bag.

The detected scores, confidence bounds and alerts are printed as CSV on
standard output (or written to ``--output``).

A second mode, ``repro-detect shard-build``, runs only the band-build
stage through the fault-tolerant shard orchestrator
(:mod:`repro.emd.orchestrator`): it partitions the EMD band into
row-block shards, executes them on killable worker processes with
retry/backoff, timeouts, straggler re-dispatch and poison-pair
quarantine (resuming from validated per-shard checkpoints), and writes
the merged band as an ``.npz`` — the expensive half of a detection run,
made restartable and fault-tolerant.

A third mode, ``repro-detect serve-replay``, replays the recorded bags
through the crash-safe streaming service
(:class:`repro.service.StreamSupervisor`): the bags are dealt
round-robin across ``--streams`` named online detector streams running
behind bounded ingest queues, with snapshot/restore (``--snapshot-dir``
/ ``--snapshot-every``), a per-stream fault-isolation policy
(``--on-stream-error``) and a backpressure policy (``--backpressure``).
``--batch-drain`` stacks every stream's pending solves into one
cross-stream batched solve per drain round.  Scores are printed as CSV
with a leading ``stream`` column; the supervisor's robustness metrics go
to standard error.

A fourth mode, ``repro-detect zoo``, crosses the detector registry with
the dataset registry (:mod:`repro.api` × :mod:`repro.datasets.registry`):
every selected detector runs on every selected dataset through the
shared estimator facade, alarms are matched against the ground-truth
change points, and one comparison table (precision, recall, F1, mean
delay, runtime) is emitted.  See ``docs/api.md``.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from .core import BagChangePointDetector, BagSequence, DetectorConfig
from .core.config import SCORES, SIGNATURE_METHODS, WEIGHTINGS
from .emd import EMD_SOLVERS
from .emd.ground_distance import GROUND_DISTANCES
from .emd.orchestrator import RetryPolicy, ShardOrchestrator
from .emd.registry import PARALLEL_BACKENDS, POISON_POLICIES, SHARD_MODES
from .emd.sharding import EngineSettings, ShardPlan
from .exceptions import ValidationError
from .service import (
    BACKPRESSURE_POLICIES,
    STREAM_ERROR_POLICIES,
    StreamSupervisor,
    SupervisorPolicy,
)


def _load_npz(path: Path) -> List[np.ndarray]:
    archive = np.load(path)
    names = sorted(archive.files)
    if not names:
        raise ValidationError(f"{path} contains no arrays")
    return [np.asarray(archive[name], dtype=float) for name in names]


def _load_csv(path: Path, time_column: str) -> List[np.ndarray]:
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or time_column not in reader.fieldnames:
            raise ValidationError(f"{path} has no '{time_column}' column")
        value_columns = [c for c in reader.fieldnames if c != time_column]
        if not value_columns:
            raise ValidationError(f"{path} has no value columns besides '{time_column}'")
        times: List[float] = []
        values: List[List[float]] = []
        for row in reader:
            times.append(float(row[time_column]))
            values.append([float(row[c]) for c in value_columns])
    sequence = BagSequence.from_long_format(np.array(times), np.array(values))
    return sequence.arrays()


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the detect run and ``shard-build``.

    Everything here shapes the signatures or the solver, so both modes
    must agree on names, choices and defaults — the shard-build band is
    only reusable by a detect run computed under the same settings.
    """
    parser.add_argument("input", type=Path, help="input .npz (one array per bag) or long-format .csv")
    parser.add_argument("--time-column", default="time", help="time column name for CSV input")
    parser.add_argument("--tau", type=int, default=5, help="reference window length")
    parser.add_argument("--tau-test", type=int, default=5, help="test window length")
    parser.add_argument(
        "--signature",
        choices=SIGNATURE_METHODS,
        default="kmeans",
        help="signature construction method",
    )
    parser.add_argument("--clusters", type=int, default=8, help="signature size K")
    parser.add_argument(
        "--bins", type=int, default=10,
        help="bins per dimension for --signature histogram",
    )
    parser.add_argument(
        "--ground-distance",
        choices=GROUND_DISTANCES,
        default="euclidean",
        help="ground distance of the EMD between signature representatives",
    )
    parser.add_argument(
        "--emd-backend",
        choices=EMD_SOLVERS,
        default="auto",
        help="transportation solver: exact per-pair (auto/linprog/simplex), "
        "the block-diagonal batched exact LP (linprog_batch) or the "
        "tensor-batched entropic approximation (sinkhorn_batch)",
    )
    parser.add_argument(
        "--sinkhorn-epsilon", type=float, default=0.05,
        help="regularisation strength for --emd-backend sinkhorn_batch",
    )
    parser.add_argument(
        "--sinkhorn-max-iter", type=int, default=2000,
        help="iteration budget per batched Sinkhorn solve",
    )
    parser.add_argument(
        "--sinkhorn-tol", type=float, default=1e-9,
        help="marginal tolerance of the batched Sinkhorn solver "
        "(raise for faster, scoring-grade band builds)",
    )
    parser.add_argument(
        "--sinkhorn-anneal", type=float, nargs="+", default=None, metavar="EPS",
        help="decreasing epsilon-annealing stages run before "
        "--sinkhorn-epsilon (warm-started duals), e.g. 1.0 0.3 0.1",
    )
    parser.add_argument("--seed", type=int, default=None, help="random seed")


def _add_orchestration_args(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance knobs of the orchestrated band build.

    Shared by the detect run (which orchestrates when sharding is on)
    and ``shard-build``, so both modes expose identical recovery
    behaviour.
    """
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per shard: crashed, timed-out or transiently "
        "failing shards are re-enqueued with exponential backoff up to "
        "this many times before the build aborts",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None,
        help="kill and retry any shard attempt running longer than this "
        "many seconds (default: no timeout)",
    )
    parser.add_argument(
        "--on-poison-pair", choices=POISON_POLICIES, default="strict",
        help="what to do with pairs that keep failing the solver after "
        "bisection and exact-LP rescue: refuse the band (strict) or "
        "return it with those entries masked as NaN (degraded)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Bag-of-data change-point detection (Koshijima, Hino & Murata).",
    )
    _add_common_args(parser)
    parser.add_argument("--score", choices=SCORES, default="kl", help="change-point score")
    parser.add_argument(
        "--weighting",
        choices=WEIGHTINGS,
        default="uniform",
        help="window weighting: the paper's uniform weights or Eq. 15 discounting",
    )
    parser.add_argument(
        "--parallel",
        choices=PARALLEL_BACKENDS,
        default="serial",
        help="how the EMD engine computes distance batches",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --parallel thread/process (default: CPU count)",
    )
    parser.add_argument(
        "--n-shards", type=int, default=None,
        help="build the EMD band in this many row-block shards "
        "(process-parallel with --parallel process; see shard-build)",
    )
    parser.add_argument(
        "--shard-checkpoint-dir", type=Path, default=None,
        help="directory for per-shard checkpoints; a killed run resumes "
        "its band build from the last finished shard",
    )
    _add_orchestration_args(parser)
    parser.add_argument(
        "--lr-inspection-index", type=int, default=0,
        help="test-window position of the inspected bag for --score lr",
    )
    parser.add_argument("--bootstrap", type=int, default=200, help="Bayesian bootstrap replicates")
    parser.add_argument("--alpha", type=float, default=0.05, help="CI significance level")
    parser.add_argument(
        "--history-limit", type=int, default=None,
        help="retain only this many most recent score points in the online "
        "detector (default: unbounded)",
    )
    parser.add_argument("--output", type=Path, default=None, help="write CSV here instead of stdout")
    return parser


def build_shard_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``shard-build`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect shard-build",
        description="Sharded, checkpointable build of the banded pairwise-EMD "
        "matrix (the expensive stage of a detection run).",
    )
    _add_common_args(parser)
    parser.add_argument(
        "--n-shards", type=int, default=4,
        help="number of contiguous row-block shards",
    )
    parser.add_argument(
        "--mode", choices=SHARD_MODES, default="process",
        help="execute pending shards on a process pool (signatures in "
        "shared memory) or sequentially in-process",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="write per-shard checkpoints here and resume from any that "
        "match the current plan and solver configuration",
    )
    _add_orchestration_args(parser)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the merged band here as .npz (band, n, bandwidth, "
        "plan_hash, fingerprint); default: report only",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``serve-replay`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect serve-replay",
        description="Replay recorded bags through the crash-safe streaming "
        "service: bags are dealt round-robin across named online detector "
        "streams with snapshot/restore, per-stream fault isolation and "
        "bounded ingest queues.",
    )
    _add_common_args(parser)
    parser.add_argument("--score", choices=SCORES, default="kl", help="change-point score")
    parser.add_argument(
        "--weighting",
        choices=WEIGHTINGS,
        default="uniform",
        help="window weighting: the paper's uniform weights or Eq. 15 discounting",
    )
    parser.add_argument(
        "--lr-inspection-index", type=int, default=0,
        help="test-window position of the inspected bag for --score lr",
    )
    parser.add_argument("--bootstrap", type=int, default=200, help="Bayesian bootstrap replicates")
    parser.add_argument("--alpha", type=float, default=0.05, help="CI significance level")
    parser.add_argument(
        "--streams", type=int, default=2,
        help="number of streams the recorded bags are dealt across",
    )
    parser.add_argument(
        "--snapshot-dir", type=Path, default=None,
        help="directory for stream snapshots and the quarantine manifest; "
        "a restarted replay restores every stream from it",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None,
        help="snapshot each stream after this many pushes (requires "
        "--snapshot-dir); streams are always snapshotted at shutdown",
    )
    parser.add_argument(
        "--on-stream-error", choices=STREAM_ERROR_POLICIES, default="strict",
        help="what a solver failure during one stream's push does to that "
        "stream: propagate with the bag requeued (strict), consume the bag "
        "masked with NaN scores (degraded), or park the stream on its last "
        "snapshot (quarantine)",
    )
    parser.add_argument(
        "--backpressure", choices=BACKPRESSURE_POLICIES, default="block",
        help="full-queue policy: drain inline (block), drop the bag (shed) "
        "or raise (error)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="bound of each stream's ingest queue",
    )
    parser.add_argument(
        "--batch-drain", action="store_true",
        help="drain all streams through one cross-stream stacked solve per "
        "round instead of one solve per stream (bit-identical scores on "
        "the exact backends; pairs with --emd-backend linprog_batch or "
        "sinkhorn_batch)",
    )
    parser.add_argument(
        "--history-limit", type=int, default=None,
        help="retained score points per stream (default: the service's "
        "bounded default)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the per-stream score CSV here instead of stdout",
    )
    return parser


def serve_replay_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-detect serve-replay``."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.streams < 1:
        parser.error("--streams must be a positive integer")
    bags = _load_bags(parser, args.input, args.time_column)

    policy = SupervisorPolicy(
        on_stream_error=args.on_stream_error,
        backpressure=args.backpressure,
        queue_capacity=args.queue_capacity,
        snapshot_every=args.snapshot_every,
        batch_drain=args.batch_drain,
    )

    def stream_config(index: int) -> DetectorConfig:
        # Each stream draws from its own seeded generator so replays are
        # reproducible per stream, not just per run.
        return DetectorConfig(
            tau=args.tau,
            tau_test=args.tau_test,
            score=args.score,
            signature_method=args.signature,
            n_clusters=args.clusters,
            bins=args.bins,
            ground_distance=args.ground_distance,
            emd_backend=args.emd_backend,
            sinkhorn_epsilon=args.sinkhorn_epsilon,
            sinkhorn_max_iter=args.sinkhorn_max_iter,
            sinkhorn_tol=args.sinkhorn_tol,
            sinkhorn_anneal=args.sinkhorn_anneal,
            history_limit=args.history_limit,
            lr_inspection_index=args.lr_inspection_index,
            weighting=args.weighting,
            n_bootstrap=args.bootstrap,
            alpha=args.alpha,
            random_state=None if args.seed is None else args.seed + index,
        )

    names = [f"stream-{index:02d}" for index in range(args.streams)]
    header = ["stream", "time", "score", "lower", "upper", "gamma", "alert"]
    lines = [",".join(header)]
    with StreamSupervisor(policy=policy, snapshot_dir=args.snapshot_dir) as supervisor:
        for index, name in enumerate(names):
            supervisor.add_stream(name, stream_config(index))
        for position, bag in enumerate(bags):
            supervisor.submit(names[position % args.streams], bag)
        for name, point in supervisor.drain():
            lines.append(
                ",".join(
                    (
                        name,
                        str(point.time),
                        str(point.score),
                        str(point.interval.lower),
                        str(point.interval.upper),
                        str(point.gamma),
                        str(point.alert),
                    )
                )
            )
        metrics = supervisor.metrics
    print(
        "serve-replay: "
        f"streams={metrics['n_streams']} shed={metrics['n_shed']} "
        f"(backpressure={metrics['n_shed_backpressure']} "
        f"quarantined={metrics['n_shed_quarantined']} "
        f"on_close={metrics['n_discarded_on_close']}) "
        f"quarantined={metrics['n_quarantined']} "
        f"restored={metrics['n_restored']} "
        f"degraded_points={metrics['n_degraded_points']} "
        f"snapshots={metrics['n_snapshots_written']}",
        file=sys.stderr,
    )
    output_text = "\n".join(lines) + "\n"
    if args.output is not None:
        args.output.write_text(output_text)
    else:
        sys.stdout.write(output_text)
    return 0


def _load_bags(
    parser: argparse.ArgumentParser, path: Path, time_column: str
) -> Optional[List[np.ndarray]]:
    if not path.exists():
        parser.error(f"input file {path} does not exist")
    if path.suffix.lower() == ".npz":
        return _load_npz(path)
    if path.suffix.lower() == ".csv":
        return _load_csv(path, time_column)
    parser.error("input must be a .npz or .csv file")
    return None  # pragma: no cover - parser.error raises


def shard_build_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-detect shard-build``."""
    parser = build_shard_parser()
    args = parser.parse_args(argv)
    bags = _load_bags(parser, args.input, args.time_column)

    config = DetectorConfig(
        tau=args.tau,
        tau_test=args.tau_test,
        signature_method=args.signature,
        n_clusters=args.clusters,
        bins=args.bins,
        ground_distance=args.ground_distance,
        emd_backend=args.emd_backend,
        sinkhorn_epsilon=args.sinkhorn_epsilon,
        sinkhorn_max_iter=args.sinkhorn_max_iter,
        sinkhorn_tol=args.sinkhorn_tol,
        sinkhorn_anneal=args.sinkhorn_anneal,
        shard_retries=args.retries,
        shard_timeout=args.shard_timeout,
        on_poison_pair=args.on_poison_pair,
        random_state=args.seed,
    )
    signatures = BagChangePointDetector(config).build_signatures(bags)
    plan = ShardPlan.build(len(signatures), config.window_span, args.n_shards)
    orchestrator = ShardOrchestrator(
        plan,
        EngineSettings.from_config(config),
        policy=RetryPolicy.from_config(config),
        mode=args.mode,
        n_workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
    )
    band = orchestrator.run(signatures)

    print(
        f"built band: n={band.n} bandwidth={band.bandwidth} "
        f"pairs={plan.n_pairs} shards={plan.n_shards} "
        f"(computed {orchestrator.n_shards_computed}, "
        f"resumed {orchestrator.n_shards_resumed})",
        file=sys.stderr,
    )
    if orchestrator.n_retries or orchestrator.n_timeouts or orchestrator.n_checkpoints_requeued:
        print(
            f"recovered faults: retries={orchestrator.n_retries} "
            f"timeouts={orchestrator.n_timeouts} "
            f"checkpoints_requeued={orchestrator.n_checkpoints_requeued} "
            f"stragglers_redispatched={orchestrator.n_stragglers_redispatched}",
            file=sys.stderr,
        )
    if orchestrator.quarantine is not None and len(orchestrator.quarantine):
        print(
            f"quarantined pairs: {sorted(orchestrator.quarantine.pair_set())}",
            file=sys.stderr,
        )
    if args.output is not None:
        np.savez(
            args.output,
            band=np.asarray(band.band),
            n=np.array(band.n),
            bandwidth=np.array(band.bandwidth),
            plan_hash=np.array(plan.plan_hash()),
            fingerprint=np.array(orchestrator.settings.fingerprint()),
        )
        print(f"band written to {args.output}", file=sys.stderr)
    return 0


def build_zoo_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``zoo`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect zoo",
        description="Run registered detectors on registered datasets through "
        "the estimator facade and emit a comparison table (precision, "
        "recall, F1, mean delay, runtime).",
    )
    parser.add_argument(
        "--detectors", default="all",
        help="comma-separated detector names, or 'all' (default); "
        "see --list for the registry",
    )
    parser.add_argument(
        "--datasets", default="mixture_small",
        help="comma-separated dataset names, or 'all' "
        "(default: mixture_small, the quick smoke stream)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    parser.add_argument(
        "--tolerance", type=int, default=5,
        help="a change at c counts as detected by an alarm in "
        "[c - allow_early, c + tolerance]",
    )
    parser.add_argument(
        "--allow-early", type=int, default=0,
        help="steps before the true change an alarm may fire and still match",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the registered detector and dataset names and exit",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the table here instead of stdout",
    )
    return parser


def _split_names(spec: str, known: List[str], kind: str,
                 parser: argparse.ArgumentParser) -> List[str]:
    """Expand a comma-separated name list, validating against the registry."""
    if spec == "all":
        return known
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        parser.error(f"no {kind} selected")
    for name in names:
        if name not in known:
            parser.error(
                f"unknown {kind} {name!r}; registered: {', '.join(known)}"
            )
    return names


def zoo_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-detect zoo``."""
    # Local imports: the zoo pulls in every adapter and generator, which
    # the plain detection run does not need.
    from .api import detector_names, get_detector
    from .datasets.registry import dataset_names, make_dataset
    from .evaluation import match_alarms

    parser = build_zoo_parser()
    args = parser.parse_args(argv)
    if args.list:
        print("detectors:", ", ".join(detector_names()))
        print("datasets:", ", ".join(dataset_names()))
        return 0
    detectors = _split_names(args.detectors, detector_names(), "detector", parser)
    datasets = _split_names(args.datasets, dataset_names(), "dataset", parser)

    header = (
        "dataset", "detector", "changes", "found",
        "precision", "recall", "f1", "delay", "seconds",
    )
    rows: List[tuple] = [header]
    for dataset_name in datasets:
        dataset = make_dataset(dataset_name, random_state=args.seed)
        for detector_name in detectors:
            detector = get_detector(detector_name).create_test_instance()
            started = time.perf_counter()
            try:
                changepoints = detector.fit_predict(dataset.bags)
            except ValidationError as error:
                print(
                    f"zoo: {detector_name} on {dataset_name} skipped: {error}",
                    file=sys.stderr,
                )
                continue
            elapsed = time.perf_counter() - started
            matching = match_alarms(
                changepoints.tolist(),
                dataset.change_points,
                tolerance=args.tolerance,
                allow_early=args.allow_early,
            )
            delay = (
                f"{sum(matching.delays) / len(matching.delays):.1f}"
                if matching.delays else "-"
            )
            rows.append(
                (
                    dataset_name, detector_name,
                    str(len(dataset.change_points)), str(len(changepoints)),
                    f"{matching.precision:.2f}", f"{matching.recall:.2f}",
                    f"{matching.f1:.2f}", delay, f"{elapsed:.2f}",
                )
            )

    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    output_text = "\n".join(lines) + "\n"
    if args.output is not None:
        args.output.write_text(output_text)
    else:
        sys.stdout.write(output_text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-detect`` console script.

    ``repro-detect shard-build …`` dispatches to the sharded band-build
    subcommand, ``repro-detect serve-replay …`` to the streaming-service
    replay, ``repro-detect zoo …`` to the detector-zoo comparison
    harness; anything else is the classic detection run.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "shard-build":
        return shard_build_main(argv[1:])
    if argv and argv[0] == "serve-replay":
        return serve_replay_main(argv[1:])
    if argv and argv[0] == "zoo":
        return zoo_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    bags = _load_bags(parser, args.input, args.time_column)

    config = DetectorConfig(
        tau=args.tau,
        tau_test=args.tau_test,
        score=args.score,
        signature_method=args.signature,
        n_clusters=args.clusters,
        bins=args.bins,
        ground_distance=args.ground_distance,
        emd_backend=args.emd_backend,
        sinkhorn_epsilon=args.sinkhorn_epsilon,
        sinkhorn_max_iter=args.sinkhorn_max_iter,
        sinkhorn_tol=args.sinkhorn_tol,
        sinkhorn_anneal=args.sinkhorn_anneal,
        parallel_backend=args.parallel,
        n_workers=args.workers,
        n_shards=args.n_shards,
        shard_checkpoint_dir=args.shard_checkpoint_dir,
        shard_retries=args.retries,
        shard_timeout=args.shard_timeout,
        on_poison_pair=args.on_poison_pair,
        history_limit=args.history_limit,
        lr_inspection_index=args.lr_inspection_index,
        weighting=args.weighting,
        n_bootstrap=args.bootstrap,
        alpha=args.alpha,
        random_state=args.seed,
    )
    with BagChangePointDetector(config) as detector:
        result = detector.detect(bags)

    rows = result.to_dict()
    header = ["time", "score", "lower", "upper", "gamma", "alert"]
    lines = [",".join(header)]
    for i in range(len(result)):
        lines.append(
            ",".join(
                str(rows[column][i]) if rows[column][i] is not None else ""
                for column in header
            )
        )
    output_text = "\n".join(lines) + "\n"
    if args.output is not None:
        args.output.write_text(output_text)
    else:
        sys.stdout.write(output_text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
