"""Relative density-ratio (RuLSIF-style) change-point baseline.

Reference [12] of the paper detects changes by directly estimating the
relative density ratio between the distributions of the reference and test
windows and using the estimated Pearson divergence as the score.  The
estimator follows the RuLSIF closed form: Gaussian basis functions centred
on the test points, a ridge-regularised least-squares fit of the ratio,
and the plug-in divergence estimate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError
from .one_class_svm import median_heuristic_gamma, rbf_kernel


def relative_pearson_divergence(
    reference: np.ndarray,
    test: np.ndarray,
    *,
    alpha: float = 0.1,
    n_basis: int = 50,
    regularization: float = 0.1,
    gamma: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Estimate the α-relative Pearson divergence ``PE_α(P_test || P_ref)``.

    Parameters
    ----------
    reference, test:
        Samples from the two distributions, shape ``(n, d)`` each.
    alpha:
        Relative parameter in ``[0, 1)``; 0 recovers the plain density
        ratio, larger values bound the ratio and stabilise the estimate.
    n_basis:
        Number of Gaussian basis functions (centred on a random subset of
        the test points).
    regularization:
        Ridge penalty λ.
    gamma:
        Gaussian bandwidth; median heuristic on the pooled sample if None.
    rng:
        Random generator for the basis-centre subsample.
    """
    reference = check_matrix(reference, "reference")
    test = check_matrix(test, "test")
    if not 0.0 <= alpha < 1.0:
        raise ValidationError("alpha must lie in [0, 1)")
    n_basis = check_positive_int(n_basis, "n_basis")
    if regularization <= 0:
        raise ValidationError("regularization must be positive")
    generator = rng if rng is not None else np.random.default_rng(0)

    pooled = np.vstack([reference, test])
    bandwidth = gamma if gamma is not None else median_heuristic_gamma(pooled)

    n_test = test.shape[0]
    n_centers = min(n_basis, n_test)
    center_idx = generator.choice(n_test, size=n_centers, replace=False)
    centers = test[center_idx]

    phi_test = rbf_kernel(test, centers, bandwidth)          # (n_test, b)
    phi_ref = rbf_kernel(reference, centers, bandwidth)      # (n_ref, b)

    h_hat = phi_test.mean(axis=0)
    big_h = (
        alpha * (phi_test.T @ phi_test) / n_test
        + (1.0 - alpha) * (phi_ref.T @ phi_ref) / reference.shape[0]
    )
    theta = np.linalg.solve(big_h + regularization * np.eye(n_centers), h_hat)

    ratio_test = phi_test @ theta
    ratio_ref = phi_ref @ theta
    divergence = (
        -alpha * np.mean(ratio_test**2) / 2.0
        - (1.0 - alpha) * np.mean(ratio_ref**2) / 2.0
        + np.mean(ratio_test)
        - 0.5
    )
    return float(max(divergence, 0.0))


class RelativeDensityRatioDetector:
    """Sliding-window change-point scoring via relative density-ratio estimation.

    Parameters
    ----------
    window:
        Number of points in each of the two windows.
    alpha:
        Relative parameter of the divergence.
    n_basis, regularization, gamma:
        Forwarded to :func:`relative_pearson_divergence`.
    symmetric:
        When ``True`` the score is the sum of the divergences in both
        directions (the form used by reference [12]).
    """

    def __init__(
        self,
        window: int = 20,
        *,
        alpha: float = 0.1,
        n_basis: int = 50,
        regularization: float = 0.1,
        gamma: Optional[float] = None,
        symmetric: bool = True,
        random_state: Optional[int] = 0,
    ):
        self.window = check_positive_int(window, "window", minimum=2)
        self.alpha = float(alpha)
        self.n_basis = n_basis
        self.regularization = regularization
        self.gamma = gamma
        self.symmetric = bool(symmetric)
        self.random_state = random_state

    def score(self, series: np.ndarray) -> np.ndarray:
        """Change-point score at every index (0 where windows do not fit)."""
        series = check_matrix(series, "series")
        n = series.shape[0]
        scores = np.zeros(n, dtype=float)
        w = self.window
        rng = np.random.default_rng(self.random_state)
        for t in range(w, n - w + 1):
            reference = series[t - w : t]
            test = series[t : t + w]
            forward = relative_pearson_divergence(
                reference,
                test,
                alpha=self.alpha,
                n_basis=self.n_basis,
                regularization=self.regularization,
                gamma=self.gamma,
                rng=rng,
            )
            if self.symmetric:
                backward = relative_pearson_divergence(
                    test,
                    reference,
                    alpha=self.alpha,
                    n_basis=self.n_basis,
                    regularization=self.regularization,
                    gamma=self.gamma,
                    rng=rng,
                )
                scores[t] = forward + backward
            else:
                scores[t] = forward
        return scores
