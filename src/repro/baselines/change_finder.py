"""ChangeFinder: two-stage SDAR change-point scoring (Takeuchi & Yamanishi).

This is the paper's reference [8] and one of the two existing methods shown
failing on the sample-mean sequence of the motivating example (Fig. 1(c),
the "SDAR" curve).  The algorithm:

1. fit an SDAR model to the series and record the per-step logarithmic
   loss (outlier score);
2. smooth the outlier scores with a moving average of width ``T1``;
3. fit a second SDAR model to the smoothed scores and record its log loss;
4. smooth again with width ``T2`` — the result is the change-point score.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError
from .sdar import SDAR


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average with a warm-up (shorter prefix windows)."""
    values = np.asarray(values, dtype=float).ravel()
    window = check_positive_int(window, "window")
    if window == 1:
        return values.copy()
    cumulative = np.concatenate([[0.0], np.cumsum(values)])
    out = np.empty_like(values)
    for i in range(values.shape[0]):
        start = max(0, i - window + 1)
        out[i] = (cumulative[i + 1] - cumulative[start]) / (i + 1 - start)
    return out


class ChangeFinder:
    """Two-stage SDAR change-point detector for vector time series.

    Parameters
    ----------
    order:
        AR order of both SDAR stages.
    discount:
        Discounting coefficient of both SDAR stages.
    smoothing_first, smoothing_second:
        Moving-average widths ``T1`` and ``T2``.
    dim:
        Dimensionality of the input series.
    """

    def __init__(
        self,
        *,
        order: int = 2,
        discount: float = 0.05,
        smoothing_first: int = 5,
        smoothing_second: int = 5,
        dim: int = 1,
    ):
        self.order = check_positive_int(order, "order")
        self.discount = float(discount)
        self.smoothing_first = check_positive_int(smoothing_first, "smoothing_first")
        self.smoothing_second = check_positive_int(smoothing_second, "smoothing_second")
        self.dim = check_positive_int(dim, "dim")

    def score(self, series: np.ndarray) -> np.ndarray:
        """Change-point score for every time step of ``series`` (shape ``(T, d)``)."""
        series = check_matrix(series, "series")
        if series.shape[1] != self.dim:
            raise ValidationError(
                f"series dimension {series.shape[1]} does not match dim={self.dim}"
            )
        first_stage = SDAR(order=self.order, discount=self.discount, dim=self.dim)
        outlier_scores = first_stage.score_sequence(series)
        smoothed = moving_average(outlier_scores, self.smoothing_first)

        second_stage = SDAR(order=self.order, discount=self.discount, dim=1)
        second_scores = second_stage.score_sequence(smoothed.reshape(-1, 1))
        return moving_average(second_scores, self.smoothing_second)

    def detect(self, series: np.ndarray, threshold: Optional[float] = None) -> np.ndarray:
        """Indices whose score exceeds ``threshold``.

        When ``threshold`` is ``None`` the conventional
        ``mean + 2 · standard deviation`` rule is applied to the scores.
        Alarms during the warm-up period (twice the combined AR order and
        smoothing widths) are suppressed, since both SDAR stages are still
        adapting to the data scale there.
        """
        scores = self.score(series)
        warmup = min(
            2 * (self.order + self.smoothing_first + self.smoothing_second),
            scores.shape[0],
        )
        stable = scores[warmup:]
        if threshold is None:
            threshold = float(stable.mean() + 2.0 * stable.std())
        flags = scores > threshold
        flags[:warmup] = False
        return np.where(flags)[0]
