"""From-scratch one-class support vector machine (ν-OCSVM, dual form).

The kernel change detection baseline of Desobry et al. (paper reference
[9]) trains two one-class SVMs — one on the reference window and one on
the test window — and compares the resulting descriptions in feature
space.  This module provides the OCSVM itself; the change-detection logic
lives in :mod:`repro.baselines.kcd`.

The dual problem

    min_α  ½ αᵀ K α    s.t.  0 ≤ α_i ≤ 1/(ν n),  Σ_i α_i = 1

is solved by projected gradient descent; the projection onto the
box-constrained simplex is computed exactly by bisection on the
Lagrange-multiplier shift.  Window sizes in the change-detection setting
are tens of points, for which this simple solver converges quickly and
reliably.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_matrix
from ..exceptions import NotFittedError, ValidationError


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian radial-basis-function kernel matrix ``exp(−γ ||x − y||²)``."""
    sq = (
        np.sum(a**2, axis=1)[:, None]
        - 2.0 * a @ b.T
        + np.sum(b**2, axis=1)[None, :]
    )
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq)


def median_heuristic_gamma(data: np.ndarray) -> float:
    """Bandwidth ``γ = 1 / (2 · median²)`` of pairwise distances (median heuristic)."""
    data = check_matrix(data, "data")
    n = data.shape[0]
    if n < 2:
        return 1.0
    sq = (
        np.sum(data**2, axis=1)[:, None]
        - 2.0 * data @ data.T
        + np.sum(data**2, axis=1)[None, :]
    )
    np.maximum(sq, 0.0, out=sq)
    distances = np.sqrt(sq[np.triu_indices(n, k=1)])
    median = float(np.median(distances))
    if median <= 0:
        return 1.0
    return 1.0 / (2.0 * median**2)


def project_to_capped_simplex(values: np.ndarray, cap: float) -> np.ndarray:
    """Euclidean projection onto ``{α : 0 ≤ α_i ≤ cap, Σ α_i = 1}``.

    Found by bisection on the shift μ in ``α_i = clip(values_i − μ, 0, cap)``.
    """
    values = np.asarray(values, dtype=float).ravel()
    n = values.shape[0]
    if cap * n < 1.0 - 1e-12:
        raise ValidationError("cap * n must be at least 1 for the projection to exist")
    lo = values.min() - 1.0
    hi = values.max()
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        total = np.clip(values - mid, 0.0, cap).sum()
        if total > 1.0:
            lo = mid
        else:
            hi = mid
    return np.clip(values - 0.5 * (lo + hi), 0.0, cap)


class OneClassSVM:
    """ν-one-class SVM with an RBF kernel, trained in the dual.

    Parameters
    ----------
    nu:
        Upper bound on the fraction of outliers / lower bound on the
        fraction of support vectors, in ``(0, 1]``.
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic per fit.
    n_iter:
        Projected-gradient iterations.
    learning_rate:
        Step size of the projected gradient; scaled by the Lipschitz
        constant (largest kernel eigenvalue) internally.
    """

    def __init__(
        self,
        nu: float = 0.2,
        gamma: Optional[float] = None,
        *,
        n_iter: int = 300,
        learning_rate: float = 1.0,
    ):
        if not 0.0 < nu <= 1.0:
            raise ValidationError("nu must lie in (0, 1]")
        self.nu = float(nu)
        self.gamma = gamma
        self.n_iter = int(n_iter)
        self.learning_rate = float(learning_rate)
        self.alpha_: Optional[np.ndarray] = None
        self.support_: Optional[np.ndarray] = None
        self.rho_: Optional[float] = None
        self.gamma_: Optional[float] = None
        self._train_data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "OneClassSVM":
        """Fit the one-class description to ``data`` of shape ``(n, d)``."""
        data = check_matrix(data, "data")
        n = data.shape[0]
        gamma = self.gamma if self.gamma is not None else median_heuristic_gamma(data)
        kernel = rbf_kernel(data, data, gamma)
        cap = 1.0 / max(self.nu * n, 1.0)
        cap = max(cap, 1.0 / n)  # ensure feasibility of the simplex constraint

        alpha = np.full(n, 1.0 / n)
        # Lipschitz constant of the gradient is the largest eigenvalue of K.
        lipschitz = float(np.linalg.eigvalsh(kernel)[-1])
        step = self.learning_rate / max(lipschitz, 1e-12)
        for _ in range(self.n_iter):
            gradient = kernel @ alpha
            alpha_new = project_to_capped_simplex(alpha - step * gradient, cap)
            if np.max(np.abs(alpha_new - alpha)) < 1e-10:
                alpha = alpha_new
                break
            alpha = alpha_new

        self.alpha_ = alpha
        self.gamma_ = gamma
        self._train_data = data
        self.support_ = np.where(alpha > 1e-8)[0]
        # ρ is the decision value at the margin support vectors
        # (0 < α_i < cap); fall back to the mean over support vectors.
        decision = kernel @ alpha
        margin = np.where((alpha > 1e-8) & (alpha < cap - 1e-8))[0]
        reference = margin if margin.size > 0 else self.support_
        self.rho_ = float(decision[reference].mean())
        return self

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.alpha_ is None or self._train_data is None:
            raise NotFittedError("OneClassSVM must be fitted before use")

    def decision_function(self, data: np.ndarray) -> np.ndarray:
        """Signed score ``Σ α_i k(x_i, x) − ρ`` (positive inside the support)."""
        self._check_fitted()
        data = check_matrix(data, "data")
        kernel = rbf_kernel(data, self._train_data, self.gamma_)
        return kernel @ self.alpha_ - self.rho_

    def predict(self, data: np.ndarray) -> np.ndarray:
        """``+1`` for inliers, ``−1`` for outliers."""
        return np.where(self.decision_function(data) >= 0, 1, -1)

    @property
    def center_norm_squared(self) -> float:
        """``αᵀ K α`` — squared norm of the weighted centre in feature space."""
        self._check_fitted()
        kernel = rbf_kernel(self._train_data, self._train_data, self.gamma_)
        return float(self.alpha_ @ kernel @ self.alpha_)
