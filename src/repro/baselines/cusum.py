"""CUSUM mean-shift detector — a minimal classical reference baseline.

The cumulative-sum procedure monitors the standardised deviations of a
univariate series from a running mean and raises an alarm when either the
positive or the negative cumulative sum exceeds a threshold.  It is
included as the simplest possible point of comparison for the ablation
benchmarks (it only reacts to mean shifts, which is precisely the failure
mode the paper's Fig. 1 illustrates for descriptive-statistics summaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .._validation import check_vector
from ..exceptions import ValidationError


@dataclass(frozen=True)
class CusumState:
    """Running state of the CUSUM recursion (exposed for inspection/tests)."""

    positive: float
    negative: float
    mean: float
    std: float


class CusumDetector:
    """Two-sided CUSUM detector with a calibration prefix.

    Parameters
    ----------
    threshold:
        Decision threshold ``h`` in units of standard deviations.
    drift:
        Allowance ``k`` (also in standard deviations) subtracted from each
        deviation before accumulation.
    calibration:
        Number of initial points used to estimate the in-control mean and
        standard deviation.
    reset_on_alarm:
        Whether the cumulative sums are reset to zero after an alarm
        (enables detecting several change points).
    """

    def __init__(
        self,
        threshold: float = 5.0,
        drift: float = 0.5,
        calibration: int = 20,
        *,
        reset_on_alarm: bool = True,
    ):
        if threshold <= 0:
            raise ValidationError("threshold must be positive")
        if drift < 0:
            raise ValidationError("drift must be non-negative")
        if calibration < 2:
            raise ValidationError("calibration must be at least 2")
        self.threshold = float(threshold)
        self.drift = float(drift)
        self.calibration = int(calibration)
        self.reset_on_alarm = bool(reset_on_alarm)

    def detect(self, values: np.ndarray) -> np.ndarray:
        """Indices at which an alarm is raised."""
        scores, alarms = self.score(values)
        return alarms

    def score(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the per-step max(|S⁺|, |S⁻|) statistic and the alarm indices."""
        values = check_vector(values, "values")
        n = values.shape[0]
        if n <= self.calibration:
            raise ValidationError(
                f"need more than calibration={self.calibration} points, got {n}"
            )
        baseline = values[: self.calibration]
        mean = float(baseline.mean())
        std = float(baseline.std(ddof=1))
        if std <= 0:
            std = 1.0

        positive = negative = 0.0
        statistics = np.zeros(n, dtype=float)
        alarms: List[int] = []
        for t in range(self.calibration, n):
            z = (values[t] - mean) / std
            positive = max(0.0, positive + z - self.drift)
            negative = max(0.0, negative - z - self.drift)
            statistics[t] = max(positive, negative)
            if statistics[t] > self.threshold:
                alarms.append(t)
                if self.reset_on_alarm:
                    positive = negative = 0.0
        return statistics, np.array(alarms, dtype=int)
