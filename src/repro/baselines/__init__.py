"""Baseline change-point detectors the paper compares against.

All baselines operate on ordinary single-vector time series; the
:mod:`repro.baselines.on_means` adapter applies them to the per-bag
sample-mean sequence exactly as the paper does in its motivating example.
"""

from .change_finder import ChangeFinder, moving_average
from .cusum import CusumDetector, CusumState
from .density_ratio import RelativeDensityRatioDetector, relative_pearson_divergence
from .kcd import KernelChangeDetection
from .on_means import mean_sequence, score_on_means
from .one_class_svm import (
    OneClassSVM,
    median_heuristic_gamma,
    project_to_capped_simplex,
    rbf_kernel,
)
from .sdar import SDAR
from .sst import SingularSpectrumTransformation, hankel_matrix, subspace_dissimilarity

__all__ = [
    "SDAR",
    "ChangeFinder",
    "moving_average",
    "OneClassSVM",
    "rbf_kernel",
    "median_heuristic_gamma",
    "project_to_capped_simplex",
    "KernelChangeDetection",
    "SingularSpectrumTransformation",
    "hankel_matrix",
    "subspace_dissimilarity",
    "RelativeDensityRatioDetector",
    "relative_pearson_divergence",
    "CusumDetector",
    "CusumState",
    "mean_sequence",
    "score_on_means",
]
