"""Singular spectrum transformation (SST) change-point baseline.

References [10] and [11] of the paper detect changes by comparing the
dominant subspaces of two trajectory (Hankel) matrices built from the
points before and after the inspection point.  The change-point score is
``1 − σ_max``, where ``σ_max`` is the largest singular value of the
product of the two orthonormal subspace bases (the cosine of the smallest
principal angle).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_positive_int, check_vector
from ..exceptions import ValidationError


def hankel_matrix(values: np.ndarray, window: int, n_columns: int) -> np.ndarray:
    """Trajectory matrix whose columns are lagged windows of the series."""
    values = check_vector(values, "values")
    window = check_positive_int(window, "window")
    n_columns = check_positive_int(n_columns, "n_columns")
    needed = window + n_columns - 1
    if values.shape[0] < needed:
        raise ValidationError(
            f"need at least {needed} values for window={window}, n_columns={n_columns}"
        )
    return np.column_stack([values[i : i + window] for i in range(n_columns)])


def subspace_dissimilarity(matrix_a: np.ndarray, matrix_b: np.ndarray, rank: int) -> float:
    """``1 − cos(smallest principal angle)`` between the two column spaces."""
    u_a, _, _ = np.linalg.svd(matrix_a, full_matrices=False)
    u_b, _, _ = np.linalg.svd(matrix_b, full_matrices=False)
    rank_a = min(rank, u_a.shape[1])
    rank_b = min(rank, u_b.shape[1])
    overlap = u_a[:, :rank_a].T @ u_b[:, :rank_b]
    singular_values = np.linalg.svd(overlap, compute_uv=False)
    largest = float(singular_values[0]) if singular_values.size else 0.0
    return float(np.clip(1.0 - largest, 0.0, 1.0))


class SingularSpectrumTransformation:
    """Sliding-window SST change-point scoring of a univariate series.

    Parameters
    ----------
    window:
        Length of each lagged column of the trajectory matrices.
    n_columns:
        Number of columns of each trajectory matrix.
    rank:
        Number of leading left singular vectors kept from each matrix.
    """

    def __init__(self, window: int = 10, n_columns: int = 10, rank: int = 2) -> None:
        self.window = check_positive_int(window, "window", minimum=2)
        self.n_columns = check_positive_int(n_columns, "n_columns", minimum=2)
        self.rank = check_positive_int(rank, "rank")

    @property
    def span(self) -> int:
        """Number of points consumed on each side of the inspection point."""
        return self.window + self.n_columns - 1

    def score(self, values: np.ndarray) -> np.ndarray:
        """Change-point score at every index (0 where windows do not fit)."""
        values = check_vector(values, "values")
        n = values.shape[0]
        scores = np.zeros(n, dtype=float)
        span = self.span
        for t in range(span, n - span + 1):
            past = hankel_matrix(values[t - span : t], self.window, self.n_columns)
            future = hankel_matrix(values[t : t + span], self.window, self.n_columns)
            scores[t] = subspace_dissimilarity(past, future, self.rank)
        return scores

    def detect(self, values: np.ndarray, threshold: Optional[float] = None) -> np.ndarray:
        """Indices whose score exceeds ``threshold`` (default mean + 2·std)."""
        scores = self.score(values)
        active = scores[scores > 0]
        if active.size == 0:
            return np.array([], dtype=int)
        if threshold is None:
            threshold = float(active.mean() + 2.0 * active.std())
        return np.where(scores > threshold)[0]
