"""Run single-vector baselines on the sample-mean sequence of a bag stream.

The paper's motivating example (Fig. 1) applies the existing detectors to
the sequence of per-bag sample means, because those detectors require one
vector per time step.  This adapter packages that reduction so that any
baseline with a ``score(series)`` method can be compared with the
bag-of-data detector on the same stream.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Union

import numpy as np

from ..core.bag import BagSequence


class SeriesScorer(Protocol):
    """Anything with a ``score(series) -> np.ndarray`` method."""

    def score(self, series: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


def mean_sequence(bags: Union[BagSequence, Sequence[np.ndarray]]) -> np.ndarray:
    """Per-bag sample means as a ``(T, d)`` array (the paper's Fig. 1(b))."""
    if isinstance(bags, BagSequence):
        return bags.mean_sequence()
    return np.vstack([np.asarray(bag, dtype=float).reshape(len(bag), -1).mean(axis=0) for bag in bags])


def score_on_means(
    scorer: SeriesScorer, bags: Union[BagSequence, Sequence[np.ndarray]]
) -> np.ndarray:
    """Apply a single-vector baseline to the sample-mean reduction of a bag stream."""
    return scorer.score(mean_sequence(bags))
