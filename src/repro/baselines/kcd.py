"""Kernel change detection (KCD) with one-class SVMs (Desobry et al., 2005).

This is the paper's reference [9] — the second existing method shown on
Fig. 1(c) ("OC") — applied to single-vector time series: at every
inspection point two one-class SVMs are trained, one on the window of
points before ``t`` and one on the window after, and the dissimilarity of
the two descriptions in the RKHS is the change-point score.

The dissimilarity implemented here is the cosine-type index

    D(ref, test) = 1 − (α_rᵀ K_rt α_t) / sqrt((α_rᵀ K_rr α_r)(α_tᵀ K_tt α_t)),

i.e. one minus the cosine of the angle between the two weighted centres in
feature space; it is 0 when the two descriptions coincide and grows toward
1 as they become orthogonal, mirroring the arc-based index of the original
paper while remaining cheap and numerically robust.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError
from .one_class_svm import OneClassSVM, median_heuristic_gamma, rbf_kernel


class KernelChangeDetection:
    """Sliding-window kernel change detection on a vector time series.

    Parameters
    ----------
    window:
        Number of points in each of the two windows (reference and test).
    nu:
        ν parameter of the one-class SVMs.
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic from the
        concatenation of the two windows at every inspection point.
    """

    def __init__(self, window: int = 20, nu: float = 0.2, gamma: Optional[float] = None) -> None:
        self.window = check_positive_int(window, "window", minimum=2)
        if not 0.0 < nu <= 1.0:
            raise ValidationError("nu must lie in (0, 1]")
        self.nu = float(nu)
        self.gamma = gamma

    def dissimilarity(self, reference: np.ndarray, test: np.ndarray) -> float:
        """KCD dissimilarity between two windows of observations."""
        reference = check_matrix(reference, "reference")
        test = check_matrix(test, "test")
        gamma = (
            self.gamma
            if self.gamma is not None
            else median_heuristic_gamma(np.vstack([reference, test]))
        )
        svm_ref = OneClassSVM(nu=self.nu, gamma=gamma).fit(reference)
        svm_test = OneClassSVM(nu=self.nu, gamma=gamma).fit(test)

        cross = rbf_kernel(reference, test, gamma)
        numerator = float(svm_ref.alpha_ @ cross @ svm_test.alpha_)
        denominator = np.sqrt(svm_ref.center_norm_squared * svm_test.center_norm_squared)
        if denominator <= 0:
            return 0.0
        cosine = np.clip(numerator / denominator, -1.0, 1.0)
        return float(1.0 - cosine)

    def score(self, series: np.ndarray) -> np.ndarray:
        """Change-point score for every time step of ``series``.

        The score at index ``t`` compares ``series[t − w : t]`` with
        ``series[t : t + w]``; indices without a complete pair of windows
        receive a score of 0.
        """
        series = check_matrix(series, "series")
        n = series.shape[0]
        scores = np.zeros(n, dtype=float)
        w = self.window
        for t in range(w, n - w + 1):
            scores[t] = self.dissimilarity(series[t - w : t], series[t : t + w])
        return scores

    def detect(self, series: np.ndarray, threshold: Optional[float] = None) -> np.ndarray:
        """Indices whose score exceeds ``threshold`` (default: mean + 2·std of
        the non-zero scores)."""
        scores = self.score(series)
        active = scores[scores > 0]
        if active.size == 0:
            return np.array([], dtype=int)
        if threshold is None:
            threshold = float(active.mean() + 2.0 * active.std())
        return np.where(scores > threshold)[0]
