"""Sequentially discounting auto-regressive (SDAR) model estimation.

The SDAR model is the building block of ChangeFinder (Takeuchi &
Yamanishi, 2006 — reference [8] of the paper): an auto-regressive model of
the time series whose sufficient statistics are updated online with an
exponential discounting factor, so that the model tracks gradual drift
while large one-step prediction losses signal outliers/changes.

This implementation supports multivariate series of modest dimension and
arbitrary AR order; the Yule-Walker system is solved directly at each step
(the series the paper feeds to this baseline are 1- or 2-dimensional, so a
direct solve is perfectly adequate).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError


class SDAR:
    """Online estimator of a discounted Gaussian AR model.

    Parameters
    ----------
    order:
        AR order ``k``.
    discount:
        Discounting coefficient ``r`` in ``(0, 1)``; larger values adapt
        faster but are noisier.
    dim:
        Dimensionality of the observations.
    regularization:
        Ridge term added to the covariance/Yule-Walker solves for
        numerical stability.
    """

    def __init__(
        self,
        order: int = 2,
        discount: float = 0.05,
        dim: int = 1,
        *,
        regularization: float = 1e-6,
    ):
        self.order = check_positive_int(order, "order")
        if not 0.0 < discount < 1.0:
            raise ValidationError("discount must lie strictly between 0 and 1")
        self.discount = float(discount)
        self.dim = check_positive_int(dim, "dim")
        self.regularization = float(regularization)

        self._mu = np.zeros(dim)
        # Autocovariance blocks C_0 .. C_k.  C_0 starts at the identity (so
        # the first logarithmic losses stay moderate) while the lagged blocks
        # start at zero: starting them at the identity would fake perfect
        # autocorrelation and make the Yule-Walker system singular during the
        # warm-up, which destabilises the AR coefficients.
        self._cov_blocks = [np.eye(dim)] + [np.zeros((dim, dim)) for _ in range(self.order)]
        self._sigma = np.eye(dim)
        self._history: Deque[np.ndarray] = deque(maxlen=self.order)
        self._n_seen = 0

    # ------------------------------------------------------------------ #
    # Online update
    # ------------------------------------------------------------------ #
    def update(self, x: np.ndarray) -> float:
        """Consume one observation and return its logarithmic loss.

        The logarithmic loss is ``−log p(x_t | x_{t−1}, …)`` under the
        Gaussian predictive distribution of the current model; it is the
        outlier score used by the first stage of ChangeFinder.
        """
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise ValidationError(f"expected a vector of dimension {self.dim}, got {x.shape[0]}")
        r = self.discount

        if self._n_seen == 0:
            # Anchor the model at the first observation so that the warm-up
            # losses reflect the data scale rather than the arbitrary zero
            # initialisation of the mean.
            self._mu = x.copy()

        prediction, covariance = self._predict()
        loss = self._log_loss(x, prediction, covariance)

        # Update mean and autocovariance blocks with the new observation.
        self._mu = (1.0 - r) * self._mu + r * x
        centered_now = x - self._mu
        history = list(self._history)
        for lag in range(self.order + 1):
            if lag == 0:
                outer = np.outer(centered_now, centered_now)
            elif lag <= len(history):
                centered_lag = history[-lag] - self._mu
                outer = np.outer(centered_now, centered_lag)
            else:
                outer = None
            if outer is not None:
                self._cov_blocks[lag] = (1.0 - r) * self._cov_blocks[lag] + r * outer

        residual = x - prediction
        self._sigma = (1.0 - r) * self._sigma + r * np.outer(residual, residual)

        self._history.append(x.copy())
        self._n_seen += 1
        return loss

    # ------------------------------------------------------------------ #
    # Model internals
    # ------------------------------------------------------------------ #
    def _ar_coefficients(self) -> list[np.ndarray]:
        """Solve the (block) Yule-Walker system for the AR coefficient matrices."""
        k, d = self.order, self.dim
        # Big block-Toeplitz system: R A = c with R_{ij} = C_{|i-j|}.
        big = np.zeros((k * d, k * d))
        rhs = np.zeros((k * d, d))
        for i in range(k):
            rhs[i * d : (i + 1) * d, :] = self._cov_blocks[i + 1]
            for j in range(k):
                lag = abs(i - j)
                block = self._cov_blocks[lag]
                big[i * d : (i + 1) * d, j * d : (j + 1) * d] = block if i >= j else block.T
        # Ridge scaled to the current variance level: the absolute term keeps
        # the system solvable when the data is (nearly) constant, while the
        # relative term keeps the AR coefficients bounded when the Yule-Walker
        # matrix is close to singular (strong or spurious autocorrelation).
        variance_scale = float(np.trace(self._cov_blocks[0])) / d
        ridge = self.regularization + 1e-3 * variance_scale
        big += ridge * np.eye(k * d)
        try:
            solution = np.linalg.solve(big, rhs)
        except np.linalg.LinAlgError:
            solution = np.linalg.lstsq(big, rhs, rcond=None)[0]
        return [solution[i * d : (i + 1) * d, :].T for i in range(k)]

    def _predict(self) -> tuple[np.ndarray, np.ndarray]:
        """One-step-ahead predictive mean and covariance."""
        covariance = self._sigma + self.regularization * np.eye(self.dim)
        if self._n_seen < self.order + 1 or len(self._history) < self.order:
            return self._mu.copy(), covariance
        coefficients = self._ar_coefficients()
        history = list(self._history)
        prediction = self._mu.copy()
        for lag in range(1, self.order + 1):
            prediction = prediction + coefficients[lag - 1] @ (history[-lag] - self._mu)
        return prediction, covariance

    @staticmethod
    def _log_loss(x: np.ndarray, mean: np.ndarray, covariance: np.ndarray) -> float:
        d = x.shape[0]
        diff = x - mean
        sign, logdet = np.linalg.slogdet(covariance)
        if sign <= 0:
            covariance = covariance + 1e-6 * np.eye(d)
            sign, logdet = np.linalg.slogdet(covariance)
        solve = np.linalg.solve(covariance, diff)
        return float(0.5 * (d * np.log(2.0 * np.pi) + logdet + diff @ solve))

    # ------------------------------------------------------------------ #
    # Batch convenience
    # ------------------------------------------------------------------ #
    def score_sequence(self, series: np.ndarray) -> np.ndarray:
        """Run the model over a whole series and return per-step log losses."""
        series = check_matrix(series, "series")
        if series.shape[1] != self.dim:
            raise ValidationError(
                f"series dimension {series.shape[1]} does not match model dimension {self.dim}"
            )
        return np.array([self.update(row) for row in series])
