"""Unsupervised learning vector quantisation (competitive learning).

The paper cites Kohonen's learning vector quantisation as one of the
quantisers that can produce signatures.  Since bags carry no class labels,
this module implements the unsupervised variant (a.k.a. online
competitive learning / "LVQ without labels"): prototypes are pulled toward
observations presented one at a time with a decaying learning rate.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .base import BaseQuantizer, QuantizationResult, counts_from_labels, drop_empty_clusters
from .kmeans import kmeans_plusplus_init, _assign


class LearningVectorQuantizer(BaseQuantizer):
    """Online competitive-learning quantiser.

    Parameters
    ----------
    n_clusters:
        Number of prototypes.
    learning_rate:
        Initial learning rate; decays linearly to zero over the epochs.
    n_epochs:
        Number of passes over the bag.
    shuffle:
        Whether to shuffle the presentation order each epoch.
    random_state:
        Seed or generator controlling initialisation and shuffling.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        learning_rate: float = 0.1,
        n_epochs: int = 10,
        shuffle: bool = True,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        super().__init__(random_state=random_state)
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError("learning_rate must lie in (0, 1]")
        self.learning_rate = float(learning_rate)
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.shuffle = bool(shuffle)

    def fit(self, data: np.ndarray) -> QuantizationResult:
        data = self._validate(data)
        rng = self._rng()
        n = data.shape[0]
        k = min(self.n_clusters, np.unique(data, axis=0).shape[0])

        prototypes = kmeans_plusplus_init(data, k, rng)
        total_steps = self.n_epochs * n
        step = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            for idx in order:
                x = data[idx]
                winner = int(np.argmin(np.sum((prototypes - x) ** 2, axis=1)))
                eta = self.learning_rate * (1.0 - step / total_steps)
                prototypes[winner] += eta * (x - prototypes[winner])
                step += 1

        labels = _assign(data, prototypes)
        counts = counts_from_labels(labels, k)
        inertia = float(np.sum((data - prototypes[labels]) ** 2))
        result = drop_empty_clusters(prototypes, counts, labels)
        result = QuantizationResult(
            centers=result.centers,
            counts=result.counts,
            labels=result.labels,
            inertia=inertia,
        )
        self._result = result
        return result
