"""k-medoids clustering (PAM-style) for signature construction.

k-medoids is mentioned in the paper (Section 3.1) as an alternative to
k-means; its cluster centres are actual observations, which makes it more
robust to outliers and applicable with arbitrary dissimilarities.  This
implementation uses a build step (greedy medoid selection) followed by
alternating assignment / medoid-update sweeps ("Voronoi iteration").
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from .._validation import check_positive_int
from .base import BaseQuantizer, QuantizationResult, counts_from_labels, drop_empty_clusters


def pairwise_distances(
    data: np.ndarray, metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None
) -> np.ndarray:
    """Compute the full ``(n, n)`` pairwise distance matrix.

    With the default ``metric=None`` the Euclidean distance is computed with
    a vectorised formula; otherwise ``metric`` is called for each pair.
    """
    n = data.shape[0]
    if metric is None:
        sq = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ data.T
            + np.sum(data**2, axis=1)[None, :]
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)
    dist = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            dist[i, j] = dist[j, i] = float(metric(data[i], data[j]))
    return dist


class KMedoids(BaseQuantizer):
    """Partitioning-around-medoids clustering.

    Parameters
    ----------
    n_clusters:
        Requested number of medoids.
    max_iter:
        Maximum number of assignment / update sweeps.
    metric:
        Optional callable ``(x, y) -> float``; Euclidean by default.
    random_state:
        Seed or generator used to break ties in the greedy build phase.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        max_iter: int = 100,
        metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        super().__init__(random_state=random_state)
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.metric = metric

    def fit(self, data: np.ndarray) -> QuantizationResult:
        data = self._validate(data)
        n = data.shape[0]
        k = min(self.n_clusters, n)
        dist = pairwise_distances(data, self.metric)

        medoids = self._build(dist, k)
        labels = np.argmin(dist[:, medoids], axis=1)
        for _ in range(self.max_iter):
            new_medoids = medoids.copy()
            for c in range(k):
                members = np.where(labels == c)[0]
                if members.size == 0:
                    continue
                within = dist[np.ix_(members, members)].sum(axis=1)
                new_medoids[c] = members[int(np.argmin(within))]
            new_labels = np.argmin(dist[:, new_medoids], axis=1)
            if np.array_equal(new_medoids, medoids) and np.array_equal(new_labels, labels):
                break
            medoids, labels = new_medoids, new_labels

        centers = data[medoids]
        counts = counts_from_labels(labels, k)
        inertia = float(dist[np.arange(n), medoids[labels]].sum())
        result = drop_empty_clusters(centers, counts, labels)
        result = QuantizationResult(
            centers=result.centers,
            counts=result.counts,
            labels=result.labels,
            inertia=inertia,
        )
        self._result = result
        return result

    def _build(self, dist: np.ndarray, k: int) -> np.ndarray:
        """Greedy medoid initialisation: repeatedly add the point that most
        reduces the total distance to the nearest medoid."""
        n = dist.shape[0]
        first = int(np.argmin(dist.sum(axis=1)))
        medoids = [first]
        nearest = dist[:, first].copy()
        while len(medoids) < k:
            gains = np.array(
                [
                    np.sum(np.maximum(nearest - dist[:, j], 0.0)) if j not in medoids else -np.inf
                    for j in range(n)
                ]
            )
            best = int(np.argmax(gains))
            medoids.append(best)
            nearest = np.minimum(nearest, dist[:, best])
        return np.array(medoids, dtype=int)
