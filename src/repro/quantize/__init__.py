"""Vector quantisers used to turn bags of vectors into signatures.

The paper's Section 3.1 lists k-means, k-medoids, learning vector
quantisation and fixed-width histograms as ways to summarise the empirical
distribution of a bag; all are provided here behind a common
:class:`~repro.quantize.base.BaseQuantizer` interface.
"""

from .base import BaseQuantizer, QuantizationResult, counts_from_labels, drop_empty_clusters
from .histogram import HistogramQuantizer
from .kmeans import KMeans, kmeans_plusplus_init
from .kmedoids import KMedoids, pairwise_distances
from .lvq import LearningVectorQuantizer

__all__ = [
    "BaseQuantizer",
    "QuantizationResult",
    "counts_from_labels",
    "drop_empty_clusters",
    "HistogramQuantizer",
    "KMeans",
    "kmeans_plusplus_init",
    "KMedoids",
    "pairwise_distances",
    "LearningVectorQuantizer",
]
