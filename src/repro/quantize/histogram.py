"""Histogram quantiser: fixed-width binning of bags.

The paper (Section 3.1) notes that for low-dimensional data (especially
1-D) a very simple way of building signatures is to partition the space
into fixed-width bins and count observations falling into each bin.  The
resulting histogram is a special case of a signature where the cluster
centres are bin centres.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .base import BaseQuantizer, QuantizationResult


class HistogramQuantizer(BaseQuantizer):
    """Fixed-grid histogram quantisation.

    Parameters
    ----------
    bins:
        Number of bins per dimension (scalar) or a sequence with one entry
        per dimension.
    range:
        Optional ``(low, high)`` pair, or a sequence of pairs (one per
        dimension), fixing the binning range.  When ``None`` the range of
        the data being quantised is used; fixing the range is recommended
        when signatures from different bags must share a common grid.
    drop_empty:
        When ``True`` (default) bins with zero count are not included in the
        output, which keeps signatures small.
    """

    def __init__(
        self,
        bins: Union[int, Sequence[int]] = 10,
        *,
        range: Optional[Sequence] = None,
        drop_empty: bool = True,
    ):
        super().__init__(random_state=None)
        if isinstance(bins, (int, np.integer)):
            check_positive_int(int(bins), "bins")
        else:
            bins = [check_positive_int(int(b), "bins") for b in bins]
        self.bins = bins
        self.range = range
        self.drop_empty = bool(drop_empty)

    def _resolve_edges(self, data: np.ndarray) -> list[np.ndarray]:
        d = data.shape[1]
        if isinstance(self.bins, (int, np.integer)):
            bins_per_dim = [int(self.bins)] * d
        else:
            if len(self.bins) != d:
                raise ValidationError(
                    f"bins has {len(self.bins)} entries but data has {d} dimensions"
                )
            bins_per_dim = [int(b) for b in self.bins]

        if self.range is None:
            ranges = [(data[:, j].min(), data[:, j].max()) for j in range(d)]
        else:
            rng_spec = np.asarray(self.range, dtype=float)
            if rng_spec.ndim == 1:
                if rng_spec.shape[0] != 2:
                    raise ValidationError("range must be a (low, high) pair")
                ranges = [(rng_spec[0], rng_spec[1])] * d
            else:
                if rng_spec.shape != (d, 2):
                    raise ValidationError(
                        f"range must have shape ({d}, 2), got {rng_spec.shape}"
                    )
                ranges = [tuple(row) for row in rng_spec]

        edges = []
        for (low, high), nb in zip(ranges, bins_per_dim):
            if high <= low:
                high = low + 1.0
            edges.append(np.linspace(low, high, nb + 1))
        return edges

    def fit(self, data: np.ndarray) -> QuantizationResult:
        data = self._validate(data)
        n, d = data.shape
        edges = self._resolve_edges(data)
        bins_per_dim = [len(e) - 1 for e in edges]

        # Digitise each dimension into its bin index, clipping to the grid.
        indices = np.empty((n, d), dtype=int)
        for j in range(d):
            idx = np.digitize(data[:, j], edges[j][1:-1], right=False)
            indices[:, j] = np.clip(idx, 0, bins_per_dim[j] - 1)

        flat = np.ravel_multi_index(indices.T, bins_per_dim)
        unique_flat, labels, counts = np.unique(flat, return_inverse=True, return_counts=True)

        centers_per_dim = [0.5 * (e[:-1] + e[1:]) for e in edges]
        multi = np.array(np.unravel_index(unique_flat, bins_per_dim)).T
        centers = np.column_stack(
            [centers_per_dim[j][multi[:, j]] for j in range(d)]
        )

        result = QuantizationResult(
            centers=centers,
            counts=counts.astype(float),
            labels=labels,
            inertia=float(np.sum((data - centers[labels]) ** 2)),
        )
        self._result = result
        return result
