"""From-scratch k-means clustering with k-means++ seeding.

This is the default quantiser for building signatures from bags of
multi-dimensional vectors (paper Section 3.1).  The implementation uses
Lloyd's algorithm with k-means++ initialisation and supports multiple
restarts, returning the solution with the lowest inertia.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .base import BaseQuantizer, QuantizationResult, counts_from_labels, drop_empty_clusters


def kmeans_plusplus_init(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Select ``n_clusters`` initial centres using the k-means++ heuristic.

    Parameters
    ----------
    data:
        Array of shape ``(n, d)``.
    n_clusters:
        Number of centres to pick; must not exceed ``n``.
    rng:
        Source of randomness.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_clusters, d)`` with the chosen centres.
    """
    n = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]), dtype=float)
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for k in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with existing centres; pick uniformly.
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[k] = data[idx]
        dist_sq = np.sum((data - centers[k]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def _assign(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Return the index of the nearest centre for each row of ``data``."""
    # (n, K) squared distances computed without forming the full (n, K, d) cube.
    sq = (
        np.sum(data**2, axis=1)[:, None]
        - 2.0 * data @ centers.T
        + np.sum(centers**2, axis=1)[None, :]
    )
    return np.argmin(sq, axis=1)


def lloyd_iteration(
    data: np.ndarray, centers: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, float]:
    """Run one Lloyd step: assign points, then recompute centres.

    Empty clusters are re-seeded with the point farthest from its assigned
    centre so that the requested number of clusters is preserved whenever
    the data contains enough distinct points.
    """
    labels = _assign(data, centers)
    new_centers = centers.copy()
    for k in range(centers.shape[0]):
        members = data[labels == k]
        if len(members) > 0:
            new_centers[k] = members.mean(axis=0)
        else:
            distances = np.sum((data - centers[labels]) ** 2, axis=1)
            new_centers[k] = data[int(np.argmax(distances))]
    labels = _assign(data, new_centers)
    inertia = float(np.sum((data - new_centers[labels]) ** 2))
    return new_centers, labels, inertia


class KMeans(BaseQuantizer):
    """Lloyd's k-means with k-means++ seeding and multiple restarts.

    Parameters
    ----------
    n_clusters:
        Requested number of clusters ``K``.  If a bag holds fewer than
        ``K`` distinct points the effective number of clusters is reduced.
    n_init:
        Number of random restarts; the best (lowest-inertia) run wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Convergence tolerance on the decrease of inertia.
    random_state:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-7,
        random_state: Union[None, int, np.random.Generator] = None,
    ):
        super().__init__(random_state=random_state)
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol < 0:
            raise ValidationError("tol must be non-negative")
        self.tol = float(tol)

    def fit(self, data: np.ndarray) -> QuantizationResult:
        data = self._validate(data)
        rng = self._rng()
        n_unique = np.unique(data, axis=0).shape[0]
        k = min(self.n_clusters, n_unique)

        best: QuantizationResult | None = None
        for _ in range(self.n_init):
            centers = kmeans_plusplus_init(data, k, rng)
            prev_inertia = np.inf
            labels = np.zeros(data.shape[0], dtype=int)
            inertia = np.inf
            for _ in range(self.max_iter):
                centers, labels, inertia = lloyd_iteration(data, centers, rng)
                if prev_inertia - inertia <= self.tol:
                    break
                prev_inertia = inertia
            counts = counts_from_labels(labels, k)
            result = drop_empty_clusters(centers, counts, labels)
            result = QuantizationResult(
                centers=result.centers,
                counts=result.counts,
                labels=result.labels,
                inertia=inertia,
            )
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        self._result = best
        return best
