"""Common interface for vector quantisers used to build signatures.

A quantiser compresses a bag of ``n`` vectors into at most ``K`` cluster
centres with associated member counts.  The paper (Section 3.1) mentions
k-means, k-medoids, learning vector quantisation, and fixed-width
histograms as suitable quantisers; all four are implemented in this
package behind the :class:`BaseQuantizer` interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .._validation import as_rng, check_matrix
from ..exceptions import NotFittedError


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantising a bag of vectors.

    Attributes
    ----------
    centers:
        Array of shape ``(K, d)`` holding the representative vectors.
    counts:
        Array of shape ``(K,)`` with the number of original observations
        assigned to each centre.  ``counts.sum()`` equals the bag size.
    labels:
        Array of shape ``(n,)`` assigning each original observation to a
        centre index in ``[0, K)``.
    inertia:
        Sum of squared distances of observations to their assigned centre
        (``nan`` for quantisers where this is not meaningful).
    """

    centers: np.ndarray
    counts: np.ndarray
    labels: np.ndarray
    inertia: float = float("nan")

    def __post_init__(self) -> None:
        if self.centers.shape[0] != self.counts.shape[0]:
            raise ValueError("centers and counts must have matching lengths")

    @property
    def n_clusters(self) -> int:
        """Number of non-empty clusters in the result."""
        return int(self.centers.shape[0])

    @property
    def n_points(self) -> int:
        """Number of observations that were quantised."""
        return int(self.counts.sum())


class BaseQuantizer(abc.ABC):
    """Abstract base class for bag quantisers.

    Subclasses implement :meth:`fit` returning a
    :class:`QuantizationResult`; :meth:`fit_predict` is provided for
    convenience and returns only the labels.
    """

    def __init__(self, random_state: Union[None, int, np.random.Generator] = None) -> None:
        self.random_state = random_state
        self._result: Optional[QuantizationResult] = None

    @abc.abstractmethod
    def fit(self, data: np.ndarray) -> QuantizationResult:
        """Quantise ``data`` (shape ``(n, d)``) and return the result."""

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Quantise ``data`` and return only the per-point labels."""
        return self.fit(data).labels

    @property
    def result_(self) -> QuantizationResult:
        """Result of the most recent :meth:`fit` call."""
        if self._result is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")
        return self._result

    def _rng(self) -> np.random.Generator:
        return as_rng(self.random_state)

    @staticmethod
    def _validate(data: np.ndarray) -> np.ndarray:
        return check_matrix(data, "data")


def counts_from_labels(labels: np.ndarray, n_clusters: int) -> np.ndarray:
    """Count how many points are assigned to each of ``n_clusters`` clusters."""
    return np.bincount(np.asarray(labels, dtype=int), minlength=n_clusters).astype(float)


def drop_empty_clusters(
    centers: np.ndarray, counts: np.ndarray, labels: np.ndarray
) -> QuantizationResult:
    """Remove empty clusters and re-index labels accordingly."""
    keep = counts > 0
    if np.all(keep):
        return QuantizationResult(centers=centers, counts=counts, labels=labels)
    new_index = -np.ones(len(counts), dtype=int)
    new_index[keep] = np.arange(int(keep.sum()))
    return QuantizationResult(
        centers=centers[keep],
        counts=counts[keep],
        labels=new_index[labels],
    )
