"""The Bayesian bootstrap (Rubin, 1981) for statistics of weighted data.

As opposed to the standard bootstrap, which resamples observations with
replacement, the Bayesian bootstrap resamples the *weights* given to each
observation from a Dirichlet posterior and recomputes the statistic.  This
yields a smooth distribution of the statistic even for very small samples,
which is why the paper uses it to build per-time-step confidence intervals
of the change-point score with windows as short as τ = τ′ = 5 bags
(Section 4.2).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from .._validation import as_rng, check_positive_int, check_probability
from .dirichlet import sample_uniform_dirichlet_weights, sample_weighted_dirichlet_weights
from .intervals import ConfidenceInterval, percentile_interval

StatisticOfWeights = Callable[[np.ndarray], float]
"""A statistic expressed as a function of the probability vector over observations."""


class BayesianBootstrap:
    """Bayesian bootstrap engine for weight-based statistics.

    Parameters
    ----------
    n_replicates:
        Number of Dirichlet weight resamples ``T``.
    alpha:
        Significance level for the confidence intervals (default 0.05 for
        the 95% intervals used throughout the paper).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        n_replicates: int = 200,
        *,
        alpha: float = 0.05,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.n_replicates = check_positive_int(n_replicates, "n_replicates", minimum=2)
        self.alpha = check_probability(alpha, "alpha")
        self._rng = as_rng(rng)

    # ------------------------------------------------------------------ #
    # Weight resampling
    # ------------------------------------------------------------------ #
    def resample_weights(
        self, n: int, base_weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Draw ``T`` weight vectors of length ``n``.

        With ``base_weights=None`` the uniform Bayesian bootstrap
        (``Dirichlet(1,…,1)``) is used; otherwise the weighted variant
        (``Dirichlet(n·π)``, paper Appendix B).
        """
        if base_weights is None:
            return sample_uniform_dirichlet_weights(n, self.n_replicates, rng=self._rng)
        return sample_weighted_dirichlet_weights(
            base_weights, self.n_replicates, rng=self._rng
        )

    # ------------------------------------------------------------------ #
    # Statistic replication
    # ------------------------------------------------------------------ #
    def replicate(
        self,
        statistic: StatisticOfWeights,
        n: int,
        base_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return ``T`` replicated values of ``statistic``.

        ``statistic`` receives one resampled probability vector per call.
        """
        weights = self.resample_weights(n, base_weights)
        return np.array([statistic(w) for w in weights], dtype=float)

    def confidence_interval(
        self,
        statistic: StatisticOfWeights,
        n: int,
        base_weights: Optional[np.ndarray] = None,
        *,
        point: float = float("nan"),
    ) -> ConfidenceInterval:
        """Percentile confidence interval of ``statistic`` under weight resampling."""
        samples = self.replicate(statistic, n, base_weights)
        return percentile_interval(samples, self.alpha, point=point)

    # ------------------------------------------------------------------ #
    # Convenience: classic "statistic of data" form
    # ------------------------------------------------------------------ #
    def mean_interval(self, data: np.ndarray, *, point: Optional[float] = None) -> ConfidenceInterval:
        """Confidence interval of the sample mean of 1-D ``data``.

        Provided as the canonical textbook example of the Bayesian
        bootstrap (and used by tests as an analytically checkable case).
        """
        values = np.asarray(data, dtype=float).ravel()
        if point is None:
            point = float(values.mean())
        return self.confidence_interval(
            lambda w: float(np.dot(w, values)), values.shape[0], point=point
        )
