"""Bootstrap machinery for adaptive thresholding (paper Section 4)."""

from .bayesian import BayesianBootstrap, StatisticOfWeights
from .dirichlet import (
    dirichlet_moments,
    sample_uniform_dirichlet_weights,
    sample_weighted_dirichlet_weights,
)
from .intervals import ConfidenceInterval, percentile_interval
from .standard import StandardBootstrap

__all__ = [
    "BayesianBootstrap",
    "StandardBootstrap",
    "StatisticOfWeights",
    "ConfidenceInterval",
    "percentile_interval",
    "sample_uniform_dirichlet_weights",
    "sample_weighted_dirichlet_weights",
    "dirichlet_moments",
]
