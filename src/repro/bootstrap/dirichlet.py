"""Dirichlet weight resampling used by the Bayesian bootstrap.

Appendix A of the paper derives that, with an (improper) Dirichlet prior,
the posterior of the probability vector over ``n`` observed values is
``Dirichlet(1, ..., 1)``; Appendix B extends this to weighted data, where
matching the first two moments of multinomial resampling leads to
``Dirichlet(n · π_1, ..., n · π_n)`` with ``π_i`` the normalised weights.
These two samplers are the only sources of randomness in the adaptive
thresholding procedure.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import as_rng, check_positive_int, check_weights
from ..exceptions import ValidationError


def sample_uniform_dirichlet_weights(
    n: int,
    size: int = 1,
    *,
    rng: Union[None, int, np.random.Generator] = None,
) -> np.ndarray:
    """Draw ``size`` weight vectors from ``Dirichlet(1, ..., 1)`` of length ``n``.

    This is the Bayesian bootstrap of Rubin (1981) for unweighted data
    (paper Appendix A).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(size, n)``; each row sums to one.
    """
    n = check_positive_int(n, "n")
    size = check_positive_int(size, "size")
    generator = as_rng(rng)
    return generator.dirichlet(np.ones(n), size=size)


def sample_weighted_dirichlet_weights(
    base_weights: np.ndarray,
    size: int = 1,
    *,
    concentration_scale: float | None = None,
    rng: Union[None, int, np.random.Generator] = None,
) -> np.ndarray:
    """Draw weight vectors from ``Dirichlet(n · π)`` for weighted data.

    Parameters
    ----------
    base_weights:
        Non-negative base weights ``ψ_i`` of the ``n`` observations (paper
        Eqs. 21-22 use the per-window signature weights here).  They are
        normalised internally to ``π_i``.
    size:
        Number of weight vectors to draw.
    concentration_scale:
        The factor multiplying ``π`` in the Dirichlet parameter.  Defaults
        to ``n`` (matching the moments of weighted multinomial resampling,
        paper Appendix B).
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(size, n)``; each row sums to one.
    """
    pi = check_weights(base_weights, "base_weights", normalize=True)
    size = check_positive_int(size, "size")
    n = pi.shape[0]
    scale = float(n if concentration_scale is None else concentration_scale)
    if scale <= 0:
        raise ValidationError("concentration_scale must be positive")
    alpha = scale * pi
    # A Dirichlet parameter of exactly zero (a base weight of zero) would
    # make the corresponding component degenerate at 0, which numpy rejects;
    # floor it at a tiny value so such observations simply get ~zero weight.
    alpha = np.maximum(alpha, 1e-12)
    generator = as_rng(rng)
    return generator.dirichlet(alpha, size=size)


def dirichlet_moments(alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mean and variance of each component of a Dirichlet distribution.

    Provided mainly for tests and documentation: these are the moments the
    paper's Appendix B matches against multinomial resampling.
    """
    alpha = np.asarray(alpha, dtype=float).ravel()
    if np.any(alpha <= 0):
        raise ValidationError("Dirichlet parameters must be positive")
    alpha0 = alpha.sum()
    mean = alpha / alpha0
    var = alpha * (alpha0 - alpha) / (alpha0**2 * (alpha0 + 1.0))
    return mean, var
