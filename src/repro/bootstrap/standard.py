"""Classical (Efron) bootstrap, provided for comparison with the Bayesian one.

The paper argues (Section 4.2) that the Bayesian bootstrap yields smoother
confidence intervals than the standard bootstrap when the number of bags
in a window is small.  The ablation benchmark ``bench_ablation_bootstrap``
quantifies that claim using this implementation as the baseline.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from .._validation import as_rng, check_positive_int, check_probability
from .intervals import ConfidenceInterval, percentile_interval

StatisticOfWeights = Callable[[np.ndarray], float]


class StandardBootstrap:
    """Multinomial-resampling bootstrap over observation weights.

    To stay interchangeable with :class:`~repro.bootstrap.BayesianBootstrap`
    the statistic is expressed as a function of the probability vector over
    observations: a standard bootstrap replicate corresponds to the vector
    of resampling *proportions* ``f_i`` (paper Appendix A).
    """

    def __init__(
        self,
        n_replicates: int = 200,
        *,
        alpha: float = 0.05,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.n_replicates = check_positive_int(n_replicates, "n_replicates", minimum=2)
        self.alpha = check_probability(alpha, "alpha")
        self._rng = as_rng(rng)

    def resample_weights(
        self, n: int, base_weights: Union[np.ndarray, None] = None
    ) -> np.ndarray:
        """Draw ``T`` proportion vectors from multinomial resampling."""
        n = check_positive_int(n, "n")
        if base_weights is None:
            probs = np.full(n, 1.0 / n)
        else:
            probs = np.asarray(base_weights, dtype=float).ravel()
            probs = probs / probs.sum()
        counts = self._rng.multinomial(n, probs, size=self.n_replicates)
        return counts / float(n)

    def replicate(
        self,
        statistic: StatisticOfWeights,
        n: int,
        base_weights: Union[np.ndarray, None] = None,
    ) -> np.ndarray:
        """Return ``T`` replicated values of ``statistic``."""
        weights = self.resample_weights(n, base_weights)
        return np.array([statistic(w) for w in weights], dtype=float)

    def confidence_interval(
        self,
        statistic: StatisticOfWeights,
        n: int,
        base_weights: Union[np.ndarray, None] = None,
        *,
        point: float = float("nan"),
    ) -> ConfidenceInterval:
        """Percentile confidence interval under multinomial resampling."""
        samples = self.replicate(statistic, n, base_weights)
        return percentile_interval(samples, self.alpha, point=point)
