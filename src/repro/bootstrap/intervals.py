"""Percentile confidence intervals from bootstrap replicates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_probability, check_vector
from ..exceptions import ValidationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval ``[lower, upper]`` for a statistic.

    Attributes
    ----------
    lower, upper:
        Interval bounds (``θ_lo`` and ``θ_up`` in the paper, Eq. 19).
    level:
        Coverage level ``1 − α``.
    point:
        The point estimate of the statistic computed with the original
        (non-resampled) weights.
    """

    lower: float
    upper: float
    level: float
    point: float = float("nan")

    def __post_init__(self) -> None:
        if self.upper < self.lower:
            raise ValidationError(
                f"upper bound {self.upper} is below lower bound {self.lower}"
            )

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lower <= value <= self.upper

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether this interval overlaps another one."""
        return self.lower <= other.upper and other.lower <= self.upper


def percentile_interval(
    samples: np.ndarray,
    alpha: float = 0.05,
    *,
    point: float = float("nan"),
) -> ConfidenceInterval:
    """Equal-tailed percentile interval from bootstrap replicates.

    The bounds are the ``α/2`` and ``1 − α/2`` empirical quantiles of the
    replicated statistic, exactly as in paper Section 4.2.
    """
    values = check_vector(samples, "samples")
    alpha = check_probability(alpha, "alpha")
    lower = float(np.quantile(values, alpha / 2.0))
    upper = float(np.quantile(values, 1.0 - alpha / 2.0))
    return ConfidenceInterval(lower=lower, upper=upper, level=1.0 - alpha, point=point)
