"""From-scratch exact solver for the (balanced) transportation problem.

The Earth Mover's Distance between two signatures is the optimal value of
the transportation problem in paper Eqs. (7)-(11).  This module implements
the classical *transportation simplex* (north-west-corner initial basic
solution followed by MODI / u-v improvement steps) without relying on any
LP library.  It is used both as an independent cross-check of the
``scipy.optimize.linprog`` backend and as a fallback when SciPy is not
available.

The solver handles balanced problems (total supply equals total demand);
the unbalanced, partial-matching case needed by the EMD is reduced to a
balanced one by :func:`solve_unbalanced_transportation`, which appends a
zero-cost dummy row or column absorbing the excess mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..exceptions import SolverError, ValidationError


@dataclass(frozen=True)
class TransportPlan:
    """Solution of a transportation problem.

    Attributes
    ----------
    flow:
        Array of shape ``(m, n)``; ``flow[i, j]`` is the mass moved from
        supply node ``i`` to demand node ``j``.
    cost:
        Total transportation cost ``sum(flow * cost_matrix)``.
    total_flow:
        Total mass moved (equals ``min(total supply, total demand)``).
    """

    flow: np.ndarray
    cost: float
    total_flow: float


def _validate_inputs(
    cost: np.ndarray, supply: np.ndarray, demand: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    cost = np.asarray(cost, dtype=float)
    supply = np.asarray(supply, dtype=float).ravel()
    demand = np.asarray(demand, dtype=float).ravel()
    if cost.ndim != 2:
        raise ValidationError("cost must be a 2-D matrix")
    if cost.shape != (supply.size, demand.size):
        raise ValidationError(
            f"cost has shape {cost.shape} but supply/demand have sizes "
            f"{supply.size}/{demand.size}"
        )
    if np.any(supply < 0) or np.any(demand < 0):
        raise ValidationError("supply and demand must be non-negative")
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix contains non-finite values")
    return cost, supply, demand


def _northwest_corner(
    supply: np.ndarray, demand: np.ndarray
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Construct an initial basic feasible solution.

    Returns the flow matrix and the list of basic cells (exactly
    ``m + n - 1`` of them; degenerate zero-flow cells are included to keep
    the basis a spanning tree).
    """
    m, n = supply.size, demand.size
    flow = np.zeros((m, n), dtype=float)
    basis: List[Tuple[int, int]] = []
    remaining_supply = supply.copy()
    remaining_demand = demand.copy()
    i = j = 0
    while i < m and j < n:
        amount = min(remaining_supply[i], remaining_demand[j])
        flow[i, j] = amount
        basis.append((i, j))
        remaining_supply[i] -= amount
        remaining_demand[j] -= amount
        if i == m - 1 and j == n - 1:
            break
        # Move along the row or the column.  On ties prefer advancing the
        # row unless it is the last one, which keeps the basis a tree.
        if remaining_supply[i] <= remaining_demand[j]:
            if i < m - 1:
                i += 1
            else:
                j += 1
        else:
            if j < n - 1:
                j += 1
            else:
                i += 1
    return flow, basis


def _basis_flows(
    m: int, n: int, basis: Set[Tuple[int, int]], supply: np.ndarray, demand: np.ndarray
) -> np.ndarray:
    """Exact flows determined by a basis tree and the (unperturbed) marginals.

    The basic cells of a transportation basis form a spanning tree of the
    bipartite supply/demand graph, so the flows satisfying the marginals
    on exactly those cells are unique and can be read off by repeatedly
    resolving leaf nodes: a node with a single incident basic cell must
    route its whole remaining balance through it.  Computing the final
    flows this way (instead of un-perturbing the epsilon-perturbed
    simplex iterate) keeps the solver's output exact up to float
    rounding, which the cross-solver parity harness relies on.
    """
    flow = np.zeros((m, n), dtype=float)
    row_balance = supply.astype(float).copy()
    col_balance = demand.astype(float).copy()
    row_edges: Dict[int, Set[Tuple[int, int]]] = {i: set() for i in range(m)}
    col_edges: Dict[int, Set[Tuple[int, int]]] = {j: set() for j in range(n)}
    for (i, j) in basis:
        row_edges[i].add((i, j))
        col_edges[j].add((i, j))

    queue: List[Tuple[str, int]] = [
        ("r", i) for i in range(m) if len(row_edges[i]) == 1
    ] + [("c", j) for j in range(n) if len(col_edges[j]) == 1]
    while queue:
        kind, idx = queue.pop()
        edges = row_edges[idx] if kind == "r" else col_edges[idx]
        if len(edges) != 1:
            continue  # the node's last edge was resolved from the other side
        (i, j) = next(iter(edges))
        amount = row_balance[i] if kind == "r" else col_balance[j]
        flow[i, j] = amount
        row_balance[i] -= amount
        col_balance[j] -= amount
        row_edges[i].discard((i, j))
        col_edges[j].discard((i, j))
        other_edges = col_edges[j] if kind == "r" else row_edges[i]
        if len(other_edges) == 1:
            queue.append(("c", j) if kind == "r" else ("r", i))
    return flow


def _compute_potentials(
    cost: np.ndarray, basis: Set[Tuple[int, int]], m: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``u_i + v_j = c_ij`` on basic cells with ``u_0 = 0`` via tree traversal."""
    row_adj: Dict[int, List[int]] = {i: [] for i in range(m)}
    col_adj: Dict[int, List[int]] = {j: [] for j in range(n)}
    for (i, j) in basis:
        row_adj[i].append(j)
        col_adj[j].append(i)

    u = np.full(m, np.nan)
    v = np.full(n, np.nan)
    u[0] = 0.0
    stack: List[Tuple[str, int]] = [("r", 0)]
    while stack:
        kind, idx = stack.pop()
        if kind == "r":
            for j in row_adj[idx]:
                if np.isnan(v[j]):
                    v[j] = cost[idx, j] - u[idx]
                    stack.append(("c", j))
        else:
            for i in col_adj[idx]:
                if np.isnan(u[i]):
                    u[i] = cost[i, idx] - v[idx]
                    stack.append(("r", i))
    if np.any(np.isnan(u)) or np.any(np.isnan(v)):
        raise SolverError(
            f"basis of {len(basis)} cells does not form a spanning tree of the "
            f"{m}x{n} transportation problem; potentials undefined"
        )
    return u, v


def _find_cycle(
    basis: Set[Tuple[int, int]], entering: Tuple[int, int], m: int, n: int
) -> List[Tuple[int, int]]:
    """Find the unique cycle created by adding ``entering`` to the basis tree.

    The cycle is returned as an ordered list of cells starting with the
    entering cell; consecutive cells alternately share a row and a column.
    """
    i0, j0 = entering
    # Adjacency of the bipartite tree spanned by the basic cells.
    adj: Dict[Tuple[str, int], List[Tuple[Tuple[str, int], Tuple[int, int]]]] = {}
    for (i, j) in basis:
        adj.setdefault(("r", i), []).append((("c", j), (i, j)))
        adj.setdefault(("c", j), []).append((("r", i), (i, j)))

    start = ("c", j0)
    goal = ("r", i0)
    if start not in adj or goal not in adj:
        raise SolverError(
            f"entering cell ({i0}, {j0}) is not connected to the basis tree "
            f"of the {m}x{n} transportation problem"
        )

    # Breadth-first search for the unique tree path from the entering cell's
    # column node back to its row node.
    parent: Dict[Tuple[str, int], Tuple[Optional[Tuple[str, int]], Optional[Tuple[int, int]]]] = {
        start: (None, None)
    }
    queue = [start]
    while queue:
        node = queue.pop(0)
        if node == goal:
            break
        for neighbor, cell in adj.get(node, []):
            if neighbor not in parent:
                parent[neighbor] = (node, cell)
                queue.append(neighbor)
    if goal not in parent:
        raise SolverError(
            f"no cycle through entering cell ({i0}, {j0}) of the {m}x{n} "
            "transportation problem; basis is not a spanning tree"
        )

    path_cells: List[Tuple[int, int]] = []
    node = goal
    while parent[node][0] is not None:
        prev, cell = parent[node]
        # Allow-listed ignores: the loop condition guarantees prev/cell
        # are non-None here, which mypy cannot derive through the dict.
        path_cells.append(cell)  # type: ignore[arg-type]
        node = prev  # type: ignore[assignment]
    path_cells.reverse()
    # Cycle: entering cell followed by the tree path from ('c', j0) to ('r', i0);
    # walking it this way alternates shared columns and rows as required.
    return [entering] + path_cells[::-1]


def solve_transportation(
    cost: np.ndarray,
    supply: np.ndarray,
    demand: np.ndarray,
    *,
    max_iter: int = 10_000,
    tol: float = 1e-9,
) -> TransportPlan:
    """Solve a balanced transportation problem exactly.

    Parameters
    ----------
    cost:
        Cost matrix of shape ``(m, n)``.
    supply, demand:
        Non-negative vectors whose totals must agree to within ``tol``
        relative tolerance.
    max_iter:
        Safety bound on the number of simplex pivots.
    tol:
        Numerical tolerance for optimality and balance checks.

    Returns
    -------
    TransportPlan
        The optimal flow, its cost and the total mass moved.
    """
    cost, supply, demand = _validate_inputs(cost, supply, demand)
    total_supply = float(supply.sum())
    total_demand = float(demand.sum())
    scale = max(total_supply, total_demand, 1.0)
    if abs(total_supply - total_demand) > tol * scale + 1e-12:
        raise ValidationError(
            "solve_transportation requires a balanced problem; use "
            "solve_unbalanced_transportation for unequal totals"
        )
    m, n = cost.shape
    if total_supply <= 0:
        return TransportPlan(flow=np.zeros((m, n)), cost=0.0, total_flow=0.0)

    # Tiny perturbation of the supplies avoids degenerate pivots (classical
    # epsilon-perturbation technique); it only steers the pivoting — the
    # final flows are re-derived from the optimal basis on the unperturbed
    # marginals (see _basis_flows below), so no trace of it survives.
    eps = 1e-9 * scale / max(m, 1)
    supply_p = supply + eps
    demand_p = demand.copy()
    demand_p[-1] += eps * m

    flow, basis_list = _northwest_corner(supply_p, demand_p)
    basis: Set[Tuple[int, int]] = set(basis_list)

    for _ in range(max_iter):
        u, v = _compute_potentials(cost, basis, m, n)
        reduced = cost - u[:, None] - v[None, :]
        reduced_masked = reduced.copy()
        for (i, j) in basis:
            reduced_masked[i, j] = 0.0
        entering_flat = int(np.argmin(reduced_masked))
        i0, j0 = divmod(entering_flat, n)
        if reduced_masked[i0, j0] >= -tol * (1.0 + np.abs(cost).max()):
            break  # optimal
        cycle = _find_cycle(basis, (i0, j0), m, n)
        # Alternate signs around the cycle: entering cell gains flow.
        minus_cells = cycle[1::2]
        theta = min(flow[i, j] for (i, j) in minus_cells)
        for idx, (i, j) in enumerate(cycle):
            if idx % 2 == 0:
                flow[i, j] += theta
            else:
                flow[i, j] -= theta
        # Remove one minus-cell that hit (numerical) zero from the basis.
        leaving = min(minus_cells, key=lambda c: flow[c[0], c[1]])
        flow[leaving[0], leaving[1]] = max(flow[leaving[0], leaving[1]], 0.0)
        basis.discard(leaving)
        basis.add((i0, j0))
    else:
        raise SolverError(f"transportation simplex did not converge in {max_iter} pivots")

    # The perturbed iterate told us the optimal *basis*; the exact flows
    # on that basis follow from the unperturbed marginals directly (tiny
    # negatives are degenerate basic cells whose exact flow is zero).
    flow = np.clip(_basis_flows(m, n, basis, supply, demand), 0.0, None)

    total_flow = float(flow.sum())
    return TransportPlan(flow=flow, cost=float(np.sum(flow * cost)), total_flow=total_flow)


def solve_unbalanced_transportation(
    cost: np.ndarray,
    supply: np.ndarray,
    demand: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> TransportPlan:
    """Solve the partial-matching transportation problem of the EMD.

    When the total supply and demand differ, only ``min(total supply,
    total demand)`` units of mass are moved (paper Eq. 11).  The problem is
    reduced to a balanced one by adding a zero-cost dummy demand (or
    supply) node that absorbs the surplus; flows into the dummy node are
    then discarded.
    """
    cost, supply, demand = _validate_inputs(cost, supply, demand)
    total_supply = float(supply.sum())
    total_demand = float(demand.sum())
    m, n = cost.shape

    if np.isclose(total_supply, total_demand, rtol=1e-9, atol=1e-12):
        return solve_transportation(cost, supply, demand, max_iter=max_iter)

    if total_supply > total_demand:
        padded_cost = np.hstack([cost, np.zeros((m, 1))])
        padded_demand = np.concatenate([demand, [total_supply - total_demand]])
        plan = solve_transportation(padded_cost, supply, padded_demand, max_iter=max_iter)
        flow = plan.flow[:, :n]
    else:
        padded_cost = np.vstack([cost, np.zeros((1, n))])
        padded_supply = np.concatenate([supply, [total_demand - total_supply]])
        plan = solve_transportation(padded_cost, padded_supply, demand, max_iter=max_iter)
        flow = plan.flow[:m, :]

    total_flow = float(flow.sum())
    return TransportPlan(flow=flow, cost=float(np.sum(flow * cost)), total_flow=total_flow)
