"""High-level Earth Mover's Distance between signatures (paper Eqs. 7-12).

The public entry points are :func:`emd` (distance between two signatures)
and :func:`emd_with_flow` (distance plus the optimal flow).  Three
backends are available:

``"linprog"``
    SciPy HiGHS linear programming (default, robust and fast).
``"simplex"``
    From-scratch transportation simplex (:mod:`repro.emd.transportation`).
``"auto"``
    ``"linprog"`` for general signatures, with an exact 1-D fast path when
    both signatures are one-dimensional, carry equal total mass and the
    ground distance is Euclidean/Manhattan (they coincide in 1-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ValidationError
from ..signatures import Signature
from .ground_distance import GroundDistance, cross_distance_matrix
from .linprog_backend import solve_emd_linprog
from .one_dimensional import wasserstein_1d
from .registry import PAIRWISE_SOLVERS, PairwiseSolverName
from .transportation import TransportPlan, solve_unbalanced_transportation


@dataclass(frozen=True)
class EMDResult:
    """Result of an EMD computation.

    Attributes
    ----------
    distance:
        The Earth Mover's Distance, i.e. optimal cost divided by total flow
        (paper Eq. 12).
    cost:
        Optimal total transportation cost (numerator of Eq. 12).
    total_flow:
        Total mass moved, ``min`` of the two signature masses (Eq. 11).
    flow:
        Optimal flow matrix of shape ``(K, L)``, or ``None`` when the fast
        1-D path was used (the explicit flow is not materialised there).
    """

    distance: float
    cost: float
    total_flow: float
    flow: Optional[np.ndarray] = None


def _check_signatures(sig_a: Signature, sig_b: Signature) -> None:
    if not isinstance(sig_a, Signature) or not isinstance(sig_b, Signature):
        raise ValidationError("emd expects Signature instances")
    if sig_a.dimension != sig_b.dimension:
        raise ValidationError(
            f"signatures have different dimensions: {sig_a.dimension} != {sig_b.dimension}"
        )


def _can_use_1d_fast_path(
    sig_a: Signature, sig_b: Signature, ground_distance: GroundDistance
) -> bool:
    if sig_a.dimension != 1:
        return False
    if not isinstance(ground_distance, str):
        return False
    if ground_distance.lower() not in ("euclidean", "cityblock", "manhattan", "chebyshev"):
        return False
    return bool(np.isclose(sig_a.total_weight, sig_b.total_weight, rtol=1e-9, atol=1e-12))


def emd_with_flow(
    sig_a: Signature,
    sig_b: Signature,
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: PairwiseSolverName = "auto",
) -> EMDResult:
    """Compute the Earth Mover's Distance and the optimal flow.

    Parameters
    ----------
    sig_a, sig_b:
        The two signatures to compare.
    ground_distance:
        Name of a built-in metric or a callable producing the cross
        distance matrix between representative positions.
    backend:
        ``"auto"``, ``"linprog"`` or ``"simplex"``.

    Returns
    -------
    EMDResult
    """
    _check_signatures(sig_a, sig_b)
    if backend not in PAIRWISE_SOLVERS:
        raise ConfigurationError(
            f"backend must be one of {PAIRWISE_SOLVERS}, got {backend!r}"
        )

    if backend == "auto" and _can_use_1d_fast_path(sig_a, sig_b, ground_distance):
        distance = wasserstein_1d(
            sig_a.positions[:, 0], sig_a.weights, sig_b.positions[:, 0], sig_b.weights
        )
        total_flow = float(min(sig_a.total_weight, sig_b.total_weight))
        return EMDResult(
            distance=distance, cost=distance * total_flow, total_flow=total_flow, flow=None
        )

    cost_matrix = cross_distance_matrix(sig_a.positions, sig_b.positions, ground_distance)
    plan: TransportPlan
    if backend == "simplex":
        plan = solve_unbalanced_transportation(cost_matrix, sig_a.weights, sig_b.weights)
    else:
        plan = solve_emd_linprog(cost_matrix, sig_a.weights, sig_b.weights)

    if plan.total_flow <= 0:
        return EMDResult(distance=0.0, cost=0.0, total_flow=0.0, flow=plan.flow)
    return EMDResult(
        distance=plan.cost / plan.total_flow,
        cost=plan.cost,
        total_flow=plan.total_flow,
        flow=plan.flow,
    )


def emd(
    sig_a: Signature,
    sig_b: Signature,
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: PairwiseSolverName = "auto",
) -> float:
    """Earth Mover's Distance between two signatures (paper Eq. 12)."""
    return emd_with_flow(
        sig_a, sig_b, ground_distance=ground_distance, backend=backend
    ).distance
