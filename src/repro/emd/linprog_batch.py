"""Block-diagonal batched exact-LP backend for multi-pair EMD solves.

:func:`repro.emd.linprog_backend.solve_emd_linprog` encodes one
transportation problem (paper Eqs. 7-11) per :func:`scipy.optimize.linprog`
call; a band build over histogram signatures issues thousands of such
calls against one shared ground-cost matrix, and the per-call HiGHS
set-up cost (model construction, presolve, basis factorisation) dominates
the actual pivoting on these small problems.  This module stacks ``P``
same-support pairs into a *single* sparse block-diagonal LP:

* one variable block of ``m * n`` flows per pair, so the constraint
  matrix is block diagonal with ``P`` independent supply / demand /
  total-flow blocks and the objective concatenates ``P`` copies of the
  shared (or per-pair) ground-cost vector;
* because the blocks share no variables or constraints, the stacked LP's
  optimum is the sum of the per-pair optima and each extracted block
  solution is itself optimal for its pair — the distances are *exactly*
  those of per-pair :func:`solve_emd_linprog`, not an entropic
  approximation;
* batches are chunked along ``P`` so the assembled sparse matrix stays
  bounded (HiGHS's dual simplex also degrades past a few thousand
  variables per model, so moderate chunks are faster *and* smaller);
* presolve is off by default — these models have no redundancy for it to
  remove, and on small transportation blocks presolve costs more than it
  saves (a failed chunk is retried once with presolve on before raising).

A :class:`~repro.exceptions.SolverError` raised here carries the
batch-local ``pair_indices`` of every pair stacked into the failing
chunk, so callers never lose track of which problems were in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._validation import check_positive_int
from ..exceptions import SolverError, ValidationError
from .numerics import check_batch_shapes, check_weight_rows
from .transportation import TransportPlan

#: Cap on the number of LP variables (``P_chunk * m * n``) assembled into
#: one HiGHS model.  Chosen empirically: dual-simplex time per pair is
#: flat up to a few thousand variables and grows superlinearly after.
_MAX_BATCH_VARIABLES = 8_192


@dataclass(frozen=True)
class LinprogBatchResult:
    """Result of a block-diagonal batched exact-LP solve over ``P`` pairs.

    Attributes
    ----------
    distances:
        ``(P,)`` Earth Mover's Distances ``cost_p / total_flow_p`` (paper
        Eq. 12); exactly zero for pairs with no mass to move.
    costs:
        ``(P,)`` optimal transportation costs (numerators of Eq. 12).
    total_flows:
        ``(P,)`` mass moved per pair, ``min(supply_p.sum(), demand_p.sum())``
        per Eq. 11.
    flows:
        Optional ``(P, m, n)`` optimal flow matrices, materialised only
        with ``return_flows=True``.
    """

    distances: np.ndarray
    costs: np.ndarray
    total_flows: np.ndarray
    flows: Optional[np.ndarray] = None

    def plan(self, p: int) -> TransportPlan:
        """The ``p``-th pair's solution as a :class:`TransportPlan`.

        Requires the batch to have been solved with ``return_flows=True``.
        """
        if self.flows is None:
            raise ValidationError(
                "flows were not materialised; pass return_flows=True"
            )
        return TransportPlan(
            flow=self.flows[p],
            cost=float(self.costs[p]),
            total_flow=float(self.total_flows[p]),
        )


def _block_diagonal_constraints(
    n_pairs: int, m: int, n: int
) -> Tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Sparse ``A_ub`` and ``A_eq`` for ``n_pairs`` stacked transportation blocks.

    Variables are the flows of all pairs concatenated, pair-major and
    row-major within a pair: variable ``p * m * n + k * n + l`` is the
    flow ``f_kl`` of pair ``p``.  Rows are the ``n_pairs * m`` supply
    constraints, then the ``n_pairs * n`` demand constraints (``A_ub``),
    and one total-flow equality row per pair (``A_eq``).
    """
    mn = m * n
    n_vars = n_pairs * mn
    var_idx = np.arange(n_vars)
    pair_of = var_idx // mn
    row_of = (var_idx % mn) // n
    col_of = var_idx % n

    supply_rows = pair_of * m + row_of
    demand_rows = n_pairs * m + pair_of * n + col_of
    a_ub = sparse.csr_matrix(
        (
            np.ones(2 * n_vars),
            (
                np.concatenate([supply_rows, demand_rows]),
                np.concatenate([var_idx, var_idx]),
            ),
        ),
        shape=(n_pairs * (m + n), n_vars),
    )
    a_eq = sparse.csr_matrix(
        (np.ones(n_vars), (pair_of, var_idx)), shape=(n_pairs, n_vars)
    )
    return a_ub, a_eq


def _solve_chunk(
    cost: np.ndarray,
    supply: np.ndarray,
    demand: np.ndarray,
    pair_indices: np.ndarray,
    *,
    presolve: bool,
) -> np.ndarray:
    """Solve one stacked chunk, returning the ``(P_chunk, m, n)`` flows."""
    n_chunk, m = supply.shape
    n = demand.shape[1]
    if cost.ndim == 2:
        c = np.tile(cost.ravel(), n_chunk)
    else:
        c = cost.reshape(n_chunk, -1).ravel()
    a_ub, a_eq = _block_diagonal_constraints(n_chunk, m, n)
    b_ub = np.concatenate([supply.ravel(), demand.ravel()])
    b_eq = np.minimum(supply.sum(axis=1), demand.sum(axis=1))

    # Presolve is skipped for speed, not correctness; a failed chunk gets
    # one retry with HiGHS's full machinery before being declared
    # unsolvable (dict.fromkeys dedups when presolve was already on).
    for presolve_setting in dict.fromkeys((presolve, True)):
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs-ds",
            options={"presolve": presolve_setting},
        )
        if result.success:
            break
    if not result.success:
        indices = [int(i) for i in pair_indices]
        raise SolverError(
            f"linprog failed to solve a block-diagonal EMD LP over "
            f"{n_chunk} stacked pairs (batch indices {indices}): "
            f"{result.message}",
            pair_indices=indices,
        )
    return np.clip(np.asarray(result.x, dtype=float).reshape(n_chunk, m, n), 0.0, None)


def solve_emd_linprog_batch(
    cost: np.ndarray,
    supply: np.ndarray,
    demand: np.ndarray,
    *,
    return_flows: bool = False,
    presolve: bool = False,
    max_batch_variables: int = _MAX_BATCH_VARIABLES,
) -> LinprogBatchResult:
    """Solve ``P`` EMD transportation problems as block-diagonal HiGHS LPs.

    Parameters
    ----------
    cost:
        Ground-distance matrix of shape ``(m, n)`` shared by every pair
        (the common-support case), or per-pair costs of shape
        ``(P, m, n)``.
    supply, demand:
        ``(P, m)`` and ``(P, n)`` non-negative signature weights.  Zero
        entries are allowed — they mark atoms absent from that pair's
        support (e.g. unoccupied histogram bins after embedding into a
        common grid) and receive exactly zero flow.  Rows may carry
        unequal total masses; each pair moves ``min`` of its two totals,
        exactly like per-pair :func:`~repro.emd.linprog_backend.solve_emd_linprog`.
    return_flows:
        Also materialise the ``(P, m, n)`` optimal flow matrices.
    presolve:
        Run the HiGHS presolver on each chunk.  Off by default — on
        small transportation blocks it costs more than it saves; a chunk
        that fails without presolve is retried once with it enabled.
    max_batch_variables:
        Split the batch along ``P`` whenever the stacked LP would exceed
        this many flow variables, bounding both the assembled sparse
        matrix and the HiGHS model size without changing any result.

    Returns
    -------
    LinprogBatchResult
        Per-pair distances, costs, total flows and (optionally) flows,
        each exactly equal to what per-pair :func:`solve_emd_linprog`
        produces (same LP, same solver — not an approximation).
    """
    supply = check_weight_rows(supply, "supply")
    demand = check_weight_rows(demand, "demand")
    cost, n_pairs = check_batch_shapes(cost, supply, demand, names=("supply", "demand"))
    if cost.size and not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix contains non-finite values")
    max_batch_variables = check_positive_int(max_batch_variables, "max_batch_variables")

    m, n = supply.shape[1], demand.shape[1]
    flows_out = np.zeros((n_pairs, m, n), dtype=float) if return_flows else None
    costs = np.zeros(n_pairs, dtype=float)
    total_flows = np.zeros(n_pairs, dtype=float)
    distances = np.zeros(n_pairs, dtype=float)
    if n_pairs == 0:
        return LinprogBatchResult(
            distances=distances, costs=costs, total_flows=total_flows, flows=flows_out
        )

    # Pairs with no mass to move have the all-zero flow as their unique
    # feasible point; solve only the others.
    targets = np.minimum(supply.sum(axis=1), demand.sum(axis=1))
    solvable = np.flatnonzero(targets > 0)

    chunk = max(1, max_batch_variables // (m * n))
    for start in range(0, solvable.size, chunk):
        members = solvable[start : start + chunk]
        flows = _solve_chunk(
            cost if cost.ndim == 2 else cost[members],
            supply[members],
            demand[members],
            members,
            presolve=presolve,
        )
        kernel = cost[None, :, :] if cost.ndim == 2 else cost[members]
        costs[members] = (flows * kernel).sum(axis=(1, 2))
        total_flows[members] = flows.sum(axis=(1, 2))
        if flows_out is not None:
            flows_out[members] = flows
    moved = total_flows > 0
    distances[moved] = costs[moved] / total_flows[moved]
    return LinprogBatchResult(
        distances=distances, costs=costs, total_flows=total_flows, flows=flows_out
    )
