"""Entropic-regularised optimal transport (Sinkhorn) as an approximate EMD.

For large signatures the exact transportation LP becomes the bottleneck of
the detector.  Entropic regularisation replaces the LP by a strictly
convex problem solvable with simple matrix scaling (the Sinkhorn-Knopp
iterations), trading a small, controllable bias for a large speed-up.
This backend is an *extension* of the paper (which always uses the exact
EMD); the ablation tests verify that the approximation error vanishes as
the regularisation goes to zero and that the resulting change-point scores
stay close to the exact ones.

The implementation works on normalised weights (balanced transport).  For
signatures of unequal total mass the weights are normalised first, which
coincides with the exact partial-matching EMD whenever the two masses are
equal and is an accepted approximation otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_weights
from ..exceptions import SolverError, ValidationError
from ..signatures import Signature
from .ground_distance import GroundDistance, cross_distance_matrix
from .numerics import logsumexp


@dataclass(frozen=True)
class SinkhornResult:
    """Result of a Sinkhorn computation.

    Attributes
    ----------
    distance:
        Transport cost of the (entropy-regularised) optimal plan, computed
        as ``<P, C>`` — the plan's cost under the *original* ground
        distance, i.e. the "sharp" Sinkhorn distance.
    plan:
        The transport plan ``P`` of shape ``(K, L)``; rows sum to the
        normalised weights of the first signature, columns to the second's.
    iterations:
        Number of Sinkhorn iterations performed.
    converged:
        Whether the marginal error dropped below the tolerance.
    """

    distance: float
    plan: np.ndarray
    iterations: int
    converged: bool


def sinkhorn_transport(
    cost: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    *,
    epsilon: float = 0.05,
    max_iter: int = 2000,
    tol: float = 1e-9,
    check_every: int = 10,
) -> SinkhornResult:
    """Solve entropic-regularised optimal transport by Sinkhorn iterations.

    Parameters
    ----------
    cost:
        Ground-cost matrix of shape ``(K, L)``.
    weights_a, weights_b:
        Non-negative weights; normalised to probability vectors internally.
    epsilon:
        Entropic regularisation strength (smaller = closer to exact EMD but
        slower convergence).  Scaled by the median cost internally so the
        parameter is unit-free.
    max_iter:
        Maximum number of scaling iterations.
    tol:
        L1 tolerance on the marginal violation.
    check_every:
        Check convergence only every this many iterations (and on the
        final one).  The check reads the row marginal directly off the
        dual potentials, so iterations in between never materialise the
        transport plan.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError("cost must be a 2-D matrix")
    a = check_weights(weights_a, "weights_a", normalize=True)
    b = check_weights(weights_b, "weights_b", normalize=True)
    if cost.shape != (a.shape[0], b.shape[0]):
        raise ValidationError(
            f"cost has shape {cost.shape}, expected {(a.shape[0], b.shape[0])}"
        )
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise ValidationError("epsilon must be positive and finite")
    check_every = check_positive_int(check_every, "check_every")

    # Zero-weight atoms would give -inf dual potentials (log 0); they carry
    # no mass, so drop them from the scaling iterations and restore their
    # (empty) rows/columns in the final plan.
    support_a = a > 0
    support_b = b > 0
    full_shape = cost.shape
    if not (support_a.all() and support_b.all()):
        a = a[support_a]
        b = b[support_b]
        cost = cost[np.ix_(support_a, support_b)]

    positive_costs = cost[cost > 0]
    scale = float(np.median(positive_costs)) if positive_costs.size else 1.0
    regularisation = epsilon * max(scale, 1e-12)

    # Log-domain stabilised Sinkhorn: f, g are the dual potentials.
    log_a = np.log(a)
    log_b = np.log(b)
    f = np.zeros_like(a)
    g = np.zeros_like(b)
    kernel = -cost / regularisation

    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # Row update: f_i = -eps * logsumexp_j (kernel_ij + g_j/eps) + eps*log a_i
        m = kernel + g[None, :] / regularisation
        f = regularisation * (log_a - logsumexp(m, axis=1))
        m = kernel + f[:, None] / regularisation
        g = regularisation * (log_b - logsumexp(m, axis=0))

        if iteration % check_every == 0 or iteration == max_iter:
            # The column update enforces the column marginals exactly, so
            # convergence is governed by the row violation alone — read it
            # off the duals instead of materialising the transport plan.
            lse_rows = logsumexp(kernel + g[None, :] / regularisation, axis=1)
            row_marginal = np.exp(f / regularisation + lse_rows)
            if np.abs(row_marginal - a).sum() < tol:
                converged = True
                break

    plan = np.exp(kernel + f[:, None] / regularisation + g[None, :] / regularisation)
    if not np.all(np.isfinite(plan)):
        raise SolverError(
            f"Sinkhorn iterations diverged on a {cost.shape[0]}x{cost.shape[1]} "
            f"problem after {iteration} iterations "
            f"(epsilon={epsilon!r}, regularisation={regularisation!r}); "
            "increase epsilon"
        )
    distance = float(np.sum(plan * cost))
    if plan.shape != full_shape:
        full_plan = np.zeros(full_shape, dtype=float)
        full_plan[np.ix_(support_a, support_b)] = plan
        plan = full_plan
    return SinkhornResult(
        distance=distance,
        plan=plan,
        iterations=iteration,
        converged=converged,
    )


def sinkhorn_emd(
    sig_a: Signature,
    sig_b: Signature,
    *,
    ground_distance: GroundDistance = "euclidean",
    epsilon: float = 0.05,
    max_iter: int = 2000,
) -> float:
    """Approximate EMD between two signatures via entropic regularisation.

    Weights are normalised, so for signatures of equal total mass the value
    converges to the exact EMD (Eq. 12) as ``epsilon -> 0``.
    """
    if sig_a.dimension != sig_b.dimension:
        raise ValidationError("signatures must share the same dimensionality")
    cost = cross_distance_matrix(sig_a.positions, sig_b.positions, ground_distance)
    result = sinkhorn_transport(
        cost, sig_a.weights, sig_b.weights, epsilon=epsilon, max_iter=max_iter
    )
    return result.distance
