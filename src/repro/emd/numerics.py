"""Shared numerical kernels and validation for the transportation solvers.

The scalar and the batched Sinkhorn solvers both run log-domain matrix
scaling, whose inner loop is a stabilised log-sum-exp reduction.  They
must share one implementation: the batched solver's parity guarantee
(batched distances match the per-pair solver to within float rounding)
relies on both paths performing bitwise-identical reductions.

The two batched multi-pair solvers (tensor Sinkhorn and block-diagonal
LP) also share one input contract — a ``(K, L)`` or ``(P, K, L)`` cost
tensor against ``(P, K)``/``(P, L)`` non-negative weight rows — so its
validation lives here too, keeping the two backends' error behaviour
from drifting apart.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ValidationError


def check_weight_rows(weights: np.ndarray, name: str) -> np.ndarray:
    """Validate a ``(P, n_atoms)`` batch of non-negative weight rows.

    Rows are *not* normalised and zero-total rows are *not* rejected
    here — the solvers disagree on both (balanced Sinkhorn normalises
    and needs positive mass; the partial-matching LP takes raw weights
    and treats a zero-total row as a trivially solved pair).
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a 2-D (P, n_atoms) array")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    if np.any(arr < 0):
        raise ValidationError(f"{name} must be non-negative")
    return arr


def check_batch_shapes(
    cost: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    names: Tuple[str, str] = ("weights_a", "weights_b"),
) -> Tuple[np.ndarray, int]:
    """Validate a batched transport problem's cost/weights geometry.

    ``weights_a`` and ``weights_b`` must already be validated 2-D rows
    (see :func:`check_weight_rows`); ``names`` labels them in error
    messages.  Returns the cost as a float array together with the pair
    count ``P``.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim not in (2, 3):
        raise ValidationError("cost must have shape (K, L) or (P, K, L)")
    n_pairs = weights_a.shape[0]
    if weights_b.shape[0] != n_pairs:
        raise ValidationError(
            f"{names[0]} has {n_pairs} rows but {names[1]} has {weights_b.shape[0]}"
        )
    expected = (weights_a.shape[1], weights_b.shape[1])
    if cost.shape[-2:] != expected:
        raise ValidationError(
            f"cost has shape {cost.shape}, expected trailing dimensions {expected}"
        )
    if cost.ndim == 3 and cost.shape[0] != n_pairs:
        raise ValidationError(
            f"per-pair cost has {cost.shape[0]} matrices for {n_pairs} pairs"
        )
    return cost, n_pairs


def logsumexp(values: np.ndarray, axis: int, *, overwrite_input: bool = False) -> np.ndarray:
    """Stabilised ``log(sum(exp(values)))`` reduced over ``axis``.

    Unlike the naive shift-by-max formulation, slices consisting entirely
    of ``-inf`` (atoms carrying zero mass in the log domain) are handled
    explicitly and reduce to ``-inf`` instead of propagating ``NaN`` from
    the indeterminate ``-inf - (-inf)`` shift — no runtime warnings are
    emitted either way.

    ``overwrite_input=True`` lets the reduction clobber ``values`` as
    scratch space, sparing the batched solver one tensor-sized temporary
    per call; the computed result is identical.
    """
    values = np.asarray(values, dtype=float)
    maximum = np.max(values, axis=axis, keepdims=True)
    # An all--inf slice has maximum -inf; shifting by it would produce
    # NaN, so pin the shift to zero there and let log(sum) = log(0) give
    # the correct -inf below.
    safe_max = np.where(np.isfinite(maximum), maximum, 0.0)
    # asarray above guarantees a float64 ndarray, so in-place is safe.
    if overwrite_input:
        shifted = np.subtract(values, safe_max, out=values)
    else:
        shifted = values - safe_max
    np.exp(shifted, out=shifted)
    total = np.sum(shifted, axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        np.log(total, out=total)
    return np.squeeze(safe_max + total, axis=axis)
