"""Shared numerical kernels for the transportation solvers.

The scalar and the batched Sinkhorn solvers both run log-domain matrix
scaling, whose inner loop is a stabilised log-sum-exp reduction.  They
must share one implementation: the batched solver's parity guarantee
(batched distances match the per-pair solver to within float rounding)
relies on both paths performing bitwise-identical reductions.
"""

from __future__ import annotations

import numpy as np


def logsumexp(values: np.ndarray, axis: int, *, overwrite_input: bool = False) -> np.ndarray:
    """Stabilised ``log(sum(exp(values)))`` reduced over ``axis``.

    Unlike the naive shift-by-max formulation, slices consisting entirely
    of ``-inf`` (atoms carrying zero mass in the log domain) are handled
    explicitly and reduce to ``-inf`` instead of propagating ``NaN`` from
    the indeterminate ``-inf - (-inf)`` shift — no runtime warnings are
    emitted either way.

    ``overwrite_input=True`` lets the reduction clobber ``values`` as
    scratch space, sparing the batched solver one tensor-sized temporary
    per call; the computed result is identical.
    """
    values = np.asarray(values, dtype=float)
    maximum = np.max(values, axis=axis, keepdims=True)
    # An all--inf slice has maximum -inf; shifting by it would produce
    # NaN, so pin the shift to zero there and let log(sum) = log(0) give
    # the correct -inf below.
    safe_max = np.where(np.isfinite(maximum), maximum, 0.0)
    # asarray above guarantees a float64 ndarray, so in-place is safe.
    if overwrite_input:
        shifted = np.subtract(values, safe_max, out=values)
    else:
        shifted = values - safe_max
    np.exp(shifted, out=shifted)
    total = np.sum(shifted, axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        np.log(total, out=total)
    return np.squeeze(safe_max + total, axis=axis)
