"""Single source of truth for solver and execution backend names.

Every layer that accepts a backend string — :func:`repro.emd.emd`,
:class:`~repro.emd.batch.PairwiseEMDEngine`,
:class:`~repro.core.config.DetectorConfig`, the sharding runner and the
CLI — validates against the tuples defined here, and the static layer
leans on the matching :data:`typing.Literal` types so that an invalid
backend string is a *type* error long before it can become a runtime
:class:`~repro.exceptions.ConfigurationError`.

``EMD_SOLVERS`` is the one permitted literal listing of solver names in
the codebase (reprolint rule RL001 enforces that everything else
references or derives from it); mypy checks each member against
``EMDSolverName``, and ``tests/test_reprolint.py`` asserts the tuple is
*exhaustive* over the ``Literal`` and that the derived subsets partition
it.
"""

from __future__ import annotations

from typing import Final, Literal, Tuple, get_args

#: Every solver backend understood by :class:`PairwiseEMDEngine`.
EMDSolverName = Literal["auto", "linprog", "linprog_batch", "simplex", "sinkhorn_batch"]

#: The exact per-pair solvers accepted by :func:`repro.emd.emd`.
PairwiseSolverName = Literal["auto", "linprog", "simplex"]

#: The multi-pair solvers that stack support groups into one solve.
BatchedSolverName = Literal["linprog_batch", "sinkhorn_batch"]

#: How :class:`PairwiseEMDEngine` executes batches of pair solves.
ParallelBackendName = Literal["serial", "thread", "process"]

#: How :class:`repro.emd.sharding.ShardRunner` executes pending shards.
ShardModeName = Literal["serial", "process"]

#: How the orchestrated band build treats pairs that exhausted their
#: poison-pair rescue budget: refuse the degraded band or warn and
#: return it with the quarantined entries masked.
PoisonPolicyName = Literal["strict", "degraded"]

#: Solver backends understood by :class:`PairwiseEMDEngine`: the exact
#: per-pair solvers, the block-diagonal batched exact LP and the batched
#: entropic approximation.  The canonical registry — compare and list
#: backend names against this tuple, never re-list them.
EMD_SOLVERS: Final[Tuple[EMDSolverName, ...]] = (
    "auto",
    "linprog",
    "linprog_batch",
    "simplex",
    "sinkhorn_batch",
)

#: The per-pair exact subset of :data:`EMD_SOLVERS`.
PAIRWISE_SOLVERS: Final[Tuple[PairwiseSolverName, ...]] = get_args(PairwiseSolverName)

#: The multi-pair subset of :data:`EMD_SOLVERS`.
BATCHED_SOLVERS: Final[Tuple[BatchedSolverName, ...]] = get_args(BatchedSolverName)

#: Executor choices for the engine's pair batches.
PARALLEL_BACKENDS: Final[Tuple[ParallelBackendName, ...]] = get_args(ParallelBackendName)

#: Execution modes of the sharded band builder.
SHARD_MODES: Final[Tuple[ShardModeName, ...]] = get_args(ShardModeName)

#: Quarantine policies of the fault-tolerant shard orchestrator.
POISON_POLICIES: Final[Tuple[PoisonPolicyName, ...]] = get_args(PoisonPolicyName)
