"""Ground distances between signature representatives.

The Earth Mover's Distance is parameterised by a *ground distance*
``d_kl`` giving the dissimilarity between representative ``u_k`` of one
signature and ``v_l`` of the other (paper Section 3.2).  This module
provides the standard choices (Euclidean, squared Euclidean, Manhattan,
Chebyshev) plus support for arbitrary callables, and computes full cross
distance matrices in a vectorised way.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np
from scipy.spatial.distance import cdist

from .._validation import check_matrix, check_same_dimension
from ..exceptions import ConfigurationError

GroundDistance = Union[str, Callable[[np.ndarray, np.ndarray], np.ndarray]]

#: Built-in ground-distance names accepted wherever a :data:`GroundDistance`
#: string is expected (``"manhattan"`` is an alias for ``"cityblock"``).
GROUND_DISTANCES = ("euclidean", "sqeuclidean", "cityblock", "manhattan", "chebyshev")

_NAMED = GROUND_DISTANCES


def euclidean_cross_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``a`` and rows of ``b``.

    Uses :func:`scipy.spatial.distance.cdist`, which computes coordinate
    differences directly and therefore keeps the distance of a point to
    itself at exactly zero (the Gram-matrix shortcut loses that property to
    cancellation for points far from the origin).
    """
    return cdist(a, b, metric="euclidean")


def squared_euclidean_cross_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``a`` and ``b``."""
    return cdist(a, b, metric="sqeuclidean")


def manhattan_cross_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise L1 (city-block) distances between rows of ``a`` and ``b``."""
    return cdist(a, b, metric="cityblock")


def chebyshev_cross_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise L-infinity distances between rows of ``a`` and ``b``."""
    return cdist(a, b, metric="chebyshev")


def resolve_ground_distance(
    metric: GroundDistance,
) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Resolve a metric name or callable into a cross-distance function.

    A callable must accept two arrays of shapes ``(K, d)`` and ``(L, d)``
    and return a ``(K, L)`` matrix of non-negative dissimilarities.
    """
    if callable(metric):
        return metric
    name = str(metric).lower()
    if name == "euclidean":
        return euclidean_cross_distance
    if name == "sqeuclidean":
        return squared_euclidean_cross_distance
    if name in ("cityblock", "manhattan"):
        return manhattan_cross_distance
    if name == "chebyshev":
        return chebyshev_cross_distance
    raise ConfigurationError(
        f"unknown ground distance {metric!r}; expected a callable or one of {_NAMED}"
    )


def cross_distance_matrix(
    positions_a: np.ndarray,
    positions_b: np.ndarray,
    metric: GroundDistance = "euclidean",
) -> np.ndarray:
    """Compute the ``(K, L)`` ground-distance matrix between two position sets."""
    a = check_matrix(positions_a, "positions_a")
    b = check_matrix(positions_b, "positions_b")
    check_same_dimension(a, b, "positions_a", "positions_b")
    func = resolve_ground_distance(metric)
    dist = np.asarray(func(a, b), dtype=float)
    if dist.shape != (a.shape[0], b.shape[0]):
        raise ConfigurationError(
            "ground distance callable returned an array of shape "
            f"{dist.shape}, expected {(a.shape[0], b.shape[0])}"
        )
    if np.any(dist < 0):
        raise ConfigurationError("ground distances must be non-negative")
    return dist
