"""Pairwise EMD matrices over sequences of signatures, with caching.

The detector repeatedly needs EMD values between signatures in sliding
reference/test windows; neighbouring windows overlap heavily, so pairwise
distances are cached keyed on the signature labels (or object identity)
to avoid recomputation as the window slides.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from ..signatures import Signature
from .distance import emd
from .ground_distance import GroundDistance


def emd_matrix(
    signatures: Sequence[Signature],
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: str = "auto",
) -> np.ndarray:
    """Symmetric matrix of pairwise EMD values between signatures.

    This is the matrix visualised in the left panels of the paper's Fig. 6.
    """
    n = len(signatures)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            value = emd(
                signatures[i],
                signatures[j],
                ground_distance=ground_distance,
                backend=backend,
            )
            matrix[i, j] = matrix[j, i] = value
    return matrix


def cross_emd_matrix(
    signatures_a: Sequence[Signature],
    signatures_b: Sequence[Signature],
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: str = "auto",
) -> np.ndarray:
    """Rectangular matrix of EMD values between two signature sequences."""
    matrix = np.zeros((len(signatures_a), len(signatures_b)), dtype=float)
    for i, sig_a in enumerate(signatures_a):
        for j, sig_b in enumerate(signatures_b):
            matrix[i, j] = emd(
                sig_a, sig_b, ground_distance=ground_distance, backend=backend
            )
    return matrix


class EMDCache:
    """Memoising wrapper around :func:`repro.emd.emd`.

    Distances are cached under an unordered pair of keys.  By default the
    key of a signature is its ``label`` when set and hashable, falling back
    to the object's ``id``; an explicit key can also be supplied.
    """

    def __init__(
        self,
        *,
        ground_distance: GroundDistance = "euclidean",
        backend: str = "auto",
    ):
        self.ground_distance = ground_distance
        self.backend = backend
        self._cache: Dict[Tuple[Hashable, Hashable], float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key_of(sig: Signature, explicit: Optional[Hashable]) -> Hashable:
        if explicit is not None:
            return explicit
        label = sig.label
        if label is not None:
            try:
                hash(label)
                return label
            except TypeError:
                pass
        return id(sig)

    def distance(
        self,
        sig_a: Signature,
        sig_b: Signature,
        *,
        key_a: Optional[Hashable] = None,
        key_b: Optional[Hashable] = None,
    ) -> float:
        """Return ``EMD(sig_a, sig_b)``, computing it only on a cache miss."""
        ka = self._key_of(sig_a, key_a)
        kb = self._key_of(sig_b, key_b)
        cache_key = (ka, kb) if repr(ka) <= repr(kb) else (kb, ka)
        if cache_key in self._cache:
            self.hits += 1
            return self._cache[cache_key]
        self.misses += 1
        value = emd(
            sig_a, sig_b, ground_distance=self.ground_distance, backend=self.backend
        )
        self._cache[cache_key] = value
        return value

    def matrix(self, signatures: Sequence[Signature]) -> np.ndarray:
        """Pairwise matrix using (and filling) the cache."""
        n = len(signatures)
        out = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = out[j, i] = self.distance(signatures[i], signatures[j])
        return out

    def clear(self) -> None:
        """Drop all cached distances and reset hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)
