"""Earth Mover's Distance LP backend based on :func:`scipy.optimize.linprog`.

This backend encodes the paper's transportation problem (Eqs. 7-11)
directly as a linear program with inequality supply/demand constraints and
an equality constraint fixing the total flow to the smaller total mass,
then solves it with the HiGHS solver shipped with SciPy.  It is the
default backend because HiGHS is fast and numerically robust; the
from-scratch transportation simplex in
:mod:`repro.emd.transportation` serves as an independent cross-check.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..exceptions import SolverError
from .transportation import TransportPlan, _validate_inputs


def solve_emd_linprog(
    cost: np.ndarray,
    supply: np.ndarray,
    demand: np.ndarray,
) -> TransportPlan:
    """Solve the EMD transportation problem with SciPy's HiGHS LP solver.

    Parameters
    ----------
    cost:
        Ground-distance matrix of shape ``(m, n)``.
    supply:
        Signature weights of the first signature (length ``m``).
    demand:
        Signature weights of the second signature (length ``n``).

    Returns
    -------
    TransportPlan
        Optimal flow matrix, its total cost and the total mass moved,
        which equals ``min(supply.sum(), demand.sum())`` per paper Eq. 11.
    """
    cost, supply, demand = _validate_inputs(cost, supply, demand)
    m, n = cost.shape
    total_flow_target = float(min(supply.sum(), demand.sum()))
    if total_flow_target <= 0:
        return TransportPlan(flow=np.zeros((m, n)), cost=0.0, total_flow=0.0)

    # Variables are the m*n flows f_kl, flattened row-major.
    c = cost.ravel()

    # Row (supply) constraints: sum_l f_kl <= supply_k.
    row_idx = np.repeat(np.arange(m), n)
    col_idx = np.arange(m * n)
    a_supply = sparse.csr_matrix((np.ones(m * n), (row_idx, col_idx)), shape=(m, m * n))

    # Column (demand) constraints: sum_k f_kl <= demand_l.
    row_idx = np.tile(np.arange(n), m)
    a_demand = sparse.csr_matrix((np.ones(m * n), (row_idx, col_idx)), shape=(n, m * n))

    a_ub = sparse.vstack([a_supply, a_demand]).tocsr()
    b_ub = np.concatenate([supply, demand])

    # Total-flow equality constraint (Eq. 11).
    a_eq = sparse.csr_matrix(np.ones((1, m * n)))
    b_eq = np.array([total_flow_target])

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"linprog failed to solve the EMD LP: {result.message}")

    flow = np.asarray(result.x, dtype=float).reshape(m, n)
    flow = np.clip(flow, 0.0, None)
    total_flow = float(flow.sum())
    return TransportPlan(flow=flow, cost=float(np.sum(flow * cost)), total_flow=total_flow)
