"""Tensor-batched entropic-regularised transport (Sinkhorn) solver.

:func:`repro.emd.sinkhorn.sinkhorn_transport` solves one transportation
problem per call; on histogram-signature workloads the detector needs
thousands of solves over the *same* ground-cost matrix, and the per-call
Python and small-array numpy overhead dominates the actual arithmetic.
This module stacks ``P`` same-support problems into a single ``(P, K, L)``
log-domain Sinkhorn iteration:

* one shared ``(K, L)`` cost kernel per common-support group (a per-pair
  ``(P, K, L)`` cost tensor is also accepted for irregular batches);
* per-pair dual potentials ``f (P, K)`` and ``g (P, L)``;
* per-pair unit-free epsilon scaling — each pair's regularisation is
  ``epsilon`` times the median positive ground cost *restricted to its
  support*, exactly matching what the scalar solver computes after it
  drops zero-weight atoms;
* per-pair early exit — pairs whose row-marginal violation drops below
  the tolerance at a convergence check are frozen and compacted out of
  the batch, so a few slow pairs never make the whole batch iterate;
* optional epsilon annealing — a decreasing schedule of epsilons solved
  in sequence with warm-started duals, converging to the exact EMD much
  faster than a cold start at the final epsilon.

Zero-weight atoms are kept in place (their log weights are ``-inf``,
which the shared :func:`~repro.emd.numerics.logsumexp` reduces exactly),
so signatures with different occupancy patterns can be embedded into one
common support grid and solved in a single batch.  Because ``exp(-inf)``
is exactly ``0.0``, the batched iterates are bitwise identical to the
scalar solver's reduced-support iterates, which is what the parity tests
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import SolverError, ValidationError
from .numerics import check_batch_shapes, check_weight_rows, logsumexp

# Cap on the number of elements of the (P, K, L) iteration tensor; larger
# batches are split along P so memory stays bounded (~32 MB per temp).
_MAX_BATCH_ELEMENTS = 4_000_000


@dataclass(frozen=True)
class SinkhornBatchResult:
    """Result of a batched Sinkhorn computation over ``P`` pairs.

    Attributes
    ----------
    distances:
        ``(P,)`` sharp Sinkhorn distances ``<P_p, C>`` under the original
        ground cost.
    iterations:
        ``(P,)`` number of scaling iterations each pair ran (summed over
        annealing stages).
    converged:
        ``(P,)`` whether each pair's row-marginal violation dropped below
        the tolerance (in the final annealing stage).
    marginal_errors:
        ``(P,)`` L1 marginal violation (row + column) of the returned
        plans — the actual accuracy achieved, useful for judging
        non-converged pairs (``tol`` can sit below the float rounding
        floor of a problem without the distances being off).
    plans:
        Optional ``(P, K, L)`` transport plans, only materialised when
        ``return_plans=True``.
    """

    distances: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    marginal_errors: np.ndarray
    plans: Optional[np.ndarray] = None


def _check_weight_rows(weights: np.ndarray, name: str) -> np.ndarray:
    """Shared row validation plus the balanced solver's normalisation."""
    arr = check_weight_rows(weights, name)
    totals = arr.sum(axis=1)
    if np.any(totals <= 0):
        raise ValidationError(f"every row of {name} must have positive total mass")
    return arr / totals[:, None]


def _epsilon_schedule(epsilon: Union[float, Sequence[float]]) -> Tuple[float, ...]:
    if np.ndim(epsilon) == 0:
        schedule = (float(epsilon),)
    else:
        schedule = tuple(float(e) for e in np.asarray(epsilon, dtype=float).ravel())
    if not schedule:
        raise ValidationError("epsilon schedule must not be empty")
    if any(not np.isfinite(e) or e <= 0 for e in schedule):
        raise ValidationError("epsilon must be positive and finite")
    return schedule


def _pair_cost_scales(cost: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Median positive ground cost restricted to each pair's support.

    Matches the scalar solver, which computes the median *after* dropping
    zero-weight atoms; pairs with full support share one median per cost
    matrix, so the common case costs a single pass.
    """
    n_pairs = a.shape[0]
    scales = np.empty(n_pairs, dtype=float)
    full = (a > 0).all(axis=1) & (b > 0).all(axis=1)
    shared_scale: Optional[float] = None
    for p in range(n_pairs):
        matrix = cost if cost.ndim == 2 else cost[p]
        if full[p]:
            if cost.ndim == 3:
                positive = matrix[matrix > 0]
                scales[p] = float(np.median(positive)) if positive.size else 1.0
                continue
            if shared_scale is None:
                positive = matrix[matrix > 0]
                shared_scale = float(np.median(positive)) if positive.size else 1.0
            scales[p] = shared_scale
        else:
            sub = matrix[np.ix_(a[p] > 0, b[p] > 0)]
            positive = sub[sub > 0]
            scales[p] = float(np.median(positive)) if positive.size else 1.0
    return scales


def _log_weights(weights: np.ndarray) -> np.ndarray:
    out = np.full(weights.shape, -np.inf, dtype=float)
    positive = weights > 0
    out[positive] = np.log(weights[positive])
    return out


def _run_stage(
    cost: np.ndarray,
    a: np.ndarray,
    log_a: np.ndarray,
    log_b: np.ndarray,
    reg: np.ndarray,
    f: np.ndarray,
    g: np.ndarray,
    *,
    max_iter: int,
    tol: float,
    check_every: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One epsilon stage of batched scaling with per-pair early exit.

    Converged pairs are compacted out of the working arrays at each
    convergence check, so the iteration tensor shrinks as the batch
    drains.  The row reduction computed to *check* an iterate is the same
    one the next row update needs, so checks reuse it instead of paying
    an extra tensor pass; all tensor-sized intermediates live in one
    preallocated scratch buffer.  Returns final duals ``(F, G)`` plus
    per-pair iteration counts and convergence flags.
    """
    n_pairs, n_rows = a.shape
    n_cols = log_b.shape[1]
    final_f = np.array(f)
    final_g = np.array(g)
    iterations = np.zeros(n_pairs, dtype=int)
    converged = np.zeros(n_pairs, dtype=bool)

    active = np.arange(n_pairs)
    shared_kernel = cost.ndim == 2 and bool(np.all(reg == reg[0]))
    if shared_kernel:
        kernel = -cost / reg[0]
    elif cost.ndim == 2:
        kernel = -cost[None, :, :] / reg[:, None, None]
    else:
        kernel = -cost / reg[:, None, None]

    a_w, log_a_w, log_b_w, reg_w = a, log_a, log_b, reg
    f_w, g_w = np.array(f), np.array(g)
    scratch = np.empty((n_pairs, n_rows, n_cols), dtype=float)

    iteration = 0
    while active.size:
        # Row reduction for the current g — used both to check the
        # iterate completed at `iteration` and for the next f update.
        view = scratch[: active.size]
        np.add(kernel, (g_w / reg_w[:, None])[:, None, :], out=view)
        lse_rows = logsumexp(view, axis=2, overwrite_input=True)

        if iteration and (iteration % check_every == 0 or iteration == max_iter):
            # Column marginals are exact after the g update; the row
            # violation is read off the duals without building the plans.
            row_marginal = np.exp(f_w / reg_w[:, None] + lse_rows)
            errors = np.abs(row_marginal - a_w).sum(axis=1)
            done = errors < tol
            if done.any():
                finished = active[done]
                final_f[finished] = f_w[done]
                final_g[finished] = g_w[done]
                iterations[finished] = iteration
                converged[finished] = True
                keep = ~done
                active = active[keep]
                a_w, log_a_w, log_b_w = a_w[keep], log_a_w[keep], log_b_w[keep]
                reg_w, f_w, g_w = reg_w[keep], f_w[keep], g_w[keep]
                lse_rows = lse_rows[keep]
                if not shared_kernel:
                    kernel = kernel[keep]
                if not active.size:
                    break
        if iteration == max_iter:
            break
        iteration += 1
        f_w = reg_w[:, None] * (log_a_w - lse_rows)
        view = scratch[: active.size]
        np.add(kernel, (f_w / reg_w[:, None])[:, :, None], out=view)
        g_w = reg_w[:, None] * (log_b_w - logsumexp(view, axis=1, overwrite_input=True))

    if active.size:
        final_f[active] = f_w
        final_g[active] = g_w
        iterations[active] = iteration
    return final_f, final_g, iterations, converged


def sinkhorn_transport_batch(
    cost: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    *,
    epsilon: Union[float, Sequence[float]] = 0.05,
    max_iter: int = 2000,
    tol: float = 1e-9,
    check_every: int = 10,
    return_plans: bool = False,
    max_batch_elements: int = _MAX_BATCH_ELEMENTS,
) -> SinkhornBatchResult:
    """Solve ``P`` entropic transport problems in one batched iteration.

    Parameters
    ----------
    cost:
        Ground-cost matrix of shape ``(K, L)`` shared by every pair (the
        common-support case), or per-pair costs of shape ``(P, K, L)``.
    weights_a, weights_b:
        ``(P, K)`` and ``(P, L)`` non-negative weights; each row is
        normalised to a probability vector.  Zero entries are allowed —
        they mark atoms absent from that pair's support (e.g. unoccupied
        histogram bins after embedding into a common grid) and receive
        exactly zero mass in the plan.
    epsilon:
        Regularisation strength, unit-free (scaled per pair by the median
        positive cost on the pair's support).  A decreasing sequence
        requests epsilon annealing: each stage is solved with the duals
        warm-started from the previous one, and the reported distance is
        that of the final (smallest) epsilon.
    max_iter:
        Maximum scaling iterations per annealing stage.
    tol:
        L1 tolerance on the row-marginal violation.
    check_every:
        Convergence-check cadence, as in the scalar solver.
    return_plans:
        Also materialise the ``(P, K, L)`` transport plans.
    max_batch_elements:
        Split the batch along ``P`` whenever ``P * K * L`` exceeds this,
        bounding peak memory without changing any result.
    """
    a = _check_weight_rows(weights_a, "weights_a")
    b = _check_weight_rows(weights_b, "weights_b")
    cost, n_pairs = check_batch_shapes(cost, a, b)
    expected = (a.shape[1], b.shape[1])
    schedule = _epsilon_schedule(epsilon)
    max_iter = check_positive_int(max_iter, "max_iter")
    check_every = check_positive_int(check_every, "check_every")

    n_rows, n_cols = expected
    if n_pairs == 0:
        return SinkhornBatchResult(
            distances=np.empty(0),
            iterations=np.empty(0, dtype=int),
            converged=np.empty(0, dtype=bool),
            marginal_errors=np.empty(0),
            plans=np.empty((0, n_rows, n_cols)) if return_plans else None,
        )

    # Memory cap: recurse on chunks of pairs; results are independent.
    if n_pairs > 1 and n_pairs * n_rows * n_cols > max_batch_elements:
        chunk = max(1, max_batch_elements // (n_rows * n_cols))
        parts = []
        for start in range(0, n_pairs, chunk):
            try:
                parts.append(
                    sinkhorn_transport_batch(
                        cost if cost.ndim == 2 else cost[start : start + chunk],
                        a[start : start + chunk],
                        b[start : start + chunk],
                        epsilon=schedule,
                        max_iter=max_iter,
                        tol=tol,
                        check_every=check_every,
                        return_plans=return_plans,
                        max_batch_elements=max_batch_elements,
                    )
                )
            except SolverError as exc:
                if exc.pair_indices is None:
                    raise
                # Chunk-local pair indices -> whole-batch pair indices.
                indices = [start + i for i in exc.pair_indices]
                raise SolverError(
                    f"{exc} (whole-batch pair indices {indices})",
                    pair_indices=indices,
                ) from exc
        return SinkhornBatchResult(
            distances=np.concatenate([part.distances for part in parts]),
            iterations=np.concatenate([part.iterations for part in parts]),
            converged=np.concatenate([part.converged for part in parts]),
            marginal_errors=np.concatenate([part.marginal_errors for part in parts]),
            plans=(
                np.concatenate([part.plans for part in parts])
                if return_plans
                else None
            ),
        )

    scales = np.maximum(_pair_cost_scales(cost, a, b), 1e-12)
    log_a = _log_weights(a)
    log_b = _log_weights(b)

    f = np.zeros_like(a)
    g = np.zeros_like(b)
    total_iterations = np.zeros(n_pairs, dtype=int)
    converged = np.zeros(n_pairs, dtype=bool)
    reg = scales  # overwritten per stage below
    for eps in schedule:
        reg = eps * scales
        f, g, stage_iterations, converged = _run_stage(
            cost, a, log_a, log_b, reg, f, g,
            max_iter=max_iter, tol=tol, check_every=check_every,
        )
        total_iterations += stage_iterations

    # Final plans and sharp distances under the original ground cost.
    reg_col = reg[:, None]
    log_plan = (
        -(cost if cost.ndim == 3 else cost[None, :, :]) / reg[:, None, None]
        + (f / reg_col)[:, :, None]
        + (g / reg_col)[:, None, :]
    )
    plan = np.exp(log_plan)
    if not np.all(np.isfinite(plan)):
        bad = np.flatnonzero(~np.isfinite(plan).all(axis=(1, 2)))
        raise SolverError(
            f"Sinkhorn iterations diverged for batch pairs {bad.tolist()}; "
            "increase epsilon",
            pair_indices=bad,
        )
    if cost.ndim == 3:
        distances = (plan * cost).sum(axis=(1, 2))
    else:
        distances = (plan * cost[None, :, :]).sum(axis=(1, 2))
    marginal_errors = np.abs(plan.sum(axis=2) - a).sum(axis=1)
    marginal_errors += np.abs(plan.sum(axis=1) - b).sum(axis=1)
    return SinkhornBatchResult(
        distances=distances,
        iterations=total_iterations,
        converged=converged,
        marginal_errors=marginal_errors,
        plans=plan if return_plans else None,
    )
