"""Exact closed-form Earth Mover's Distance for one-dimensional signatures.

For 1-D data with equal total masses the EMD coincides with the first
Wasserstein (Mallows) distance, which has a closed form as the L1 distance
between the quantile functions (equivalently between the cumulative
distribution functions).  This is dramatically cheaper than solving the
transportation LP and is used as a fast path and as an oracle in tests.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_vector, check_weights


def wasserstein_1d(
    positions_a: np.ndarray,
    weights_a: np.ndarray,
    positions_b: np.ndarray,
    weights_b: np.ndarray,
) -> float:
    """First Wasserstein distance between two weighted 1-D point sets.

    Both weight vectors are normalised to total mass one, so the result
    equals the paper's EMD (Eq. 12) whenever the two signatures carry equal
    total mass, and equals the normalised-mass EMD otherwise.

    Parameters
    ----------
    positions_a, positions_b:
        1-D arrays of support points.
    weights_a, weights_b:
        Non-negative masses associated with each support point.

    Returns
    -------
    float
        The distance ``∫ |F_a^{-1}(q) - F_b^{-1}(q)| dq``.
    """
    xa = check_vector(positions_a, "positions_a")
    xb = check_vector(positions_b, "positions_b")
    wa = check_weights(weights_a, "weights_a", normalize=True)
    wb = check_weights(weights_b, "weights_b", normalize=True)
    if xa.shape != wa.shape or xb.shape != wb.shape:
        raise ValueError("positions and weights must have matching shapes")

    order_a = np.argsort(xa, kind="stable")
    order_b = np.argsort(xb, kind="stable")
    xa, wa = xa[order_a], wa[order_a]
    xb, wb = xb[order_b], wb[order_b]

    # Merge the two supports and integrate |F_a - F_b| over each segment.
    all_x = np.concatenate([xa, xb])
    all_x.sort(kind="stable")
    deltas = np.diff(all_x)

    cdf_a = np.searchsorted(xa, all_x[:-1], side="right")
    cdf_b = np.searchsorted(xb, all_x[:-1], side="right")
    cum_a = np.concatenate([[0.0], np.cumsum(wa)])
    cum_b = np.concatenate([[0.0], np.cumsum(wb)])
    fa = cum_a[cdf_a]
    fb = cum_b[cdf_b]
    return float(np.sum(np.abs(fa - fb) * deltas))


def emd_1d_histograms(counts_a: np.ndarray, counts_b: np.ndarray, bin_width: float = 1.0) -> float:
    """EMD between two histograms sharing the same equally-spaced bins.

    Both histograms are normalised; the distance is ``bin_width`` times the
    L1 distance between their cumulative sums, a classical identity used
    for fast histogram comparison.
    """
    ca = check_weights(counts_a, "counts_a", normalize=True)
    cb = check_weights(counts_b, "counts_b", normalize=True)
    if ca.shape != cb.shape:
        raise ValueError("histograms must have the same number of bins")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    return float(bin_width * np.sum(np.abs(np.cumsum(ca) - np.cumsum(cb))[:-1])) if ca.size > 1 else 0.0
