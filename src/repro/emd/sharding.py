"""Sharded construction of the banded pairwise-EMD matrix.

The detector needs every EMD inside a width-(τ + τ′) band of the bag
sequence.  PRs 1–4 made each solve cheap; this module makes the *band
build itself* divisible: the band's pair set is partitioned into
contiguous row-blocks, each block is executed independently (in a local
process pool, or on another machine entirely), progress is checkpointed
per block, and the blocks are reassembled into a
:class:`~repro.emd.batch.BandedDistanceMatrix` identical to the
single-process build.  Three pieces:

* :class:`ShardPlan` — partitions the band into ``n_shards`` contiguous
  row-blocks, balanced by pair count.  A shard *owns* every pair
  ``(i, j)`` whose smaller index ``i`` falls in its row range, so each
  pair lands in exactly one shard; because ``j`` can reach up to
  ``bandwidth − 1`` rows past ``i``, the shard additionally needs a
  *halo* of up to ``bandwidth − 1`` signature rows beyond its range
  (read-only — halo pairs are owned by the next shard).
* :class:`ShardRunner` — executes a plan's shards through any
  :class:`~repro.emd.batch.PairwiseEMDEngine` backend.  In
  ``mode="process"`` the signature arrays are placed in
  :mod:`multiprocessing.shared_memory` *once* and each worker attaches
  to them at start-up, so jobs carry only a shard id instead of pickled
  signatures, and the per-pair-LP fallback for irregular supports runs
  on truly parallel processes instead of GIL-bound threads.  With a
  ``checkpoint_dir``, every finished shard is written as an ``.npz``
  stamped with the plan hash and an engine-config fingerprint;
  re-running after a crash recomputes only the missing shards and
  refuses (:class:`~repro.exceptions.CheckpointError`) to merge
  checkpoints produced under a different plan or solver configuration.
* :func:`merge_shards` — reassembles per-shard value vectors into the
  banded matrix.  Every backend solves each pair deterministically and
  independently of how pairs are batched, so the merged band equals the
  single-process build to float equality (tested at 1e-12).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import (
    CheckpointError,
    ConfigurationError,
    SolverError,
    ValidationError,
)
from ..signatures import Signature
from .batch import (
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    band_pair_counts,
    band_pair_indices,
)
from .ground_distance import GroundDistance
from .registry import EMD_SOLVERS, SHARD_MODES, EMDSolverName, ShardModeName

#: Version stamp written into every shard checkpoint; bump on layout
#: changes so old files are rejected instead of misread.  v2 added the
#: payload ``checksum`` entry (sha256 over the value bytes) so silent
#: on-disk corruption — truncation survives the zip CRC only in theory,
#: bit flips inside a stored-uncompressed member do not — is detected
#: before a corrupt shard can reach :func:`merge_shards`.
CHECKPOINT_FORMAT_VERSION = 2


def _values_checksum(values: np.ndarray) -> str:
    """sha256 over the exact float64 payload bytes of one shard."""
    return hashlib.sha256(np.ascontiguousarray(values, dtype=float).tobytes()).hexdigest()


# ---------------------------------------------------------------------- #
# Engine settings (picklable engine recipe + config fingerprint)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineSettings:
    """Picklable recipe for the :class:`PairwiseEMDEngine` a shard runs.

    Shard workers (possibly in other processes, possibly days later when
    resuming from checkpoints) must build an engine that computes the
    *same* distances, so the solver-relevant knobs are captured here and
    hashed into the checkpoint fingerprint.  Parallelism knobs are
    deliberately absent: inside a shard the engine always runs serially
    (the sharding layer owns the parallelism), and they do not change
    any distance.
    """

    ground_distance: GroundDistance = "euclidean"
    backend: EMDSolverName = "auto"
    sinkhorn_epsilon: float = 0.05
    sinkhorn_max_iter: int = 2000
    sinkhorn_tol: float = 1e-9
    sinkhorn_anneal: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.backend not in EMD_SOLVERS:
            raise ConfigurationError(
                f"backend must be one of {EMD_SOLVERS}, got {self.backend!r}"
            )
        if self.sinkhorn_anneal is not None:
            object.__setattr__(
                self, "sinkhorn_anneal", tuple(float(e) for e in self.sinkhorn_anneal)
            )

    @classmethod
    def from_config(cls, config) -> "EngineSettings":
        """Extract the engine recipe from a ``DetectorConfig``-like object."""
        anneal = getattr(config, "sinkhorn_anneal", None)
        return cls(
            ground_distance=config.ground_distance,
            backend=config.emd_backend,
            sinkhorn_epsilon=config.sinkhorn_epsilon,
            sinkhorn_max_iter=config.sinkhorn_max_iter,
            sinkhorn_tol=getattr(config, "sinkhorn_tol", 1e-9),
            sinkhorn_anneal=None if anneal is None else tuple(anneal),
        )

    def make_engine(self) -> PairwiseEMDEngine:
        """A serial engine with these solver settings (validates them)."""
        return PairwiseEMDEngine(
            ground_distance=self.ground_distance,
            backend=self.backend,
            parallel_backend="serial",
            sinkhorn_epsilon=self.sinkhorn_epsilon,
            sinkhorn_max_iter=self.sinkhorn_max_iter,
            sinkhorn_tol=self.sinkhorn_tol,
            sinkhorn_anneal=self.sinkhorn_anneal,
        )

    def fingerprint(self) -> str:
        """Stable hash of everything that changes a computed distance.

        A callable ground distance hashes by its qualified name — the
        best available identity; renaming the function (or passing a
        lambda with the same name but different body) is on the caller.
        """
        gd = self.ground_distance
        if not isinstance(gd, str):
            gd = f"callable:{getattr(gd, '__module__', '?')}.{getattr(gd, '__qualname__', repr(gd))}"
        payload = "|".join(
            (
                f"v{CHECKPOINT_FORMAT_VERSION}",
                f"ground_distance={gd}",
                f"backend={self.backend}",
                f"sinkhorn_epsilon={self.sinkhorn_epsilon!r}",
                f"sinkhorn_max_iter={self.sinkhorn_max_iter}",
                f"sinkhorn_tol={self.sinkhorn_tol!r}",
                f"sinkhorn_anneal={self.sinkhorn_anneal!r}",
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------- #
# Shard planning
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSpec:
    """One contiguous row-block of the band.

    Attributes
    ----------
    shard_id:
        Position of the shard in the plan (0-based).
    row_start, row_stop:
        The rows this shard *owns*: it computes every band pair
        ``(i, j)`` with ``row_start <= i < row_stop``.
    halo_stop:
        One past the last signature row the shard *reads*:
        ``min(n, row_stop + bandwidth − 1)``.  Rows in
        ``[row_stop, halo_stop)`` are the halo — needed as the ``j``
        side of owned pairs but themselves owned by a later shard.
    n_pairs:
        Number of pairs the shard owns (its checkpoint length).
    """

    shard_id: int
    row_start: int
    row_stop: int
    halo_stop: int
    n_pairs: int


class ShardPlan:
    """Partition of the band's pair set into contiguous row-blocks.

    Every band pair ``(i, j)`` (``i < j < i + bandwidth``) is owned by
    exactly one shard — the one whose row range contains ``i`` — so the
    shards' pair sets are disjoint and their union is the full band.
    :meth:`build` balances the row boundaries by pair count; the number
    of shards is capped at the number of rows that own at least one
    pair, so degenerate requests (``n_shards > n_rows``) quietly yield
    fewer, non-empty shards.
    """

    def __init__(self, n: int, bandwidth: int, row_bounds: Sequence[int]) -> None:
        self._n = check_positive_int(n, "n")
        self._bandwidth = check_positive_int(bandwidth, "bandwidth", minimum=2)
        bounds = [int(b) for b in row_bounds]
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != self._n:
            raise ValidationError(
                f"row_bounds must run from 0 to n={self._n}, got {bounds}"
            )
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValidationError(f"row_bounds must be strictly increasing, got {bounds}")
        self._bounds = tuple(bounds)
        counts = band_pair_counts(self._n, self._bandwidth)
        cum = np.concatenate(([0], np.cumsum(counts)))
        self._shards = tuple(
            ShardSpec(
                shard_id=s,
                row_start=lo,
                row_stop=hi,
                halo_stop=min(self._n, hi + self._bandwidth - 1),
                n_pairs=int(cum[hi] - cum[lo]),
            )
            for s, (lo, hi) in enumerate(zip(self._bounds, self._bounds[1:]))
        )

    @classmethod
    def build(cls, n: int, bandwidth: int, n_shards: int) -> "ShardPlan":
        """Balanced plan: row boundaries chosen so shards own ~equal pairs."""
        n = check_positive_int(n, "n")
        bandwidth = check_positive_int(bandwidth, "bandwidth", minimum=2)
        n_shards = check_positive_int(n_shards, "n_shards")
        counts = band_pair_counts(n, bandwidth)
        rows_with_pairs = int(np.count_nonzero(counts))
        k = max(1, min(n_shards, rows_with_pairs))
        cum = np.cumsum(counts)
        total = int(cum[-1]) if counts.size else 0
        if total == 0 or k == 1:
            return cls(n, bandwidth, (0, n))
        targets = total * np.arange(1, k) / k
        interior = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.unique(np.concatenate(([0], interior, [n])))
        return cls(n, bandwidth, bounds.tolist())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of signatures (rows of the banded matrix)."""
        return self._n

    @property
    def bandwidth(self) -> int:
        """Band width τ + τ′: offsets ``1 … bandwidth − 1`` are stored."""
        return self._bandwidth

    @property
    def n_shards(self) -> int:
        """Number of shards actually planned (≤ the requested count)."""
        return len(self._shards)

    @property
    def shards(self) -> Tuple[ShardSpec, ...]:
        """The shard specs, in row order."""
        return self._shards

    @property
    def n_pairs(self) -> int:
        """Total band pairs across all shards."""
        return sum(spec.n_pairs for spec in self._shards)

    @property
    def row_bounds(self) -> Tuple[int, ...]:
        """The ``n_shards + 1`` row boundaries."""
        return self._bounds

    def shard(self, shard_id: int) -> ShardSpec:
        """The spec of one shard (raises on unknown ids)."""
        if not 0 <= shard_id < len(self._shards):
            raise ValidationError(
                f"shard_id must lie in [0, {len(self._shards)}), got {shard_id}"
            )
        return self._shards[shard_id]

    def pair_indices(self, shard_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global ``(i, j)`` pairs owned by one shard, in canonical order.

        The order matches the full-band enumeration restricted to the
        shard's rows, which is also the order of its checkpoint values.
        """
        spec = self.shard(shard_id)
        return band_pair_indices(self._n, self._bandwidth, spec.row_start, spec.row_stop)

    def plan_hash(self) -> str:
        """Stable hash of the geometry (n, bandwidth, row boundaries)."""
        payload = (
            f"v{CHECKPOINT_FORMAT_VERSION}|n={self._n}|bandwidth={self._bandwidth}"
            f"|bounds={','.join(map(str, self._bounds))}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardPlan(n={self._n}, bandwidth={self._bandwidth}, "
            f"n_shards={self.n_shards}, n_pairs={self.n_pairs})"
        )


# ---------------------------------------------------------------------- #
# Checkpoints
# ---------------------------------------------------------------------- #
def checkpoint_path(directory: Union[str, Path], shard_id: int) -> Path:
    """Canonical checkpoint file for one shard."""
    return Path(directory) / f"shard_{shard_id:05d}.npz"


def save_shard_checkpoint(
    directory: Union[str, Path],
    plan: ShardPlan,
    shard_id: int,
    values: np.ndarray,
    fingerprint: str,
) -> Path:
    """Atomically write one shard's values, stamped for safe resumes.

    The payload lands in a temporary file first and is renamed into
    place, so a kill mid-write leaves no half-written checkpoint under
    the canonical name.
    """
    spec = plan.shard(shard_id)
    values = np.asarray(values, dtype=float)
    if values.shape != (spec.n_pairs,):
        raise ValidationError(
            f"shard {shard_id} expects {spec.n_pairs} values, got shape {values.shape}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, shard_id)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".shard_{shard_id:05d}.", suffix=".tmp.npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                format_version=np.array(CHECKPOINT_FORMAT_VERSION),
                plan_hash=np.array(plan.plan_hash()),
                fingerprint=np.array(fingerprint),
                shard_id=np.array(spec.shard_id),
                row_start=np.array(spec.row_start),
                row_stop=np.array(spec.row_stop),
                checksum=np.array(_values_checksum(values)),
                values=values,
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_shard_checkpoint(
    directory: Union[str, Path],
    plan: ShardPlan,
    shard_id: int,
    fingerprint: str,
) -> Optional[np.ndarray]:
    """One shard's checkpointed values, or ``None`` when not yet written.

    Raises :class:`~repro.exceptions.CheckpointError` when a file exists
    but is unreadable or *stale* — produced under a different shard plan
    or engine configuration.  Stale checkpoints are never silently
    recomputed: mixing them into a merge would be wrong, and recomputing
    behind the caller's back would hide that the directory holds results
    for a different run.
    """
    spec = plan.shard(shard_id)
    path = checkpoint_path(directory, shard_id)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            plan_hash = str(archive["plan_hash"])
            stamp = str(archive["fingerprint"])
            checksum = str(archive["checksum"])
            values = np.asarray(archive["values"], dtype=float)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, "
            f"expected {CHECKPOINT_FORMAT_VERSION}; clear the checkpoint directory"
        )
    if plan_hash != plan.plan_hash():
        raise CheckpointError(
            f"checkpoint {path} was written for a different shard plan: "
            f"expected plan hash {plan.plan_hash()}, found {plan_hash}; "
            "clear the checkpoint directory or rebuild with the original "
            "n/bandwidth/n_shards"
        )
    if stamp != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was computed under a different engine "
            f"configuration: expected fingerprint {fingerprint}, found "
            f"{stamp}; clear the checkpoint directory or restore the "
            "original solver settings"
        )
    if values.shape != (spec.n_pairs,):
        raise CheckpointError(
            f"checkpoint {path} holds {values.shape} values, "
            f"shard {shard_id} owns {spec.n_pairs} pairs"
        )
    found_checksum = _values_checksum(values)
    if checksum != found_checksum:
        raise CheckpointError(
            f"checkpoint {path} is corrupt: expected payload checksum "
            f"{checksum}, found {found_checksum}; delete the file and "
            "recompute the shard"
        )
    return values


# ---------------------------------------------------------------------- #
# Merging
# ---------------------------------------------------------------------- #
def merge_shards(
    plan: ShardPlan, shard_values: Mapping[int, np.ndarray]
) -> BandedDistanceMatrix:
    """Reassemble per-shard value vectors into the banded matrix.

    ``shard_values`` maps every shard id of the plan to the values of
    its owned pairs, in the order of :meth:`ShardPlan.pair_indices`.
    Because the shards partition the band, the result carries exactly
    one write per band entry and equals the single-process build.
    """
    missing = [spec.shard_id for spec in plan.shards if spec.shard_id not in shard_values]
    if missing:
        raise ValidationError(f"missing values for shards {missing}")
    banded = BandedDistanceMatrix(plan.n, plan.bandwidth)
    for spec in plan.shards:
        rows, cols = plan.pair_indices(spec.shard_id)
        values = np.asarray(shard_values[spec.shard_id], dtype=float)
        if values.shape != (spec.n_pairs,):
            raise ValidationError(
                f"shard {spec.shard_id} expects {spec.n_pairs} values, "
                f"got shape {values.shape}"
            )
        banded.set_pairs(rows, cols, values)
    return banded


# ---------------------------------------------------------------------- #
# Shared-memory signature store (process mode)
# ---------------------------------------------------------------------- #
def _pack_signatures(
    signatures: Sequence[Signature],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten signatures into (offsets, positions, weights) arrays."""
    dims = {sig.dimension for sig in signatures}
    if len(dims) > 1:
        raise ValidationError(f"signatures mix dimensions {sorted(dims)}")
    sizes = np.fromiter((sig.size for sig in signatures), dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    positions = np.concatenate([np.asarray(sig.positions, dtype=float) for sig in signatures])
    weights = np.concatenate([np.asarray(sig.weights, dtype=float) for sig in signatures])
    return offsets, positions, weights


class _SharedSignatureStore:
    """Parent-side owner of the shared-memory signature buffers.

    The three flat arrays are copied into ``multiprocessing.shared_memory``
    blocks exactly once; workers attach by name at pool start-up, so a
    shard job pickles nothing but a few integers.

    Shared-memory segments outlive the process that created them (they
    are files under ``/dev/shm``), so every exit path — including a
    partial construction failure and a worker dying mid-shard — must
    unlink them explicitly or the host slowly fills with orphaned
    segments.  Construction therefore cleans up the blocks it already
    created when a later allocation fails, and :meth:`close` is
    idempotent so callers can keep it in a ``finally``.
    """

    def __init__(self, signatures: Sequence[Signature]) -> None:
        from multiprocessing import shared_memory

        offsets, positions, weights = _pack_signatures(signatures)
        self._blocks = []
        self.meta: Dict[str, Tuple[str, tuple, str]] = {}
        try:
            for name, array in (
                ("offsets", offsets),
                ("positions", positions),
                ("weights", weights),
            ):
                block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
                self._blocks.append(block)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
                view[...] = array
                self.meta[name] = (block.name, array.shape, array.dtype.str)
        except BaseException:
            # A partial construction (e.g. /dev/shm exhausted on the
            # third block) must not leak the blocks already created.
            self.close()
            raise

    def close(self) -> None:
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._blocks = []


# Per-worker state, populated once by the pool initializer: attached
# shared-memory blocks, reconstructed array views, and a lazily created
# serial engine reused across all shards the worker executes.
_worker_state: dict = {}


def _shard_worker_init(meta: dict, settings: EngineSettings, n: int, bandwidth: int) -> None:
    from multiprocessing import shared_memory

    arrays = {}
    blocks = []
    try:
        for name, (shm_name, shape, dtype) in meta.items():
            block = shared_memory.SharedMemory(name=shm_name)
            blocks.append(block)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
    except BaseException:
        # Detach any blocks this worker already mapped; the parent-side
        # store still owns the segments and will unlink them.
        for block in blocks:
            try:
                block.close()
            except OSError:  # pragma: no cover - already detached
                pass
        raise
    _worker_state.clear()
    _worker_state.update(
        arrays=arrays,
        blocks=blocks,  # keep references so the buffers stay mapped
        settings=settings,
        n=n,
        bandwidth=bandwidth,
        engine=None,
    )


def _signatures_from_arrays(
    arrays: Mapping[str, np.ndarray], row_start: int, row_stop: int
) -> Dict[int, Signature]:
    """Reconstruct the signatures for rows ``[row_start, row_stop)``.

    ``Signature`` copies its inputs on construction, so the returned
    objects own their data and the shared buffers can be detached
    independently.
    """
    offsets = arrays["offsets"]
    positions = arrays["positions"]
    weights = arrays["weights"]
    return {
        r: Signature(
            positions=positions[offsets[r] : offsets[r + 1]],
            weights=weights[offsets[r] : offsets[r + 1]],
            label=r,
        )
        for r in range(row_start, row_stop)
    }


def _compute_shard_values(
    engine: PairwiseEMDEngine,
    signatures: Mapping[int, Signature],
    plan: ShardPlan,
    shard_id: int,
) -> np.ndarray:
    """One shard's distances, with shard context attached to failures."""
    spec = plan.shard(shard_id)
    rows, cols = plan.pair_indices(shard_id)
    pairs = [(signatures[i], signatures[j]) for i, j in zip(rows.tolist(), cols.tolist())]
    try:
        return engine.compute_pairs(pairs)
    except SolverError as exc:
        raise SolverError(
            f"{exc} [while computing shard {shard_id}, "
            f"rows [{spec.row_start}, {spec.row_stop}) of {plan.n}]",
            pair_indices=exc.pair_indices,
            shard_id=shard_id,
            shard_rows=(spec.row_start, spec.row_stop),
        ) from exc


def _shard_worker_run(task: Tuple[int, tuple]) -> Tuple[int, np.ndarray]:
    shard_id, row_bounds = task
    state = _worker_state
    plan = ShardPlan(state["n"], state["bandwidth"], row_bounds)
    spec = plan.shard(shard_id)
    signatures = _signatures_from_arrays(
        state["arrays"], spec.row_start, spec.halo_stop
    )
    if state["engine"] is None:
        state["engine"] = state["settings"].make_engine()
    return shard_id, _compute_shard_values(state["engine"], signatures, plan, shard_id)


# ---------------------------------------------------------------------- #
# The runner
# ---------------------------------------------------------------------- #
class ShardRunner:
    """Executes a :class:`ShardPlan` and merges the result.

    Parameters
    ----------
    plan:
        The shard plan (fixes n, bandwidth and the row boundaries).
    settings:
        The :class:`EngineSettings` every shard solves under; defaults
        to the engine defaults.
    mode:
        ``"process"`` (default) executes pending shards on a process
        pool with the signatures in shared memory; ``"serial"`` runs
        them sequentially in-process (still checkpointable — useful for
        resumable single-machine builds and for tests).  Process mode
        falls back to serial, with a warning, when pools or shared
        memory are unavailable, and runs serially anyway when only one
        shard is pending or one worker is available.
    n_workers:
        Process-pool size; defaults to the CPU count.
    checkpoint_dir:
        When set, finished shards are written here as ``shard_*.npz``
        and :meth:`run` resumes by loading every valid checkpoint
        instead of recomputing it.

    Attributes
    ----------
    n_shards_computed, n_shards_resumed:
        After :meth:`run`: how many shards were solved this call vs
        loaded from checkpoints.
    """

    def __init__(
        self,
        plan: ShardPlan,
        settings: Optional[EngineSettings] = None,
        *,
        mode: ShardModeName = "process",
        n_workers: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if mode not in SHARD_MODES:
            raise ConfigurationError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
        if n_workers is not None:
            n_workers = check_positive_int(n_workers, "n_workers")
        self.plan = plan
        self.settings = settings if settings is not None else EngineSettings()
        self.settings.make_engine().close()  # validate the recipe eagerly
        self.mode = mode
        self.n_workers = n_workers
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.n_shards_computed = 0
        self.n_shards_resumed = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, signatures: Sequence[Signature]) -> BandedDistanceMatrix:
        """Compute (or resume) every shard and merge the band."""
        self._check_signatures(signatures)
        self.n_shards_computed = 0
        self.n_shards_resumed = 0
        fingerprint = self.settings.fingerprint()
        values: Dict[int, np.ndarray] = {}
        pending: List[int] = []
        for spec in self.plan.shards:
            loaded = None
            if self.checkpoint_dir is not None:
                loaded = load_shard_checkpoint(
                    self.checkpoint_dir, self.plan, spec.shard_id, fingerprint
                )
            if loaded is None:
                pending.append(spec.shard_id)
            else:
                values[spec.shard_id] = loaded
                self.n_shards_resumed += 1
        if pending:
            values.update(self._execute(signatures, pending, fingerprint))
            self.n_shards_computed += len(pending)
        return merge_shards(self.plan, values)

    def run_shard(self, signatures: Sequence[Signature], shard_id: int) -> np.ndarray:
        """Compute one shard in-process (checkpointing it when configured).

        The building block for external drivers that spread shards over
        several machines: each machine runs its shard ids against the
        same plan/settings and ships the checkpoint files to one place
        for the final :meth:`run` (which then merely loads and merges).
        """
        self._check_signatures(signatures)
        fingerprint = self.settings.fingerprint()
        return self._execute_serial(signatures, [shard_id], fingerprint)[shard_id]

    # ------------------------------------------------------------------ #
    # Execution backends
    # ------------------------------------------------------------------ #
    def _check_signatures(self, signatures: Sequence[Signature]) -> None:
        if len(signatures) != self.plan.n:
            raise ValidationError(
                f"plan covers {self.plan.n} signatures, got {len(signatures)}"
            )

    def _effective_workers(self) -> int:
        return self.n_workers or os.cpu_count() or 1

    def _checkpoint(self, shard_id: int, values: np.ndarray, fingerprint: str) -> None:
        """Persist one finished shard immediately (kill-resume depends on it)."""
        if self.checkpoint_dir is not None:
            save_shard_checkpoint(
                self.checkpoint_dir, self.plan, shard_id, values, fingerprint
            )

    def _execute(
        self, signatures: Sequence[Signature], shard_ids: List[int], fingerprint: str
    ) -> Dict[int, np.ndarray]:
        workers = min(self._effective_workers(), len(shard_ids))
        if self.mode == "serial" or workers <= 1:
            return self._execute_serial(signatures, shard_ids, fingerprint)
        try:
            return self._execute_process(signatures, shard_ids, workers, fingerprint)
        except (OSError, ValueError, ImportError, RuntimeError) as exc:
            if isinstance(exc, (SolverError, CheckpointError)):
                raise
            # No /dev/shm, forbidden fork, broken pool, ...: the serial
            # path computes the identical result, so degrade gracefully.
            warnings.warn(
                f"process-mode shard execution unavailable ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._execute_serial(signatures, shard_ids, fingerprint)

    def _execute_serial(
        self, signatures: Sequence[Signature], shard_ids: List[int], fingerprint: str
    ) -> Dict[int, np.ndarray]:
        by_row = dict(enumerate(signatures))
        results: Dict[int, np.ndarray] = {}
        with self.settings.make_engine() as engine:
            for shard_id in shard_ids:
                shard_values = _compute_shard_values(engine, by_row, self.plan, shard_id)
                # Checkpoint each shard as it finishes, not at the end of
                # the run: a kill (or a solver failure in a later shard)
                # must not discard the shards already solved.
                self._checkpoint(shard_id, shard_values, fingerprint)
                results[shard_id] = shard_values
        return results

    def _execute_process(
        self,
        signatures: Sequence[Signature],
        shard_ids: List[int],
        workers: int,
        fingerprint: str,
    ) -> Dict[int, np.ndarray]:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        store = _SharedSignatureStore(signatures)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_shard_worker_init,
                initargs=(store.meta, self.settings, self.plan.n, self.plan.bandwidth),
            ) as pool:
                futures = [
                    pool.submit(_shard_worker_run, (shard_id, self.plan.row_bounds))
                    for shard_id in shard_ids
                ]
                results: Dict[int, np.ndarray] = {}
                # Checkpoint in completion order so finished shards are
                # durable even if a later one fails or the run is killed.
                for future in as_completed(futures):
                    shard_id, shard_values = future.result()
                    self._checkpoint(shard_id, shard_values, fingerprint)
                    results[shard_id] = shard_values
                return results
        finally:
            store.close()


def sharded_banded_matrix(
    signatures: Sequence[Signature],
    bandwidth: int,
    n_shards: int,
    *,
    settings: Optional[EngineSettings] = None,
    mode: ShardModeName = "process",
    n_workers: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> BandedDistanceMatrix:
    """Convenience wrapper: plan, run and merge in one call."""
    plan = ShardPlan.build(len(signatures), bandwidth, n_shards)
    runner = ShardRunner(
        plan,
        settings,
        mode=mode,
        n_workers=n_workers,
        checkpoint_dir=checkpoint_dir,
    )
    return runner.run(signatures)
