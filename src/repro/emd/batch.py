"""Banded pairwise-EMD storage and a batched distance engine.

The detector only ever reads EMD values between signatures ``i`` and ``j``
with ``|i − j| < τ + τ′`` (they can share a reference/test window only
inside that band), so materialising a dense ``n × n`` matrix wastes both
memory and — far worse — ``O(n²)`` transportation solves.  This module
provides the two pieces the detectors build on instead:

* :class:`BandedDistanceMatrix` — stores only the ``O(n · (τ + τ′))``
  band of the symmetric pairwise matrix, with windowed views for the
  score computation and a dense export for Fig.-6-style plots;
* :class:`PairwiseEMDEngine` — computes batches of signature pairs,
  vectorising the exact 1-D fast path across all eligible pairs at once
  and optionally farming the remaining transportation solves out to a
  thread or process pool.  The pool is created lazily and persists
  across :meth:`~PairwiseEMDEngine.compute_pairs` calls (use
  :meth:`~PairwiseEMDEngine.close` or a ``with`` block to release it),
  and ground-distance matrices are cached for signature pairs that share
  a common support — histogram-signature batches solve many LPs over one
  cost matrix instead of rebuilding it per pair.
"""

from __future__ import annotations

import os
import pickle
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ConfigurationError, ReproError, ValidationError
from ..signatures import Signature
from .distance import _can_use_1d_fast_path, emd
from .ground_distance import GroundDistance, cross_distance_matrix
from .linprog_backend import solve_emd_linprog
from .transportation import solve_unbalanced_transportation

PARALLEL_BACKENDS = ("serial", "thread", "process")


class BandedDistanceMatrix:
    """Symmetric ``n × n`` distance matrix stored only inside a band.

    Entries ``(i, j)`` with ``0 < |i − j| < bandwidth`` are stored (the
    diagonal is implicitly zero); anything further from the diagonal is
    *out of band* and reading or writing it raises
    :class:`~repro.exceptions.ValidationError`.  Storage is an
    ``(n, bandwidth − 1)`` array where column ``k`` holds the distances at
    offset ``k + 1`` from the diagonal.
    """

    def __init__(self, n: int, bandwidth: int):
        self._n = check_positive_int(n, "n")
        self._bandwidth = check_positive_int(bandwidth, "bandwidth", minimum=2)
        self._band = np.full((self._n, self._bandwidth - 1), np.nan, dtype=float)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of signatures (rows/columns of the virtual matrix)."""
        return self._n

    @property
    def bandwidth(self) -> int:
        """Band half-width + 1: offsets ``1 … bandwidth − 1`` are stored."""
        return self._bandwidth

    @property
    def band(self) -> np.ndarray:
        """The raw ``(n, bandwidth − 1)`` band storage (read-only view)."""
        view = self._band.view()
        view.setflags(write=False)
        return view

    @property
    def nbytes(self) -> int:
        """Bytes used by the band storage."""
        return int(self._band.nbytes)

    def in_band(self, i: int, j: int) -> bool:
        """Whether entry ``(i, j)`` is stored (or is the implicit diagonal)."""
        if not (0 <= i < self._n and 0 <= j < self._n):
            return False
        return abs(i - j) < self._bandwidth

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All stored index pairs ``(i, j)`` with ``i < j``, row-major."""
        for i in range(self._n):
            for j in range(i + 1, min(self._n, i + self._bandwidth)):
                yield i, j

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def _check_indices(self, i: int, j: int) -> None:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ValidationError(
                f"index ({i}, {j}) out of range for a {self._n} x {self._n} matrix"
            )
        if abs(i - j) >= self._bandwidth:
            raise ValidationError(
                f"entry ({i}, {j}) lies outside the band of width {self._bandwidth}"
            )

    def __getitem__(self, key: Tuple[int, int]) -> float:
        i, j = key
        self._check_indices(i, j)
        if i == j:
            return 0.0
        lo, hi = (i, j) if i < j else (j, i)
        return float(self._band[lo, hi - lo - 1])

    def __setitem__(self, key: Tuple[int, int], value: float) -> None:
        i, j = key
        self._check_indices(i, j)
        if i == j:
            raise ValidationError("diagonal entries are fixed at zero")
        lo, hi = (i, j) if i < j else (j, i)
        self._band[lo, hi - lo - 1] = float(value)

    # ------------------------------------------------------------------ #
    # Block access
    # ------------------------------------------------------------------ #
    def block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Dense sub-matrix for the given row/column indices.

        Every requested entry must lie inside the band; sliding windows of
        total length ``τ + τ′ ≤ bandwidth`` always satisfy this.
        """
        r = np.asarray(rows, dtype=int)
        c = np.asarray(cols, dtype=int)
        if r.size == 0 or c.size == 0:
            return np.zeros((r.size, c.size), dtype=float)
        if r.min() < 0 or r.max() >= self._n or c.min() < 0 or c.max() >= self._n:
            raise ValidationError("block indices out of range")
        i = r[:, None]
        j = c[None, :]
        offset = np.abs(i - j)
        if np.any(offset >= self._bandwidth):
            raise ValidationError(
                f"block reaches outside the band of width {self._bandwidth}"
            )
        lo = np.minimum(i, j)
        values = self._band[lo, np.maximum(offset, 1) - 1]
        return np.where(offset == 0, 0.0, values)

    def window(
        self, start: int, n_ref: int, n_test: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three window blocks for an inspection point.

        Returns ``(ref_pairwise, test_pairwise, cross)`` for the reference
        window ``[start, start + n_ref)`` and the test window
        ``[start + n_ref, start + n_ref + n_test)``.
        """
        ref_idx = np.arange(start, start + n_ref)
        test_idx = np.arange(start + n_ref, start + n_ref + n_test)
        return (
            self.block(ref_idx, ref_idx),
            self.block(test_idx, test_idx),
            self.block(ref_idx, test_idx),
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Full symmetric ``n × n`` matrix; entries outside the band are zero.

        Unfilled in-band entries export as zero as well, matching the
        dense-matrix convention used by the Fig. 6 plots.
        """
        dense = np.zeros((self._n, self._n), dtype=float)
        for offset in range(1, min(self._bandwidth, self._n)):
            column = self._band[: self._n - offset, offset - 1]
            values = np.where(np.isnan(column), 0.0, column)
            rows = np.arange(self._n - offset)
            dense[rows, rows + offset] = values
            dense[rows + offset, rows] = values
        return dense

    @classmethod
    def from_dense(cls, matrix: np.ndarray, bandwidth: int) -> "BandedDistanceMatrix":
        """Extract the band of an existing dense symmetric matrix.

        Copies one super-diagonal of ``matrix`` per band offset (the
        mirror image of :meth:`to_dense`) rather than assigning the
        O(n·bandwidth) entries one pair at a time.
        """
        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValidationError("matrix must be square")
        banded = cls(dense.shape[0], bandwidth)
        n = dense.shape[0]
        for offset in range(1, min(banded.bandwidth, n)):
            banded._band[: n - offset, offset - 1] = np.diagonal(dense, offset)
        return banded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BandedDistanceMatrix(n={self._n}, bandwidth={self._bandwidth})"


# ---------------------------------------------------------------------- #
# Batched 1-D fast path
# ---------------------------------------------------------------------- #
def _batched_wasserstein_1d(pairs: Sequence[Tuple[Signature, Signature]]) -> np.ndarray:
    """Exact 1-D Wasserstein distance for many signature pairs at once.

    Same quantile-function integral as
    :func:`repro.emd.one_dimensional.wasserstein_1d`, vectorised across
    pairs: supports are padded (with zero-weight repeats of the last
    position, which add only zero-length segments), merged by one batched
    stable sort, and the CDF gap is integrated with row-wise cumulative
    sums.
    """
    n_pairs = len(pairs)
    size_a = max(sig_a.size for sig_a, _ in pairs)
    size_b = max(sig_b.size for _, sig_b in pairs)
    xa = np.empty((n_pairs, size_a))
    wa = np.zeros((n_pairs, size_a))
    xb = np.empty((n_pairs, size_b))
    wb = np.zeros((n_pairs, size_b))
    for p, (sig_a, sig_b) in enumerate(pairs):
        ka, kb = sig_a.size, sig_b.size
        xa[p, :ka] = sig_a.positions[:, 0]
        xa[p, ka:] = sig_a.positions[-1, 0]
        wa[p, :ka] = sig_a.weights / sig_a.total_weight
        xb[p, :kb] = sig_b.positions[:, 0]
        xb[p, kb:] = sig_b.positions[-1, 0]
        wb[p, :kb] = sig_b.weights / sig_b.total_weight

    all_x = np.concatenate([xa, xb], axis=1)
    sorter = np.argsort(all_x, axis=1, kind="stable")
    sorted_x = np.take_along_axis(all_x, sorter, axis=1)
    deltas = np.diff(sorted_x, axis=1)

    wa_ext = np.concatenate([wa, np.zeros_like(wb)], axis=1)
    wb_ext = np.concatenate([np.zeros_like(wa), wb], axis=1)
    cdf_a = np.cumsum(np.take_along_axis(wa_ext, sorter, axis=1), axis=1)[:, :-1]
    cdf_b = np.cumsum(np.take_along_axis(wb_ext, sorter, axis=1), axis=1)[:, :-1]
    return np.sum(np.abs(cdf_a - cdf_b) * deltas, axis=1)


def _emd_pair(
    args: Tuple[Signature, Signature, GroundDistance, str, Optional[np.ndarray]]
) -> float:
    """Top-level worker so process pools can pickle the call.

    When a precomputed ground-distance matrix is supplied (pairs sharing a
    common support), the transportation problem is solved directly on it,
    skipping the per-pair cost-matrix build of :func:`repro.emd.emd`.
    """
    sig_a, sig_b, ground_distance, backend, cost_matrix = args
    if cost_matrix is None:
        return emd(sig_a, sig_b, ground_distance=ground_distance, backend=backend)
    if backend == "simplex":
        plan = solve_unbalanced_transportation(cost_matrix, sig_a.weights, sig_b.weights)
    elif backend in ("auto", "linprog"):
        plan = solve_emd_linprog(cost_matrix, sig_a.weights, sig_b.weights)
    else:
        raise ConfigurationError(
            f"backend must be one of ('auto', 'linprog', 'simplex'), got {backend!r}"
        )
    if plan.total_flow <= 0:
        return 0.0
    return float(plan.cost / plan.total_flow)


class PairwiseEMDEngine:
    """Computes EMD over batches of signature pairs.

    Parameters
    ----------
    ground_distance, backend:
        Forwarded to :func:`repro.emd.emd` for every pair.
    parallel_backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.  Pools only
        engage for pairs that need a transportation solve; the 1-D fast
        path is already vectorised and always runs in-process.
    n_workers:
        Pool size; defaults to the CPU count when a pool backend is
        selected.

    Attributes
    ----------
    n_evaluations:
        Total number of pair distances computed so far (both paths).
    n_fast_path:
        How many of those went through the vectorised 1-D fast path.
    n_cost_cache_hits:
        How many transportation solves reused a cached ground-distance
        matrix (pairs whose signatures share a common support).

    Notes
    -----
    Worker pools are created lazily on the first batch that needs one and
    are *kept alive* across calls, so streaming workloads pay the pool
    start-up cost once instead of per batch.  Call :meth:`close` (or use
    the engine as a context manager) to release the pool; a closed engine
    raises :class:`~repro.exceptions.ConfigurationError` on further use.
    """

    _COST_CACHE_MAX = 64

    def __init__(
        self,
        *,
        ground_distance: GroundDistance = "euclidean",
        backend: str = "auto",
        parallel_backend: str = "serial",
        n_workers: Optional[int] = None,
    ):
        if parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigurationError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, got {parallel_backend!r}"
            )
        if n_workers is not None:
            n_workers = check_positive_int(n_workers, "n_workers")
        self.ground_distance = ground_distance
        self.backend = backend
        self.parallel_backend = parallel_backend
        self.n_workers = n_workers
        self.n_evaluations = 0
        self.n_fast_path = 0
        self.n_cost_cache_hits = 0
        self._pool = None
        self._pool_failed = False
        self._closed = False
        self._cost_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut down the persistent worker pool and mark the engine closed.

        Idempotent; afterwards any distance computation raises
        :class:`~repro.exceptions.ConfigurationError`.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._cost_cache.clear()
        self._closed = True

    def __enter__(self) -> "PairwiseEMDEngine":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "this PairwiseEMDEngine has been closed; create a new engine"
            )

    def _acquire_pool(self):
        """The persistent executor, created on first use; ``None`` → serial."""
        if self._pool is not None:
            return self._pool
        if self._pool_failed:
            return None
        workers = self.n_workers or os.cpu_count() or 1
        if workers <= 1:
            return None
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        pool_cls = ThreadPoolExecutor if self.parallel_backend == "thread" else ProcessPoolExecutor
        try:
            self._pool = pool_cls(max_workers=workers)
        except (OSError, ValueError, RuntimeError, ImportError):
            # Pool creation can fail in restricted environments (no
            # /dev/shm, forbidden fork, ...); the serial path is always
            # available, and we stop retrying for subsequent batches.
            self._pool_failed = True
            return None
        return self._pool

    # ------------------------------------------------------------------ #
    # Ground-distance caching
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shares_support(sig_a: Signature, sig_b: Signature) -> bool:
        pa, pb = sig_a.positions, sig_b.positions
        return pa is pb or (pa.shape == pb.shape and np.array_equal(pa, pb))

    def _cached_cost(self, sig_a: Signature, sig_b: Signature) -> Optional[np.ndarray]:
        """Ground-distance matrix for common-support pairs, built once.

        Histogram-signature batches share one positions grid across every
        bag, so all their LP solves can run against a single cost matrix
        instead of recomputing cdist per pair.
        """
        if not self._shares_support(sig_a, sig_b):
            return None
        positions = sig_a.positions
        key = (positions.shape, positions.tobytes())
        cost = self._cost_cache.get(key)
        if cost is not None:
            self.n_cost_cache_hits += 1
            return cost
        cost = cross_distance_matrix(positions, sig_b.positions, self.ground_distance)
        if len(self._cost_cache) >= self._COST_CACHE_MAX:
            self._cost_cache.clear()
        self._cost_cache[key] = cost
        return cost

    # ------------------------------------------------------------------ #
    # Pair computation
    # ------------------------------------------------------------------ #
    def compute(self, sig_a: Signature, sig_b: Signature) -> float:
        """Distance for a single pair (counted in the evaluation stats)."""
        return float(self.compute_pairs([(sig_a, sig_b)])[0])

    def _fast_path_eligible(self, sig_a: Signature, sig_b: Signature) -> bool:
        return self.backend == "auto" and _can_use_1d_fast_path(
            sig_a, sig_b, self.ground_distance
        )

    def _solve_general(self, pairs: List[Tuple[Signature, Signature]]) -> List[float]:
        pool = None
        if self.parallel_backend != "serial" and len(pairs) >= 2:
            pool = self._acquire_pool()
        # A cached cost matrix would be pickled into every job of a process
        # pool (per-pair IPC instead of a saving); share the cache whenever
        # execution is actually in-process, let process workers build cdist
        # locally otherwise.
        use_cache = pool is None or self.parallel_backend != "process"
        jobs = [
            (
                a,
                b,
                self.ground_distance,
                self.backend,
                self._cached_cost(a, b) if use_cache else None,
            )
            for a, b in pairs
        ]
        if pool is None:
            return [_emd_pair(job) for job in jobs]
        from concurrent.futures import BrokenExecutor

        try:
            return list(pool.map(_emd_pair, jobs, chunksize=8))
        except (OSError, BrokenExecutor, RuntimeError) as exc:
            # Library errors raised inside _emd_pair (SolverError and
            # friends subclass RuntimeError) are computation failures:
            # propagate them and leave the pool alive.
            if isinstance(exc, ReproError):
                raise
            # The pool itself broke — workers spawn lazily at submit, so
            # "can't start new thread" lands here, not in _acquire_pool.
            # Retire it, stop retrying, and fall back to serial for this
            # and all later batches.
            self._pool_failed = True
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass
            self._pool = None
            return [_emd_pair(job) for job in jobs]
        except (pickle.PicklingError, AttributeError, TypeError):
            if self.parallel_backend != "process":
                # Thread pools never pickle, so these are computation
                # errors; propagate them and leave the pool alive.
                raise
            # Process pools cannot pickle callable ground distances (the
            # pickler raises exactly these types), but a worker computation
            # can raise them too; the pool is healthy either way, so run
            # this batch serially — a genuine computation error re-raises
            # there — and keep the pool for the next batch.
            return [_emd_pair(job) for job in jobs]

    def compute_pairs(self, pairs: Sequence[Tuple[Signature, Signature]]) -> np.ndarray:
        """Distances for a batch of pairs, in input order."""
        self._check_open()
        pairs = list(pairs)
        out = np.empty(len(pairs), dtype=float)
        if not pairs:
            return out
        fast = [p for p, (a, b) in enumerate(pairs) if self._fast_path_eligible(a, b)]
        fast_set = set(fast)
        general = [p for p in range(len(pairs)) if p not in fast_set]
        if fast:
            out[fast] = _batched_wasserstein_1d([pairs[p] for p in fast])
        if general:
            out[general] = self._solve_general([pairs[p] for p in general])
        self.n_evaluations += len(pairs)
        self.n_fast_path += len(fast)
        return out

    def distances_from(
        self, signature: Signature, others: Sequence[Signature]
    ) -> np.ndarray:
        """Distances from one signature to each of ``others``."""
        return self.compute_pairs([(signature, other) for other in others])

    # ------------------------------------------------------------------ #
    # Matrix construction
    # ------------------------------------------------------------------ #
    def banded_matrix(
        self, signatures: Sequence[Signature], bandwidth: int
    ) -> BandedDistanceMatrix:
        """Fill the band of the pairwise matrix over a signature sequence."""
        banded = BandedDistanceMatrix(max(len(signatures), 1), bandwidth)
        index_pairs = list(banded.pairs())
        values = self.compute_pairs(
            [(signatures[i], signatures[j]) for i, j in index_pairs]
        )
        if index_pairs:
            ij = np.asarray(index_pairs)
            # All pairs are in-band by construction; write the band
            # storage directly instead of one __setitem__ check per pair.
            banded._band[ij[:, 0], ij[:, 1] - ij[:, 0] - 1] = values
        return banded


def banded_emd_matrix(
    signatures: Sequence[Signature],
    bandwidth: int,
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: str = "auto",
    parallel_backend: str = "serial",
    n_workers: Optional[int] = None,
) -> BandedDistanceMatrix:
    """Convenience wrapper: banded pairwise EMD matrix in one call."""
    engine = PairwiseEMDEngine(
        ground_distance=ground_distance,
        backend=backend,
        parallel_backend=parallel_backend,
        n_workers=n_workers,
    )
    return engine.banded_matrix(signatures, bandwidth)
