"""Banded pairwise-EMD storage and a batched distance engine.

The detector only ever reads EMD values between signatures ``i`` and ``j``
with ``|i − j| < τ + τ′`` (they can share a reference/test window only
inside that band), so materialising a dense ``n × n`` matrix wastes both
memory and — far worse — ``O(n²)`` transportation solves.  This module
provides the two pieces the detectors build on instead:

* :class:`BandedDistanceMatrix` — stores only the ``O(n · (τ + τ′))``
  band of the symmetric pairwise matrix, with windowed views for the
  score computation and a dense export for Fig.-6-style plots;
* :class:`PairwiseEMDEngine` — computes batches of signature pairs,
  vectorising the exact 1-D fast path across all eligible pairs at once
  and optionally farming the remaining transportation solves out to a
  thread or process pool.  The pool is created lazily and persists
  across :meth:`~PairwiseEMDEngine.compute_pairs` calls (use
  :meth:`~PairwiseEMDEngine.close` or a ``with`` block to release it),
  and ground-distance matrices are cached for signature pairs that share
  a common support — histogram-signature batches solve many LPs over one
  cost matrix instead of rebuilding it per pair.

With the batched backends the engine additionally groups pending pairs
by *support signature* (the byte pattern of their positions arrays) and
routes each group through a multi-pair solver over one shared cost
kernel:

* ``backend="sinkhorn_batch"`` — the tensor-batched entropic solver
  :func:`~repro.emd.sinkhorn_batch.sinkhorn_transport_batch`
  (approximate; normalised-mass balanced transport);
* ``backend="linprog_batch"`` — the block-diagonal exact LP
  :func:`~repro.emd.linprog_batch.solve_emd_linprog_batch`, one HiGHS
  call per support group with distances *exactly* equal to per-pair
  :func:`~repro.emd.linprog_backend.solve_emd_linprog`.

Pairs whose two supports differ but overlap on one grid (d-dimensional
histogram signatures with varying bin occupancy) are each embedded into
the union of *their own* two supports with zero-weight atoms — a
pair-local decision, so every pair is routed and solved identically no
matter which other pairs share the batch (the invariant
:mod:`repro.emd.sharding` relies on for exact shard merges) — and pairs
whose unions coincide are stacked into a single batched solve.  Only
genuinely irregular supports fall back to the per-pair LP.  A :class:`~repro.exceptions.SolverError` raised inside
any batched group solve is re-raised with the
:meth:`~PairwiseEMDEngine.compute_pairs` positions of the pairs that
were stacked into the failing group (``SolverError.pair_indices``), so
batching never loses track of which inputs failed.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from concurrent.futures import Executor

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ConfigurationError, ReproError, SolverError, ValidationError
from ..signatures import Signature
from .distance import _can_use_1d_fast_path, emd
from .ground_distance import GroundDistance, cross_distance_matrix
from .linprog_backend import solve_emd_linprog
from .linprog_batch import solve_emd_linprog_batch
from .registry import (
    BATCHED_SOLVERS,
    EMD_SOLVERS,
    PAIRWISE_SOLVERS,
    PARALLEL_BACKENDS,
    EMDSolverName,
    ParallelBackendName,
)
from .sinkhorn_batch import sinkhorn_transport_batch
from .transportation import solve_unbalanced_transportation

__all__ = [
    "EMD_SOLVERS",
    "PARALLEL_BACKENDS",
    "BandedDistanceMatrix",
    "PairwiseEMDEngine",
    "band_pair_counts",
    "band_pair_indices",
    "banded_emd_matrix",
]


def band_pair_counts(n: int, bandwidth: int) -> np.ndarray:
    """Stored band pairs owned by each row.

    ``counts[i] = min(bandwidth − 1, n − 1 − i)`` — row ``i`` owns the
    pairs ``(i, j)`` with ``i < j < min(n, i + bandwidth)``.  Shard
    planners balance row-block partitions on these counts without
    materialising any pairs.
    """
    counts = np.minimum(bandwidth - 1, n - 1 - np.arange(n))
    return np.maximum(counts, 0)


def band_pair_indices(
    n: int, bandwidth: int, row_start: int = 0, row_stop: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Band index pairs ``(i, j)``, ``i < j``, owned by a row range.

    Row-major over rows ``row_start … row_stop − 1``, built without a
    Python double loop; with the default full range this enumerates the
    whole band in the canonical order used by
    :meth:`BandedDistanceMatrix.pair_indices`.
    """
    row_stop = n if row_stop is None else row_stop
    if not 0 <= row_start <= row_stop <= n:
        raise ValidationError(f"row range [{row_start}, {row_stop}) invalid for n={n}")
    rows = np.arange(row_start, row_stop)
    if rows.size == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    counts = np.minimum(bandwidth - 1, n - 1 - rows)
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    i = np.repeat(rows, counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    j = i + 1 + (np.arange(total) - np.repeat(starts, counts))
    return i, j


def _check_anneal(
    anneal: Optional[Sequence[float]], epsilon: float
) -> Optional[Tuple[float, ...]]:
    """Validate an epsilon-annealing prefix against the final epsilon.

    The stages must be finite, positive and strictly decreasing, and
    every stage must stay above the final ``epsilon`` — otherwise the
    "anneal" would heat up, which only wastes the warm start.
    """
    if anneal is None:
        return None
    stages = tuple(float(e) for e in anneal)
    if not stages:
        return None
    if any(not np.isfinite(e) or e <= 0 for e in stages):
        raise ConfigurationError("sinkhorn_anneal stages must be positive and finite")
    schedule = stages + (float(epsilon),)
    if any(a <= b for a, b in zip(schedule, schedule[1:])):
        raise ConfigurationError(
            "sinkhorn_anneal must be strictly decreasing and stay above "
            f"sinkhorn_epsilon={epsilon}; got stages {stages}"
        )
    return stages


class BandedDistanceMatrix:
    """Symmetric ``n × n`` distance matrix stored only inside a band.

    Entries ``(i, j)`` with ``0 < |i − j| < bandwidth`` are stored (the
    diagonal is implicitly zero); anything further from the diagonal is
    *out of band* and reading or writing it raises
    :class:`~repro.exceptions.ValidationError`.  Storage is an
    ``(n, bandwidth − 1)`` array where column ``k`` holds the distances at
    offset ``k + 1`` from the diagonal.
    """

    def __init__(self, n: int, bandwidth: int) -> None:
        self._n = check_positive_int(n, "n")
        self._bandwidth = check_positive_int(bandwidth, "bandwidth", minimum=2)
        self._band = np.full((self._n, self._bandwidth - 1), np.nan, dtype=float)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of signatures (rows/columns of the virtual matrix)."""
        return self._n

    @property
    def bandwidth(self) -> int:
        """Band half-width + 1: offsets ``1 … bandwidth − 1`` are stored."""
        return self._bandwidth

    @property
    def band(self) -> np.ndarray:
        """The raw ``(n, bandwidth − 1)`` band storage (read-only view)."""
        view = self._band.view()
        view.setflags(write=False)
        return view

    @property
    def nbytes(self) -> int:
        """Bytes used by the band storage."""
        return int(self._band.nbytes)

    def in_band(self, i: int, j: int) -> bool:
        """Whether entry ``(i, j)`` is stored (or is the implicit diagonal)."""
        if not (0 <= i < self._n and 0 <= j < self._n):
            return False
        return abs(i - j) < self._bandwidth

    def pair_indices(
        self, row_start: int = 0, row_stop: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stored index pairs as ``(i, j)`` arrays with ``i < j``.

        Row-major (same order as :meth:`pairs`), built without a Python
        double loop: row ``i`` contributes offsets ``1 … counts[i]`` where
        ``counts[i] = min(bandwidth − 1, n − 1 − i)``.  The optional
        ``[row_start, row_stop)`` range restricts the result to pairs
        *owned* by those rows (``i`` in range; ``j`` may reach up to
        ``bandwidth − 1`` rows further) — the slicing primitive shard
        planners partition the band with.
        """
        return band_pair_indices(self._n, self._bandwidth, row_start, row_stop)

    def set_pairs(
        self, rows: np.ndarray, cols: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorised writer: ``self[rows[k], cols[k]] = values[k]``.

        Every pair must be in band and off the diagonal; used by the
        engine's band build and by shard merges, which would otherwise
        pay one ``__setitem__`` bounds check per pair.
        """
        r = np.asarray(rows, dtype=int)
        c = np.asarray(cols, dtype=int)
        v = np.asarray(values, dtype=float)
        if r.shape != c.shape or r.shape != v.shape or r.ndim != 1:
            raise ValidationError("rows, cols and values must be 1-D and equally long")
        if r.size == 0:
            return
        if r.min() < 0 or c.min() < 0 or r.max() >= self._n or c.max() >= self._n:
            raise ValidationError("pair indices out of range")
        lo = np.minimum(r, c)
        hi = np.maximum(r, c)
        offset = hi - lo
        if np.any(offset == 0) or np.any(offset >= self._bandwidth):
            raise ValidationError(
                f"pairs must be off-diagonal and inside the band of width {self._bandwidth}"
            )
        self._band[lo, offset - 1] = v

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All stored index pairs ``(i, j)`` with ``i < j``, row-major.

        Lazy counterpart of :meth:`pair_indices`, kept for callers that
        want Python ints one pair at a time in O(1) memory (vectorised
        consumers should use :meth:`pair_indices` directly).
        """
        for i in range(self._n):
            for j in range(i + 1, min(self._n, i + self._bandwidth)):
                yield i, j

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def _check_indices(self, i: int, j: int) -> None:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ValidationError(
                f"index ({i}, {j}) out of range for a {self._n} x {self._n} matrix"
            )
        if abs(i - j) >= self._bandwidth:
            raise ValidationError(
                f"entry ({i}, {j}) lies outside the band of width {self._bandwidth}"
            )

    def __getitem__(self, key: Tuple[int, int]) -> float:
        i, j = key
        self._check_indices(i, j)
        if i == j:
            return 0.0
        lo, hi = (i, j) if i < j else (j, i)
        return float(self._band[lo, hi - lo - 1])

    def __setitem__(self, key: Tuple[int, int], value: float) -> None:
        i, j = key
        self._check_indices(i, j)
        if i == j:
            raise ValidationError("diagonal entries are fixed at zero")
        lo, hi = (i, j) if i < j else (j, i)
        self._band[lo, hi - lo - 1] = float(value)

    # ------------------------------------------------------------------ #
    # Block access
    # ------------------------------------------------------------------ #
    def block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Dense sub-matrix for the given row/column indices.

        Every requested entry must lie inside the band; sliding windows of
        total length ``τ + τ′ ≤ bandwidth`` always satisfy this.
        """
        r = np.asarray(rows, dtype=int)
        c = np.asarray(cols, dtype=int)
        if r.size == 0 or c.size == 0:
            return np.zeros((r.size, c.size), dtype=float)
        if r.min() < 0 or r.max() >= self._n or c.min() < 0 or c.max() >= self._n:
            raise ValidationError("block indices out of range")
        i = r[:, None]
        j = c[None, :]
        offset = np.abs(i - j)
        if np.any(offset >= self._bandwidth):
            raise ValidationError(
                f"block reaches outside the band of width {self._bandwidth}"
            )
        lo = np.minimum(i, j)
        values = self._band[lo, np.maximum(offset, 1) - 1]
        return np.where(offset == 0, 0.0, values)

    def window(
        self, start: int, n_ref: int, n_test: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three window blocks for an inspection point.

        Returns ``(ref_pairwise, test_pairwise, cross)`` for the reference
        window ``[start, start + n_ref)`` and the test window
        ``[start + n_ref, start + n_ref + n_test)``.
        """
        ref_idx = np.arange(start, start + n_ref)
        test_idx = np.arange(start + n_ref, start + n_ref + n_test)
        return (
            self.block(ref_idx, ref_idx),
            self.block(test_idx, test_idx),
            self.block(ref_idx, test_idx),
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Full symmetric ``n × n`` matrix; entries outside the band are zero.

        Unfilled in-band entries export as zero as well, matching the
        dense-matrix convention used by the Fig. 6 plots.
        """
        dense = np.zeros((self._n, self._n), dtype=float)
        for offset in range(1, min(self._bandwidth, self._n)):
            column = self._band[: self._n - offset, offset - 1]
            values = np.where(np.isnan(column), 0.0, column)
            rows = np.arange(self._n - offset)
            dense[rows, rows + offset] = values
            dense[rows + offset, rows] = values
        return dense

    @classmethod
    def from_dense(cls, matrix: np.ndarray, bandwidth: int) -> "BandedDistanceMatrix":
        """Extract the band of an existing dense symmetric matrix.

        Copies one super-diagonal of ``matrix`` per band offset (the
        mirror image of :meth:`to_dense`) rather than assigning the
        O(n·bandwidth) entries one pair at a time.
        """
        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValidationError("matrix must be square")
        banded = cls(dense.shape[0], bandwidth)
        n = dense.shape[0]
        for offset in range(1, min(banded.bandwidth, n)):
            banded._band[: n - offset, offset - 1] = np.diagonal(dense, offset)
        return banded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BandedDistanceMatrix(n={self._n}, bandwidth={self._bandwidth})"


# ---------------------------------------------------------------------- #
# Batched 1-D fast path
# ---------------------------------------------------------------------- #
def _batched_wasserstein_1d(pairs: Sequence[Tuple[Signature, Signature]]) -> np.ndarray:
    """Exact 1-D Wasserstein distance for many signature pairs at once.

    Same quantile-function integral as
    :func:`repro.emd.one_dimensional.wasserstein_1d`, vectorised across
    pairs: supports are padded (with zero-weight repeats of the last
    position, which add only zero-length segments), merged by one batched
    stable sort, and the CDF gap is integrated with row-wise cumulative
    sums.
    """
    n_pairs = len(pairs)
    size_a = max(sig_a.size for sig_a, _ in pairs)
    size_b = max(sig_b.size for _, sig_b in pairs)
    xa = np.empty((n_pairs, size_a))
    wa = np.zeros((n_pairs, size_a))
    xb = np.empty((n_pairs, size_b))
    wb = np.zeros((n_pairs, size_b))
    for p, (sig_a, sig_b) in enumerate(pairs):
        ka, kb = sig_a.size, sig_b.size
        xa[p, :ka] = sig_a.positions[:, 0]
        xa[p, ka:] = sig_a.positions[-1, 0]
        wa[p, :ka] = sig_a.weights / sig_a.total_weight
        xb[p, :kb] = sig_b.positions[:, 0]
        xb[p, kb:] = sig_b.positions[-1, 0]
        wb[p, :kb] = sig_b.weights / sig_b.total_weight

    all_x = np.concatenate([xa, xb], axis=1)
    sorter = np.argsort(all_x, axis=1, kind="stable")
    sorted_x = np.take_along_axis(all_x, sorter, axis=1)
    deltas = np.diff(sorted_x, axis=1)

    wa_ext = np.concatenate([wa, np.zeros_like(wb)], axis=1)
    wb_ext = np.concatenate([np.zeros_like(wa), wb], axis=1)
    cdf_a = np.cumsum(np.take_along_axis(wa_ext, sorter, axis=1), axis=1)[:, :-1]
    cdf_b = np.cumsum(np.take_along_axis(wb_ext, sorter, axis=1), axis=1)[:, :-1]
    return np.sum(np.abs(cdf_a - cdf_b) * deltas, axis=1)


def _common_support(sig_a: Signature, sig_b: Signature) -> bool:
    """Whether two signatures share the exact same positions array."""
    pa, pb = sig_a.positions, sig_b.positions
    return pa is pb or (pa.shape == pb.shape and np.array_equal(pa, pb))


# Per-worker ground-distance cache for process pools: each worker builds
# the shared common-support cost matrix once on first sight instead of
# the parent shipping it (or the worker rebuilding it) per job.
_WORKER_COST_CACHE_MAX = 64
_worker_cost_cache: Dict[tuple, np.ndarray] = {}


def _emd_pair(
    args: Tuple[Signature, Signature, GroundDistance, str, Optional[np.ndarray], bool]
) -> float:
    """Top-level worker so process pools can pickle the call.

    When a precomputed ground-distance matrix is supplied (pairs sharing a
    common support), the transportation problem is solved directly on it,
    skipping the per-pair cost-matrix build of :func:`repro.emd.emd`.
    With ``use_worker_cache`` (process pools, where shipping the parent's
    cache would cost per-job IPC) common-support matrices are instead
    built once per worker process and reused across jobs.
    """
    sig_a, sig_b, ground_distance, backend, cost_matrix, use_worker_cache = args
    if (
        cost_matrix is None
        and use_worker_cache
        and isinstance(ground_distance, str)
        and _common_support(sig_a, sig_b)
    ):
        positions = sig_a.positions
        key = (ground_distance, positions.shape, positions.tobytes())
        cost_matrix = _worker_cost_cache.get(key)
        if cost_matrix is None:
            cost_matrix = cross_distance_matrix(
                positions, sig_b.positions, ground_distance
            )
            if len(_worker_cost_cache) >= _WORKER_COST_CACHE_MAX:
                _worker_cost_cache.clear()
            _worker_cost_cache[key] = cost_matrix
    if cost_matrix is None:
        return emd(sig_a, sig_b, ground_distance=ground_distance, backend=backend)
    if backend == "simplex":
        plan = solve_unbalanced_transportation(cost_matrix, sig_a.weights, sig_b.weights)
    elif backend in ("auto", "linprog"):
        plan = solve_emd_linprog(cost_matrix, sig_a.weights, sig_b.weights)
    else:
        raise ConfigurationError(
            f"backend must be one of {PAIRWISE_SOLVERS}, got {backend!r}"
        )
    if plan.total_flow <= 0:
        return 0.0
    return float(plan.cost / plan.total_flow)


class PairwiseEMDEngine:
    """Computes EMD over batches of signature pairs.

    Parameters
    ----------
    ground_distance, backend:
        Forwarded to :func:`repro.emd.emd` for every pair.  ``backend``
        additionally accepts two *batched* solvers that group pairs by
        support signature and solve whole groups at once:
        ``"sinkhorn_batch"`` (tensor-batched entropic approximation) and
        ``"linprog_batch"`` (block-diagonal exact LP — one HiGHS call
        per support group, distances exactly equal to per-pair
        ``"linprog"``).  Exact 1-D pairs still take the closed-form fast
        path; irregular supports fall back to the per-pair LP.
    parallel_backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.  Pools only
        engage for pairs that need a transportation solve; the 1-D fast
        path and the batched Sinkhorn solver are already vectorised and
        always run in-process.
    n_workers:
        Pool size; defaults to the CPU count when a pool backend is
        selected.
    sinkhorn_epsilon:
        Unit-free regularisation strength of the batched Sinkhorn solver
        (only used with ``backend="sinkhorn_batch"``).
    sinkhorn_max_iter:
        Iteration budget per batched Sinkhorn solve.
    sinkhorn_tol:
        L1 row-marginal tolerance at which a batched Sinkhorn pair is
        considered converged (and compacted out of the iteration).  The
        solver default (1e-9) is far below scoring-grade accuracy;
        raising it buys band-build speed directly.
    sinkhorn_anneal:
        Optional decreasing epsilon-annealing prefix.  When given, each
        batched solve runs the schedule ``(*sinkhorn_anneal,
        sinkhorn_epsilon)`` with warm-started duals — converging to the
        small final epsilon much faster than a cold start at it.

    Attributes
    ----------
    n_evaluations:
        Total number of pair distances computed so far (all paths).
    n_fast_path:
        How many of those went through the vectorised 1-D fast path.
    n_cost_cache_hits:
        How many transportation solves reused a cached ground-distance
        matrix (pairs whose signatures share a common support).
    n_sinkhorn_batched:
        How many pair distances were solved by the tensor-batched
        Sinkhorn solver (grouped or union-embedded supports).
    n_linprog_batched:
        How many pair distances were solved by the block-diagonal
        batched exact LP (grouped or union-embedded supports).
    n_sinkhorn_nonconverged:
        How many of those exhausted ``sinkhorn_max_iter`` without
        meeting the marginal tolerance.  Such distances are still
        returned; a :class:`RuntimeWarning` is emitted only when a
        plan's marginal violation is materially large (> 1e-3, i.e. the
        plan is genuinely unusable) rather than merely slow to close the
        last decades towards the 1e-9 tolerance.

    Notes
    -----
    Worker pools are created lazily on the first batch that needs one and
    are *kept alive* across calls, so streaming workloads pay the pool
    start-up cost once instead of per batch.  Call :meth:`close` (or use
    the engine as a context manager) to release the pool; a closed engine
    raises :class:`~repro.exceptions.ConfigurationError` on further use.
    """

    _COST_CACHE_MAX = 64
    # Marginal violation above which a non-converged Sinkhorn solve is
    # worth a RuntimeWarning.  Spiky marginals at small epsilon converge
    # slowly past ~1e-4, and an L1 violation of 1e-3 (0.1% of the mass
    # misplaced, distance bias ~0.1% of the cost scale) is still far
    # below anything the detection scores can resolve — the warning is
    # for solves whose plans are genuinely unusable, not for the slow
    # tail of fine ones.
    _SINKHORN_WARN_ERROR = 1e-3

    def __init__(
        self,
        *,
        ground_distance: GroundDistance = "euclidean",
        backend: EMDSolverName = "auto",
        parallel_backend: ParallelBackendName = "serial",
        n_workers: Optional[int] = None,
        sinkhorn_epsilon: float = 0.05,
        sinkhorn_max_iter: int = 2000,
        sinkhorn_tol: float = 1e-9,
        sinkhorn_anneal: Optional[Sequence[float]] = None,
    ) -> None:
        if backend not in EMD_SOLVERS:
            raise ConfigurationError(
                f"backend must be one of {EMD_SOLVERS}, got {backend!r}"
            )
        if parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigurationError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, got {parallel_backend!r}"
            )
        if n_workers is not None:
            n_workers = check_positive_int(n_workers, "n_workers")
        if not np.isfinite(sinkhorn_epsilon) or sinkhorn_epsilon <= 0:
            raise ConfigurationError("sinkhorn_epsilon must be positive and finite")
        if not np.isfinite(sinkhorn_tol) or sinkhorn_tol <= 0:
            raise ConfigurationError("sinkhorn_tol must be positive and finite")
        self.ground_distance = ground_distance
        self.backend = backend
        self.parallel_backend = parallel_backend
        self.n_workers = n_workers
        self.sinkhorn_epsilon = float(sinkhorn_epsilon)
        self.sinkhorn_max_iter = check_positive_int(sinkhorn_max_iter, "sinkhorn_max_iter")
        self.sinkhorn_tol = float(sinkhorn_tol)
        self.sinkhorn_anneal = _check_anneal(sinkhorn_anneal, self.sinkhorn_epsilon)
        self.n_evaluations = 0
        self.n_fast_path = 0
        self.n_cost_cache_hits = 0
        self.n_sinkhorn_batched = 0
        self.n_sinkhorn_nonconverged = 0
        self.n_linprog_batched = 0
        self._pool = None
        self._pool_failed = False
        self._closed = False
        self._cost_cache: dict = {}
        self._union_cache: dict = {}

    @property
    def sinkhorn_schedule(self) -> Union[float, Tuple[float, ...]]:
        """The epsilon (or annealing schedule) each batched solve runs."""
        if self.sinkhorn_anneal is None:
            return self.sinkhorn_epsilon
        return self.sinkhorn_anneal + (self.sinkhorn_epsilon,)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut down the persistent worker pool and mark the engine closed.

        Idempotent; afterwards any distance computation raises
        :class:`~repro.exceptions.ConfigurationError`.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._cost_cache.clear()
        self._union_cache.clear()
        self._closed = True

    def __enter__(self) -> "PairwiseEMDEngine":
        self._check_open()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "this PairwiseEMDEngine has been closed; create a new engine"
            )

    def _acquire_pool(self) -> Optional["Executor"]:
        """The persistent executor, created on first use; ``None`` → serial."""
        if self._pool is not None:
            return self._pool
        if self._pool_failed:
            return None
        workers = self.n_workers or os.cpu_count() or 1
        if workers <= 1:
            return None
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        pool_cls = ThreadPoolExecutor if self.parallel_backend == "thread" else ProcessPoolExecutor
        try:
            self._pool = pool_cls(max_workers=workers)
        except (OSError, ValueError, RuntimeError, ImportError):
            # Pool creation can fail in restricted environments (no
            # /dev/shm, forbidden fork, ...); the serial path is always
            # available, and we stop retrying for subsequent batches.
            self._pool_failed = True
            return None
        return self._pool

    # ------------------------------------------------------------------ #
    # Ground-distance caching
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shares_support(sig_a: Signature, sig_b: Signature) -> bool:
        return _common_support(sig_a, sig_b)

    def _cost_between(self, positions_a: np.ndarray, positions_b: np.ndarray) -> np.ndarray:
        """Cached cross-distance matrix between two support arrays."""
        key = (
            positions_a.shape,
            positions_a.tobytes(),
            positions_b.shape,
            positions_b.tobytes(),
        )
        cost = self._cost_cache.get(key)
        if cost is not None:
            self.n_cost_cache_hits += 1
            return cost
        cost = cross_distance_matrix(positions_a, positions_b, self.ground_distance)
        if len(self._cost_cache) >= self._COST_CACHE_MAX:
            self._cost_cache.clear()
        self._cost_cache[key] = cost
        return cost

    def _cached_cost(self, sig_a: Signature, sig_b: Signature) -> Optional[np.ndarray]:
        """Ground-distance matrix for common-support pairs, built once.

        Histogram-signature batches share one positions grid across every
        bag, so all their LP solves can run against a single cost matrix
        instead of recomputing cdist per pair.
        """
        if not self._shares_support(sig_a, sig_b):
            return None
        return self._cost_between(sig_a.positions, sig_b.positions)

    # ------------------------------------------------------------------ #
    # Pair computation
    # ------------------------------------------------------------------ #
    def compute(self, sig_a: Signature, sig_b: Signature) -> float:
        """Distance for a single pair (counted in the evaluation stats)."""
        return float(self.compute_pairs([(sig_a, sig_b)])[0])

    def _fast_path_eligible(self, sig_a: Signature, sig_b: Signature) -> bool:
        # The closed-form 1-D path is exact, so it also serves both batched
        # backends (no point stacking a solve that has a closed form).
        return (
            self.backend == "auto" or self.backend in BATCHED_SOLVERS
        ) and _can_use_1d_fast_path(sig_a, sig_b, self.ground_distance)

    def _solve_general(
        self,
        pairs: List[Tuple[Signature, Signature]],
        backend: Optional[EMDSolverName] = None,
    ) -> List[float]:
        backend = self.backend if backend is None else backend
        pool = None
        if self.parallel_backend != "serial" and len(pairs) >= 2:
            pool = self._acquire_pool()
        # A cached cost matrix would be pickled into every job of a process
        # pool (per-pair IPC instead of a saving); share the cache whenever
        # execution is actually in-process.  Process workers instead keep a
        # per-worker cache, building each shared matrix once per worker.
        use_cache = pool is None or self.parallel_backend != "process"
        jobs = [
            (
                a,
                b,
                self.ground_distance,
                backend,
                self._cached_cost(a, b) if use_cache else None,
                not use_cache,
            )
            for a, b in pairs
        ]
        if pool is None:
            return [_emd_pair(job) for job in jobs]
        from concurrent.futures import BrokenExecutor

        try:
            return list(pool.map(_emd_pair, jobs, chunksize=8))
        except (OSError, BrokenExecutor, RuntimeError) as exc:
            # Library errors raised inside _emd_pair (SolverError and
            # friends subclass RuntimeError) are computation failures:
            # propagate them and leave the pool alive.
            if isinstance(exc, ReproError):
                raise
            # The pool itself broke — workers spawn lazily at submit, so
            # "can't start new thread" lands here, not in _acquire_pool.
            # Retire it, stop retrying, and fall back to serial for this
            # and all later batches.
            self._pool_failed = True
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass
            self._pool = None
            return [_emd_pair(job) for job in jobs]
        except (pickle.PicklingError, AttributeError, TypeError):
            if self.parallel_backend != "process":
                # Thread pools never pickle, so these are computation
                # errors; propagate them and leave the pool alive.
                raise
            # Process pools cannot pickle callable ground distances (the
            # pickler raises exactly these types), but a worker computation
            # can raise them too; the pool is healthy either way, so run
            # this batch serially — a genuine computation error re-raises
            # there — and keep the pool for the next batch.
            return [_emd_pair(job) for job in jobs]

    def compute_pairs(self, pairs: Sequence[Tuple[Signature, Signature]]) -> np.ndarray:
        """Distances for a batch of pairs, in input order."""
        self._check_open()
        pairs = list(pairs)
        out = np.empty(len(pairs), dtype=float)
        if not pairs:
            return out
        fast = [p for p, (a, b) in enumerate(pairs) if self._fast_path_eligible(a, b)]
        fast_set = set(fast)
        general = [p for p in range(len(pairs)) if p not in fast_set]
        if fast:
            out[fast] = _batched_wasserstein_1d([pairs[p] for p in fast])
        if general:
            if self.backend in BATCHED_SOLVERS:
                self._solve_batched_backend(pairs, general, out)
            else:
                out[general] = self._solve_general([pairs[p] for p in general])
        self.n_evaluations += len(pairs)
        self.n_fast_path += len(fast)
        return out

    # ------------------------------------------------------------------ #
    # Batched multi-pair routing (tensor Sinkhorn and block-diagonal LP)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _support_key(positions: np.ndarray) -> tuple:
        return (positions.shape, positions.tobytes())

    def _translate_group_error(
        self, exc: SolverError, members: List[int]
    ) -> SolverError:
        """Batch-local failure indices -> :meth:`compute_pairs` positions.

        A stacked solve reports which rows of *its* batch failed (or
        nothing, when the failure is not attributable); either way the
        caller needs to know which of the pairs it submitted were stacked
        into the failing solve, so re-raise with the group's positions in
        the original ``compute_pairs`` batch.
        """
        if exc.pair_indices is None:
            failing = [int(p) for p in members]
        else:
            failing = [int(members[i]) for i in exc.pair_indices]
        return SolverError(
            f"{exc} [pairs at compute_pairs positions {failing} were part "
            "of the failing batched solve]",
            pair_indices=failing,
        )

    def _solve_batched_backend(
        self,
        pairs: List[Tuple[Signature, Signature]],
        indices: List[int],
        out: np.ndarray,
    ) -> None:
        """Route pairs through a batched multi-pair solver.

        Pairs are grouped by support signature: every group whose pairs
        share one common support is solved over a single shared cost
        kernel — one tensor-batched Sinkhorn iteration
        (``backend="sinkhorn_batch"``) or one block-diagonal HiGHS LP
        (``backend="linprog_batch"``).  Mixed-support pairs are each
        embedded into the union of their own two supports (zero-weight
        atoms for missing positions) when that union stays small — the
        d-dimensional common-grid histogram case — with pairs whose
        unions coincide stacked into one solve; only genuinely
        irregular supports fall back to the per-pair LP.  Every routing
        decision is pair-local, so distances do not depend on how pairs
        are batched.  ``indices`` are positions into ``pairs``/``out``,
        so failure context and results keep the caller's frame of
        reference.
        """
        by_dim: Dict[int, List[int]] = {}
        for p in indices:
            by_dim.setdefault(pairs[p][0].dimension, []).append(p)
        for dim_indices in by_dim.values():
            self._solve_batched_dim_group(pairs, dim_indices, out)

    def _solve_group(
        self,
        members: List[int],
        cost: np.ndarray,
        weights_a: np.ndarray,
        weights_b: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """One stacked solve for a support group, in the active backend."""
        if self.backend == "linprog_batch":
            try:
                result = solve_emd_linprog_batch(cost, weights_a, weights_b)
            except SolverError as exc:
                raise self._translate_group_error(exc, members) from exc
            out[members] = result.distances
            self.n_linprog_batched += len(members)
            return
        try:
            result = sinkhorn_transport_batch(
                cost,
                weights_a,
                weights_b,
                epsilon=self.sinkhorn_schedule,
                max_iter=self.sinkhorn_max_iter,
                tol=self.sinkhorn_tol,
            )
        except SolverError as exc:
            raise self._translate_group_error(exc, members) from exc
        out[members] = result.distances
        self.n_sinkhorn_batched += len(members)
        self.n_sinkhorn_nonconverged += int(np.count_nonzero(~result.converged))
        # The solver tolerance (1e-9) can sit below a problem's float
        # rounding floor, so tol-misses alone are routine and harmless;
        # only warn when a plan's marginals are *materially* off.
        if np.any(result.marginal_errors > self._SINKHORN_WARN_ERROR):
            warnings.warn(
                "some batched Sinkhorn solves did not reach the marginal "
                "tolerance within sinkhorn_max_iter and their plans are "
                "materially off-marginal; the affected distances carry "
                "extra entropic bias (raise sinkhorn_max_iter or "
                "sinkhorn_epsilon; see n_sinkhorn_nonconverged)",
                RuntimeWarning,
                stacklevel=4,
            )

    def _solve_irregular_singles(
        self,
        pairs: List[Tuple[Signature, Signature]],
        singles: List[int],
        out: np.ndarray,
    ) -> None:
        """Per-pair fallback for supports no batched solve can absorb."""
        if self.backend == "linprog_batch":
            # Same functional as the stacked blocks (exact
            # partial-matching EMD), so no normalisation; the per-pair
            # solves still go through the worker pool when one is
            # configured.
            out[singles] = self._solve_general(
                [pairs[p] for p in singles], backend="linprog"
            )
            return
        # Normalise before the exact solve so the whole backend computes
        # one functional: the batched entropic path works on
        # per-side-normalised weights (balanced transport), whereas the
        # raw LP computes the partial-matching EMD — for unequal-mass
        # signatures those differ even as epsilon -> 0.
        out[singles] = self._solve_general(
            [(pairs[p][0].normalized(), pairs[p][1].normalized()) for p in singles],
            backend="auto",
        )

    def _union_embedding(
        self, positions_a: np.ndarray, positions_b: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Pairwise union support and atom indices, or ``None`` if irregular.

        Embeds a mixed-support pair into the union of *its own* two
        supports — a decision that depends on nothing but the pair, so a
        pair is routed (and its distance computed) identically no matter
        which other pairs share the batch.  That batch-invariance is the
        property the sharded band builder relies on for exact merges.
        Embedding happens only when the supports genuinely overlap
        (subsets of one grid make the union strictly smaller than the
        concatenation) and the union stays small enough for the
        (P, U, U) iteration; results are cached per support pattern.
        """
        key = (self._support_key(positions_a), self._support_key(positions_b))
        cached = self._union_cache.get(key, False)
        if cached is not False:
            return cached
        # Canonicalise -0.0 to +0.0 (x + 0.0 does exactly that and nothing
        # else): np.unique dedups rows by value, but the atom-index lookup
        # below is keyed by raw bytes, and the two zeros differ bytewise.
        pos_a = positions_a + 0.0
        pos_b = positions_b + 0.0
        union = np.unique(np.vstack([pos_a, pos_b]), axis=0)
        result: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        overlap = union.shape[0] < pos_a.shape[0] + pos_b.shape[0]
        if overlap and union.shape[0] <= max(32, 4 * max(pos_a.shape[0], pos_b.shape[0])):
            union_index = {row.tobytes(): idx for idx, row in enumerate(union)}
            idx_a = np.array([union_index[row.tobytes()] for row in pos_a], dtype=int)
            idx_b = np.array([union_index[row.tobytes()] for row in pos_b], dtype=int)
            result = (union, idx_a, idx_b)
        if len(self._union_cache) >= self._COST_CACHE_MAX:
            self._union_cache.clear()
        self._union_cache[key] = result
        return result

    def _solve_batched_dim_group(
        self,
        pairs: List[Tuple[Signature, Signature]],
        indices: List[int],
        out: np.ndarray,
    ) -> None:
        supports: Dict[tuple, np.ndarray] = {}
        groups: Dict[Tuple[tuple, tuple], List[int]] = {}
        mixed: List[int] = []
        for p in indices:
            sig_a, sig_b = pairs[p]
            key_a = self._support_key(sig_a.positions)
            key_b = self._support_key(sig_b.positions)
            if key_a != key_b:
                mixed.append(p)
                continue
            supports.setdefault(key_a, sig_a.positions)
            groups.setdefault((key_a, key_b), []).append(p)

        # Common-support groups: shared cost kernel, one batched solve.
        for (key_a, _key_b), members in groups.items():
            cost = self._cost_between(supports[key_a], supports[key_a])
            weights_a = np.stack([pairs[p][0].weights for p in members])
            weights_b = np.stack([pairs[p][1].weights for p in members])
            self._solve_group(members, cost, weights_a, weights_b, out)

        # Mixed-support pairs: embed each into the union of its own two
        # supports (histogram signatures with varying bin occupancy over
        # one grid); pairs whose unions coincide share one batched solve.
        # Genuinely irregular supports fall back to the per-pair LP.
        union_groups: Dict[tuple, List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]] = {}
        union_supports: Dict[tuple, np.ndarray] = {}
        irregular: List[int] = []
        for p in mixed:
            sig_a, sig_b = pairs[p]
            embedding = self._union_embedding(sig_a.positions, sig_b.positions)
            if embedding is None:
                irregular.append(p)
                continue
            union, idx_a, idx_b = embedding
            union_key = self._support_key(union)
            union_supports.setdefault(union_key, union)
            union_groups.setdefault(union_key, []).append((p, union, idx_a, idx_b))
        for union_key, members in union_groups.items():
            union = union_supports[union_key]
            n_union = union.shape[0]
            weights_a = np.zeros((len(members), n_union), dtype=float)
            weights_b = np.zeros((len(members), n_union), dtype=float)
            member_indices = [p for p, _, _, _ in members]
            for row, (p, _, idx_a, idx_b) in enumerate(members):
                sig_a, sig_b = pairs[p]
                np.add.at(weights_a[row], idx_a, sig_a.weights)
                np.add.at(weights_b[row], idx_b, sig_b.weights)
            cost = self._cost_between(union, union)
            self._solve_group(member_indices, cost, weights_a, weights_b, out)
        if irregular:
            self._solve_irregular_singles(pairs, irregular, out)

    def solve_pairs(self, pairs: Sequence[Tuple[Signature, Signature]]) -> np.ndarray:
        """Distances for externally-supplied signature pairs, in input order.

        The entry point for callers that gather pairs from *many*
        sources — e.g. :class:`repro.service.StreamSupervisor`'s
        cross-stream batched drain, which stacks the pending pairs of
        every active stream into one call so the batched backends solve
        a single support group per round instead of one per stream.
        Routing is identical to :meth:`compute_pairs` (same
        support-signature grouping, union embedding, fast paths and
        failure translation), and because every routing decision is
        pair-local the returned distances do not depend on which other
        pairs share the batch — the invariant that makes a cross-stream
        stacked solve commit bit-identically to per-stream solves on the
        exact backends.  A failing batched group re-raises
        :class:`~repro.exceptions.SolverError` with
        ``pair_indices`` in *this call's* positions, so callers can map
        failures back to whichever source contributed each pair.
        """
        return self.compute_pairs(pairs)

    def distances_from(
        self, signature: Signature, others: Sequence[Signature]
    ) -> np.ndarray:
        """Distances from one signature to each of ``others``."""
        return self.compute_pairs([(signature, other) for other in others])

    # ------------------------------------------------------------------ #
    # Matrix construction
    # ------------------------------------------------------------------ #
    def banded_matrix(
        self, signatures: Sequence[Signature], bandwidth: int
    ) -> BandedDistanceMatrix:
        """Fill the band of the pairwise matrix over a signature sequence."""
        banded = BandedDistanceMatrix(max(len(signatures), 1), bandwidth)
        rows, cols = banded.pair_indices()
        values = self.compute_pairs(
            [(signatures[i], signatures[j]) for i, j in zip(rows.tolist(), cols.tolist())]
        )
        banded.set_pairs(rows, cols, values)
        return banded


def banded_emd_matrix(
    signatures: Sequence[Signature],
    bandwidth: int,
    *,
    ground_distance: GroundDistance = "euclidean",
    backend: EMDSolverName = "auto",
    parallel_backend: ParallelBackendName = "serial",
    n_workers: Optional[int] = None,
) -> BandedDistanceMatrix:
    """Convenience wrapper: banded pairwise EMD matrix in one call."""
    engine = PairwiseEMDEngine(
        ground_distance=ground_distance,
        backend=backend,
        parallel_backend=parallel_backend,
        n_workers=n_workers,
    )
    return engine.banded_matrix(signatures, bandwidth)
