"""Earth Mover's Distance between signatures (paper Section 3.2)."""

from .batch import (
    EMD_SOLVERS,
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    band_pair_counts,
    band_pair_indices,
    banded_emd_matrix,
)
from .distance import EMDResult, emd, emd_with_flow
from .ground_distance import (
    GroundDistance,
    chebyshev_cross_distance,
    cross_distance_matrix,
    euclidean_cross_distance,
    manhattan_cross_distance,
    resolve_ground_distance,
    squared_euclidean_cross_distance,
)
from .linprog_backend import solve_emd_linprog
from .linprog_batch import LinprogBatchResult, solve_emd_linprog_batch
from .matrices import EMDCache, cross_emd_matrix, emd_matrix
from .numerics import logsumexp
from .one_dimensional import emd_1d_histograms, wasserstein_1d
from .orchestrator import (
    QUARANTINE_FILENAME,
    InlineWorkerBackend,
    ProcessWorkerBackend,
    QuarantinedPair,
    QuarantineManifest,
    RetryPolicy,
    ShardOrchestrator,
    WorkerCrash,
    WorkerHang,
    compute_backoff,
    orchestrated_banded_matrix,
)
from .sharding import (
    EngineSettings,
    ShardPlan,
    ShardRunner,
    ShardSpec,
    load_shard_checkpoint,
    merge_shards,
    save_shard_checkpoint,
    sharded_banded_matrix,
)
from .sinkhorn import SinkhornResult, sinkhorn_emd, sinkhorn_transport
from .sinkhorn_batch import SinkhornBatchResult, sinkhorn_transport_batch
from .transportation import (
    TransportPlan,
    solve_transportation,
    solve_unbalanced_transportation,
)

__all__ = [
    "EMD_SOLVERS",
    "BandedDistanceMatrix",
    "PairwiseEMDEngine",
    "band_pair_counts",
    "band_pair_indices",
    "banded_emd_matrix",
    "EngineSettings",
    "ShardPlan",
    "ShardRunner",
    "ShardSpec",
    "load_shard_checkpoint",
    "merge_shards",
    "save_shard_checkpoint",
    "sharded_banded_matrix",
    "QUARANTINE_FILENAME",
    "InlineWorkerBackend",
    "ProcessWorkerBackend",
    "QuarantinedPair",
    "QuarantineManifest",
    "RetryPolicy",
    "ShardOrchestrator",
    "WorkerCrash",
    "WorkerHang",
    "compute_backoff",
    "orchestrated_banded_matrix",
    "EMDResult",
    "emd",
    "emd_with_flow",
    "GroundDistance",
    "cross_distance_matrix",
    "euclidean_cross_distance",
    "squared_euclidean_cross_distance",
    "manhattan_cross_distance",
    "chebyshev_cross_distance",
    "resolve_ground_distance",
    "solve_emd_linprog",
    "LinprogBatchResult",
    "solve_emd_linprog_batch",
    "EMDCache",
    "emd_matrix",
    "cross_emd_matrix",
    "wasserstein_1d",
    "emd_1d_histograms",
    "logsumexp",
    "SinkhornResult",
    "sinkhorn_emd",
    "sinkhorn_transport",
    "SinkhornBatchResult",
    "sinkhorn_transport_batch",
    "TransportPlan",
    "solve_transportation",
    "solve_unbalanced_transportation",
]
