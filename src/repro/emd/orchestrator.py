"""Fault-tolerant work-queue orchestration of sharded band builds.

:mod:`repro.emd.sharding` made the band build divisible (plan → shards →
checkpoints → merge) but brittle: one crashed worker, one hung LP solve
or one pathological pair aborts the whole run.  This module drives the
same shard layer through a work queue that survives those faults:

* **retry with backoff** — a crashed or failed shard attempt is
  re-enqueued with exponential backoff + jitter (:func:`compute_backoff`
  is the one sanctioned backoff helper; reprolint rule RL006 bans
  hand-rolled ``time.sleep`` retry loops) until a per-shard retry budget
  is exhausted, at which point :class:`~repro.exceptions.OrchestratorError`
  is raised;
* **timeouts and stragglers** — an attempt running past the configured
  per-shard timeout is killed and re-enqueued; an attempt running beyond
  ``straggler_factor ×`` the median completion time is *speculatively
  duplicated* while it keeps running — the first attempt to deliver a
  valid result wins, the losers are cancelled and their partial output
  discarded;
* **poison-pair quarantine** — when a batched solve fails with
  :class:`~repro.exceptions.SolverError` carrying ``pair_indices``, the
  orchestrator bisects the failing group, retries the halves, and
  re-solves isolated bad pairs (engine retries first, then the per-pair
  exact LP).  Pairs that exhaust the rescue budget are recorded in a
  :class:`QuarantineManifest` and masked as NaN; the
  ``strict``/``degraded`` policy decides whether the finished band is
  refused (:class:`~repro.exceptions.PoisonPairError` with the manifest
  attached) or returned with a warning;
* **checkpoint validation before merge** — existing checkpoints are
  validated (plan hash + engine fingerprint + payload checksum) and
  corrupt or stale files are deleted and re-queued instead of aborting
  the resume.

Determinism: every shard's distances are computed by the same
:class:`~repro.emd.sharding.EngineSettings` recipe regardless of which
attempt delivers them, so under any injected fault the merged band
equals the unfaulted single-process build (tested at 1e-12).  The
orchestrator owns a private seeded RNG for backoff jitter — it never
touches the detector's generator, so retries cannot shift signature or
bootstrap streams.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .._validation import check_positive_int
from ..exceptions import (
    CheckpointError,
    ConfigurationError,
    OrchestratorError,
    PoisonPairError,
    ReproError,
    SolverError,
    ValidationError,
)
from ..signatures import Signature
from .batch import BandedDistanceMatrix, PairwiseEMDEngine
from .distance import emd
from .registry import POISON_POLICIES, SHARD_MODES, PoisonPolicyName, ShardModeName
from .sharding import (
    EngineSettings,
    ShardPlan,
    _compute_shard_values,
    _SharedSignatureStore,
    _signatures_from_arrays,
    checkpoint_path,
    load_shard_checkpoint,
    merge_shards,
    save_shard_checkpoint,
)

#: Canonical quarantine-manifest file inside a checkpoint directory.
QUARANTINE_FILENAME = "quarantine.json"

#: Version stamp of the quarantine-manifest JSON layout.
QUARANTINE_FORMAT_VERSION = 1


# ---------------------------------------------------------------------- #
# Backoff
# ---------------------------------------------------------------------- #
def compute_backoff(
    attempt: int,
    *,
    base: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 5.0,
    jitter: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Delay before retry number ``attempt`` (0-based), in seconds.

    Exponential growth ``base · factor^attempt`` capped at ``max_delay``,
    with an optional multiplicative jitter drawn uniformly from
    ``[0, jitter]`` so simultaneous retries de-synchronise.  This is the
    project's single sanctioned backoff helper: every retry loop must
    sleep on its output (reprolint rule RL006).
    """
    if attempt < 0:
        raise ValidationError(f"attempt must be non-negative, got {attempt}")
    if base < 0 or factor < 1 or max_delay < 0 or jitter < 0:
        raise ValidationError(
            f"invalid backoff parameters base={base}, factor={factor}, "
            f"max_delay={max_delay}, jitter={jitter}"
        )
    delay = min(float(max_delay), float(base) * float(factor) ** attempt)
    if jitter and rng is not None:
        delay *= 1.0 + float(jitter) * float(rng.random())
    return min(float(max_delay), delay)


@dataclass(frozen=True)
class RetryPolicy:
    """Everything the orchestrator is allowed to do about a fault.

    Attributes
    ----------
    max_retries:
        How many *additional* attempts a shard gets after its first
        failure before the build aborts with
        :class:`~repro.exceptions.OrchestratorError`.
    backoff_base, backoff_factor, backoff_max, backoff_jitter:
        Parameters of :func:`compute_backoff` applied between attempts.
    shard_timeout:
        Wall-clock seconds one shard attempt may run before it is killed
        and re-enqueued; ``None`` (default) disables the timeout.
    straggler_factor:
        A running attempt older than ``straggler_factor × median``
        completion time is speculatively duplicated; ``None`` disables
        speculation.
    straggler_min_done:
        Minimum number of completed shards before the median is trusted
        for straggler detection.
    poison_retries:
        Engine re-solve attempts an isolated poison pair gets before the
        per-pair exact LP is tried and, failing that, the pair is
        quarantined.
    on_poison_pair:
        ``"strict"`` (default) raises
        :class:`~repro.exceptions.PoisonPairError` when any pair ends up
        quarantined; ``"degraded"`` warns and returns the band with the
        quarantined entries masked as NaN.
    poll_interval:
        Seconds the drive loop sleeps when no attempt made progress.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    backoff_jitter: float = 0.5
    shard_timeout: Optional[float] = None
    straggler_factor: Optional[float] = 3.0
    straggler_min_done: int = 3
    poison_retries: int = 1
    on_poison_pair: PoisonPolicyName = "strict"
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be positive or None, got {self.shard_timeout}"
            )
        if self.straggler_factor is not None and self.straggler_factor <= 1:
            raise ConfigurationError(
                f"straggler_factor must exceed 1 or be None, got {self.straggler_factor}"
            )
        if self.poison_retries < 0:
            raise ConfigurationError(
                f"poison_retries must be >= 0, got {self.poison_retries}"
            )
        if self.on_poison_pair not in POISON_POLICIES:
            raise ConfigurationError(
                f"on_poison_pair must be one of {POISON_POLICIES}, "
                f"got {self.on_poison_pair!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        # Delegated validation of the backoff parameters.
        try:
            compute_backoff(
                0,
                base=self.backoff_base,
                factor=self.backoff_factor,
                max_delay=self.backoff_max,
                jitter=self.backoff_jitter,
            )
        except ValidationError as exc:
            raise ConfigurationError(str(exc)) from None

    @classmethod
    def from_config(cls, config: object) -> "RetryPolicy":
        """Extract the orchestration knobs from a ``DetectorConfig``."""
        return cls(
            max_retries=int(getattr(config, "shard_retries", 2)),
            shard_timeout=getattr(config, "shard_timeout", None),
            on_poison_pair=getattr(config, "on_poison_pair", "strict"),
        )

    def backoff(self, failure_count: int, rng: np.random.Generator) -> float:
        """The delay before re-enqueueing after ``failure_count`` failures."""
        return compute_backoff(
            max(0, failure_count - 1),
            base=self.backoff_base,
            factor=self.backoff_factor,
            max_delay=self.backoff_max,
            jitter=self.backoff_jitter,
            rng=rng,
        )


# ---------------------------------------------------------------------- #
# Quarantine manifest
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuarantinedPair:
    """One band pair that exhausted its poison-pair rescue budget."""

    row: int
    col: int
    shard_id: int
    reason: str


@dataclass
class QuarantineManifest:
    """The quarantined pairs of one orchestrated band build.

    Stamped with the shard plan hash and engine fingerprint so a
    manifest from a different plan or solver configuration is never
    mistaken for the current run's; persisted as ``quarantine.json``
    next to the shard checkpoints when a checkpoint directory is set.
    """

    plan_hash: str
    fingerprint: str
    pairs: List[QuarantinedPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def add(self, pair: QuarantinedPair) -> None:
        self.pairs.append(pair)

    def pair_set(self) -> frozenset:
        """The quarantined ``(row, col)`` pairs as a set."""
        return frozenset((p.row, p.col) for p in self.pairs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": QUARANTINE_FORMAT_VERSION,
            "plan_hash": self.plan_hash,
            "fingerprint": self.fingerprint,
            "pairs": [
                {"row": p.row, "col": p.col, "shard_id": p.shard_id, "reason": p.reason}
                for p in self.pairs
            ],
        }

    def save(self, directory: Union[str, Path]) -> Path:
        """Atomically write the manifest into a checkpoint directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / QUARANTINE_FILENAME
        fd, tmp_name = tempfile.mkstemp(
            prefix=".quarantine.", suffix=".tmp.json", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(
        cls, directory: Union[str, Path], plan_hash: str, fingerprint: str
    ) -> Optional["QuarantineManifest"]:
        """The stored manifest, or ``None`` if absent, unreadable or stale."""
        path = Path(directory) / QUARANTINE_FILENAME
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if (
                int(payload["format_version"]) != QUARANTINE_FORMAT_VERSION
                or str(payload["plan_hash"]) != plan_hash
                or str(payload["fingerprint"]) != fingerprint
            ):
                return None
            pairs = [
                QuarantinedPair(
                    row=int(p["row"]),
                    col=int(p["col"]),
                    shard_id=int(p["shard_id"]),
                    reason=str(p["reason"]),
                )
                for p in payload["pairs"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return cls(plan_hash=plan_hash, fingerprint=fingerprint, pairs=pairs)


# ---------------------------------------------------------------------- #
# Worker backends
# ---------------------------------------------------------------------- #
class WorkerCrash(ReproError, RuntimeError):
    """Protocol exception: a shard task raising this emulates a worker
    that died mid-shard.  Used by :mod:`repro.testing.faults` to inject
    crashes deterministically through the inline backend (process-mode
    injection kills the worker process itself instead)."""


class WorkerHang(ReproError, RuntimeError):
    """Protocol exception: a shard task raising this emulates a hung
    solve.  The inline backend reports the attempt as still running
    until the orchestrator kills it (timeout) or out-races it with a
    speculative duplicate."""


@dataclass
class _Outcome:
    """Terminal state of one shard attempt."""

    status: str  # "ok" | "failed" | "crashed"
    values: Optional[np.ndarray] = None
    error: Optional[BaseException] = None


@dataclass
class _ShardTask:
    shard_id: int
    attempt: int = 0
    speculative: bool = False


@dataclass
class _Active:
    task: _ShardTask
    handle: Any
    started: float


class WorkerBackend(Protocol):
    """What the orchestrator needs from a worker backend.

    ``start`` launches one shard attempt and returns an opaque handle;
    ``poll`` reports its outcome (``None`` while still running);
    ``kill`` cancels an attempt and discards its partial output;
    ``close`` releases every backend resource.
    """

    def start(self, shard_id: int) -> Any: ...

    def poll(self, handle: Any) -> Optional[_Outcome]: ...

    def kill(self, handle: Any) -> None: ...

    def close(self) -> None: ...


class InlineWorkerBackend:
    """Synchronous in-process worker backend.

    ``start`` executes the shard immediately on a private serial engine
    and stores the outcome; ``poll`` replays it.  A task raising
    :class:`WorkerHang` yields an attempt that stays "running" forever —
    exactly what the timeout and straggler paths need — and one raising
    :class:`WorkerCrash` mimics a worker death.  Deterministic by
    construction, which makes it the backend of the fault-injection test
    suite; it is also the production fallback when process workers are
    unavailable.
    """

    def __init__(
        self,
        plan: ShardPlan,
        settings: EngineSettings,
        signatures: Sequence[Signature],
    ) -> None:
        self._plan = plan
        self._settings = settings
        self._by_row = dict(enumerate(signatures))
        self._engine: Optional[PairwiseEMDEngine] = None
        self._handles = itertools.count()
        self._outcomes: Dict[int, Optional[_Outcome]] = {}

    def _ensure_engine(self) -> PairwiseEMDEngine:
        if self._engine is None:
            self._engine = self._settings.make_engine()
        return self._engine

    def start(self, shard_id: int) -> int:
        handle = next(self._handles)
        try:
            values = _compute_shard_values(
                self._ensure_engine(), self._by_row, self._plan, shard_id
            )
        except WorkerHang:
            self._outcomes[handle] = None  # reported as running until killed
        except WorkerCrash as exc:
            self._outcomes[handle] = _Outcome(
                "crashed",
                error=OrchestratorError(f"worker for shard {shard_id} crashed: {exc}"),
            )
        except SolverError as exc:
            self._outcomes[handle] = _Outcome("failed", error=exc)
        else:
            self._outcomes[handle] = _Outcome("ok", values=values)
        return handle

    def poll(self, handle: int) -> Optional[_Outcome]:
        return self._outcomes.get(handle)

    def kill(self, handle: int) -> None:
        self._outcomes.pop(handle, None)

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()
            self._engine = None


def _process_shard_entry(
    conn: Any,
    meta: Mapping[str, Tuple[str, tuple, str]],
    settings: EngineSettings,
    n: int,
    bandwidth: int,
    row_bounds: Tuple[int, ...],
    shard_id: int,
) -> None:
    """Child-process entry point: solve one shard, report over the pipe.

    Reports ``("ok", values)``, ``("solver_error", state)`` — the
    structured :class:`SolverError` context, rebuilt parent-side because
    pickling drops keyword-only attributes — or ``("error", message)``.
    A worker killed mid-shard sends nothing; the parent sees the broken
    pipe / dead process and treats the attempt as crashed.
    """
    from multiprocessing import shared_memory

    blocks = []
    try:
        arrays = {}
        for name, (shm_name, shape, dtype) in meta.items():
            block = shared_memory.SharedMemory(name=shm_name)
            blocks.append(block)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
        plan = ShardPlan(n, bandwidth, row_bounds)
        spec = plan.shard(shard_id)
        signatures = _signatures_from_arrays(arrays, spec.row_start, spec.halo_stop)
        with settings.make_engine() as engine:
            values = _compute_shard_values(engine, signatures, plan, shard_id)
        conn.send(("ok", values))
    except SolverError as exc:
        conn.send(
            (
                "solver_error",
                (str(exc), exc.pair_indices, exc.shard_id, exc.shard_rows),
            )
        )
    except BaseException as exc:  # pragma: no cover - depends on fault timing
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        for block in blocks:
            # Detach only — the parent-side store owns and unlinks the
            # segments; a worker must never tear shared state down.
            try:
                block.close()
            except OSError:  # pragma: no cover - already detached
                pass
        conn.close()


@dataclass
class _ProcessHandle:
    shard_id: int
    process: Any
    conn: Any


class ProcessWorkerBackend:
    """One short-lived ``multiprocessing.Process`` per shard attempt.

    Unlike the pool used by :class:`~repro.emd.sharding.ShardRunner`, a
    dedicated process per attempt can be killed individually — the
    primitive the timeout and straggler-cancellation paths need.  The
    signature arrays still live in shared memory (one placement for the
    whole build), so spawning an attempt ships only a few integers.
    """

    def __init__(
        self,
        plan: ShardPlan,
        settings: EngineSettings,
        signatures: Sequence[Signature],
    ) -> None:
        import multiprocessing

        self._ctx = multiprocessing.get_context()
        self._plan = plan
        self._settings = settings
        self._store = _SharedSignatureStore(signatures)
        self._handles: List[_ProcessHandle] = []

    def start(self, shard_id: int) -> _ProcessHandle:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_process_shard_entry,
            args=(
                send_conn,
                self._store.meta,
                self._settings,
                self._plan.n,
                self._plan.bandwidth,
                self._plan.row_bounds,
                shard_id,
            ),
            daemon=True,
        )
        process.start()
        send_conn.close()
        handle = _ProcessHandle(shard_id=shard_id, process=process, conn=recv_conn)
        self._handles.append(handle)
        return handle

    def poll(self, handle: _ProcessHandle) -> Optional[_Outcome]:
        conn, process = handle.conn, handle.process
        has_message = conn.poll()
        if not has_message and process.is_alive():
            return None
        if has_message or conn.poll():
            try:
                tag, payload = conn.recv()
            except (EOFError, OSError):
                self._reap(handle)
                return _Outcome(
                    "crashed",
                    error=OrchestratorError(
                        f"worker for shard {handle.shard_id} died mid-report"
                    ),
                )
            self._reap(handle)
            if tag == "ok":
                return _Outcome("ok", values=np.asarray(payload, dtype=float))
            if tag == "solver_error":
                message, pair_indices, shard_id, shard_rows = payload
                return _Outcome(
                    "failed",
                    error=SolverError(
                        message,
                        pair_indices=pair_indices,
                        shard_id=shard_id,
                        shard_rows=shard_rows,
                    ),
                )
            return _Outcome(
                "crashed",
                error=OrchestratorError(
                    f"worker for shard {handle.shard_id} failed: {payload}"
                ),
            )
        # Dead without a message: crashed mid-shard.
        exitcode = process.exitcode
        self._reap(handle)
        return _Outcome(
            "crashed",
            error=OrchestratorError(
                f"worker for shard {handle.shard_id} exited with code "
                f"{exitcode} before reporting a result"
            ),
        )

    def kill(self, handle: _ProcessHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck in kernel
                process.kill()
                process.join(timeout=5.0)
        self._reap(handle)

    def _reap(self, handle: _ProcessHandle) -> None:
        try:
            handle.process.join(timeout=5.0)
        except (ValueError, AssertionError):  # pragma: no cover - already reaped
            pass
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if handle in self._handles:
            self._handles.remove(handle)

    def close(self) -> None:
        for handle in list(self._handles):
            self.kill(handle)
        self._store.close()


# ---------------------------------------------------------------------- #
# The orchestrator
# ---------------------------------------------------------------------- #
class ShardOrchestrator:
    """Fault-tolerant driver of a :class:`~repro.emd.sharding.ShardPlan`.

    Parameters
    ----------
    plan:
        The shard plan (fixes n, bandwidth and the row boundaries).
    settings:
        The :class:`EngineSettings` every attempt solves under; defaults
        to the engine defaults.
    policy:
        The :class:`RetryPolicy`; defaults to two retries, no timeout,
        3× straggler speculation and the strict poison policy.
    mode:
        ``"process"`` (default) runs one killable worker process per
        attempt (falling back to the inline backend, with a warning,
        when process workers are unavailable); ``"serial"`` runs
        attempts synchronously in-process.
    n_workers:
        Maximum concurrently running attempts; defaults to the CPU
        count.
    checkpoint_dir:
        When set, finished shards are checkpointed, existing checkpoints
        are validated and resumed (corrupt or stale files are deleted
        and re-queued, not fatal), and the quarantine manifest is
        persisted as ``quarantine.json``.
    clock, sleep:
        Injectable time sources (``time.monotonic``/``time.sleep`` by
        default) so the fault-injection tests drive timeouts and
        stragglers deterministically on a fake clock.
    rng_seed:
        Seed of the orchestrator's private backoff-jitter RNG.  Never
        the detector's generator: retries must not shift signature or
        bootstrap streams.

    Attributes
    ----------
    n_shards_computed, n_shards_resumed:
        After :meth:`run`: shards solved this call vs loaded from
        checkpoints.
    n_retries, n_timeouts, n_stragglers_redispatched,
    n_duplicates_cancelled, n_checkpoints_requeued, n_poison_rescued:
        Fault-handling counters, reset at the start of every run.
    quarantine:
        The final :class:`QuarantineManifest` (empty when every pair
        solved).
    """

    def __init__(
        self,
        plan: ShardPlan,
        settings: Optional[EngineSettings] = None,
        *,
        policy: Optional[RetryPolicy] = None,
        mode: ShardModeName = "process",
        n_workers: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        rng_seed: int = 0,
    ) -> None:
        if mode not in SHARD_MODES:
            raise ConfigurationError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
        if n_workers is not None:
            n_workers = check_positive_int(n_workers, "n_workers")
        self.plan = plan
        self.settings = settings if settings is not None else EngineSettings()
        self.settings.make_engine().close()  # validate the recipe eagerly
        self.policy = policy if policy is not None else RetryPolicy()
        self.mode = mode
        self.n_workers = n_workers
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self._sleep: Callable[[float], None] = sleep if sleep is not None else time.sleep
        self._rng = np.random.default_rng(rng_seed)
        self.quarantine: Optional[QuarantineManifest] = None
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.n_shards_computed = 0
        self.n_shards_resumed = 0
        self.n_retries = 0
        self.n_timeouts = 0
        self.n_stragglers_redispatched = 0
        self.n_duplicates_cancelled = 0
        self.n_checkpoints_requeued = 0
        self.n_poison_rescued = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, signatures: Sequence[Signature]) -> BandedDistanceMatrix:
        """Build (or resume) the band, surviving every recoverable fault."""
        if len(signatures) != self.plan.n:
            raise ValidationError(
                f"plan covers {self.plan.n} signatures, got {len(signatures)}"
            )
        self._reset_counters()
        fingerprint = self.settings.fingerprint()
        manifest = QuarantineManifest(self.plan.plan_hash(), fingerprint)
        values: Dict[int, np.ndarray] = {}
        self._resume_checkpoints(values, fingerprint, manifest)
        pending: Deque[_ShardTask] = deque(
            _ShardTask(spec.shard_id)
            for spec in self.plan.shards
            if spec.shard_id not in values
        )
        if pending:
            backend = self._make_backend(signatures)
            try:
                self._drive(backend, signatures, pending, values, fingerprint, manifest)
            finally:
                backend.close()
        manifest = self._reconcile_quarantine(values, manifest)
        self.quarantine = manifest
        if len(manifest):
            if self.checkpoint_dir is not None:
                manifest.save(self.checkpoint_dir)
            if self.policy.on_poison_pair == "strict":
                raise PoisonPairError(
                    f"{len(manifest)} band pair(s) exhausted the poison-pair "
                    f"rescue budget and were quarantined: "
                    f"{sorted(manifest.pair_set())}; re-run with "
                    f"on_poison_pair='degraded' to accept a masked band",
                    manifest=manifest,
                )
            warnings.warn(
                f"degraded band: {len(manifest)} quarantined pair(s) masked as "
                f"NaN (see the quarantine manifest)",
                RuntimeWarning,
                stacklevel=2,
            )
        return merge_shards(self.plan, values)

    # ------------------------------------------------------------------ #
    # Resume
    # ------------------------------------------------------------------ #
    def _resume_checkpoints(
        self,
        values: Dict[int, np.ndarray],
        fingerprint: str,
        manifest: QuarantineManifest,
    ) -> None:
        """Load valid checkpoints; delete and re-queue invalid ones."""
        if self.checkpoint_dir is None:
            return
        for spec in self.plan.shards:
            try:
                loaded = load_shard_checkpoint(
                    self.checkpoint_dir, self.plan, spec.shard_id, fingerprint
                )
            except CheckpointError as exc:
                warnings.warn(
                    f"re-queueing shard {spec.shard_id}: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                checkpoint_path(self.checkpoint_dir, spec.shard_id).unlink(
                    missing_ok=True
                )
                self.n_checkpoints_requeued += 1
                continue
            if loaded is not None:
                values[spec.shard_id] = loaded
                self.n_shards_resumed += 1
        stored = QuarantineManifest.load(
            self.checkpoint_dir, self.plan.plan_hash(), fingerprint
        )
        if stored is not None:
            # Keep records only for shards actually resumed; anything
            # being recomputed gets a fresh poison resolution.
            for record in stored.pairs:
                if record.shard_id in values:
                    manifest.add(record)

    # ------------------------------------------------------------------ #
    # Drive loop
    # ------------------------------------------------------------------ #
    def _make_backend(self, signatures: Sequence[Signature]) -> WorkerBackend:
        if self.mode == "process":
            try:
                return ProcessWorkerBackend(self.plan, self.settings, signatures)
            except (OSError, ValueError, ImportError) as exc:
                warnings.warn(
                    f"process workers unavailable ({exc}); running shard "
                    "attempts inline",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return InlineWorkerBackend(self.plan, self.settings, signatures)

    def _effective_workers(self) -> int:
        return self.n_workers or os.cpu_count() or 1

    def _drive(
        self,
        backend: WorkerBackend,
        signatures: Sequence[Signature],
        pending: Deque[_ShardTask],
        values: Dict[int, np.ndarray],
        fingerprint: str,
        manifest: QuarantineManifest,
    ) -> None:
        policy = self.policy
        slots = self._effective_workers()
        needed = {task.shard_id for task in pending}
        active: List[_Active] = []
        waiting: List[Tuple[float, _ShardTask]] = []
        failures: Dict[int, int] = {}
        durations: List[float] = []

        def other_attempt_exists(shard_id: int, entry: Optional[_Active]) -> bool:
            if any(a is not entry and a.task.shard_id == shard_id for a in active):
                return True
            if any(task.shard_id == shard_id for _, task in waiting):
                return True
            return any(task.shard_id == shard_id for task in pending)

        def record_failure(entry: _Active, error: BaseException) -> None:
            shard_id = entry.task.shard_id
            if other_attempt_exists(shard_id, entry):
                # A duplicate attempt is still in flight or queued; let
                # it carry the shard instead of burning retry budget.
                return
            failures[shard_id] = failures.get(shard_id, 0) + 1
            if failures[shard_id] > policy.max_retries:
                raise OrchestratorError(
                    f"shard {shard_id} failed {failures[shard_id]} time(s); "
                    f"retry budget ({policy.max_retries}) exhausted; last "
                    f"error: {error}"
                ) from error
            delay = policy.backoff(failures[shard_id], self._rng)
            waiting.append(
                (
                    self._clock() + delay,
                    _ShardTask(shard_id, attempt=entry.task.attempt + 1),
                )
            )
            self.n_retries += 1

        def finish(entry: _Active, shard_values: np.ndarray) -> None:
            shard_id = entry.task.shard_id
            values[shard_id] = np.asarray(shard_values, dtype=float)
            needed.discard(shard_id)
            if self.checkpoint_dir is not None:
                save_shard_checkpoint(
                    self.checkpoint_dir, self.plan, shard_id, shard_values, fingerprint
                )
            self.n_shards_computed += 1
            # First valid result wins: cancel duplicate attempts and
            # discard their partial output.
            for other in [a for a in active if a.task.shard_id == shard_id]:
                backend.kill(other.handle)
                active.remove(other)
                self.n_duplicates_cancelled += 1

        while needed:
            now = self._clock()
            progressed = False

            still_waiting: List[Tuple[float, _ShardTask]] = []
            for ready_at, task in waiting:
                if ready_at <= now and task.shard_id in needed:
                    pending.append(task)
                elif task.shard_id in needed:
                    still_waiting.append((ready_at, task))
            waiting = still_waiting

            while pending and len(active) < slots:
                task = pending.popleft()
                if task.shard_id not in needed:
                    continue
                active.append(_Active(task, backend.start(task.shard_id), self._clock()))
                progressed = True

            if (
                policy.straggler_factor is not None
                and not pending
                and len(active) < slots
                and len(durations) >= policy.straggler_min_done
            ):
                median = float(np.median(durations))
                threshold = policy.straggler_factor * max(median, policy.poll_interval)
                for entry in list(active):
                    if len(active) >= slots:
                        break
                    shard_id = entry.task.shard_id
                    if entry.task.speculative:
                        continue
                    if other_attempt_exists(shard_id, entry):
                        continue
                    if now - entry.started > threshold:
                        duplicate = replace(
                            entry.task, attempt=entry.task.attempt + 1, speculative=True
                        )
                        active.append(
                            _Active(duplicate, backend.start(shard_id), self._clock())
                        )
                        self.n_stragglers_redispatched += 1
                        progressed = True

            for entry in list(active):
                outcome = backend.poll(entry.handle)
                shard_id = entry.task.shard_id
                if outcome is None:
                    if (
                        policy.shard_timeout is not None
                        and now - entry.started > policy.shard_timeout
                    ):
                        backend.kill(entry.handle)
                        active.remove(entry)
                        self.n_timeouts += 1
                        progressed = True
                        record_failure(
                            entry,
                            OrchestratorError(
                                f"shard {shard_id} attempt timed out after "
                                f"{policy.shard_timeout:.3g}s"
                            ),
                        )
                    continue
                active.remove(entry)
                progressed = True
                if shard_id not in needed:
                    continue  # lost the race to a duplicate attempt
                if outcome.status == "ok" and outcome.values is not None:
                    durations.append(max(0.0, self._clock() - entry.started))
                    finish(entry, outcome.values)
                    continue
                error = outcome.error or OrchestratorError(
                    f"shard {shard_id} attempt ended without a result"
                )
                if isinstance(error, SolverError) and error.pair_indices:
                    shard_values = self._resolve_poison_shard(
                        signatures, shard_id, error, manifest
                    )
                    finish(entry, shard_values)
                    continue
                record_failure(entry, error)

            if needed and not progressed:
                self._sleep(policy.poll_interval)

    # ------------------------------------------------------------------ #
    # Poison-pair quarantine
    # ------------------------------------------------------------------ #
    def _resolve_poison_shard(
        self,
        signatures: Sequence[Signature],
        shard_id: int,
        error: SolverError,
        manifest: QuarantineManifest,
    ) -> np.ndarray:
        """Bisect a poisoned shard down to the bad pairs and rescue them.

        Healthy pairs keep their batched solve path (identical grouping
        semantics, hence identical values); pairs isolated as poisonous
        get engine retries, then the per-pair exact LP, and finally a
        NaN mask plus a manifest record.
        """
        rows, cols = self.plan.pair_indices(shard_id)
        pairs = [
            (signatures[i], signatures[j])
            for i, j in zip(rows.tolist(), cols.tolist())
        ]
        out = np.full(len(pairs), np.nan)
        reported = sorted(
            {int(p) for p in (error.pair_indices or ()) if 0 <= int(p) < len(pairs)}
        )
        suspects = reported if reported else list(range(len(pairs)))
        healthy = [k for k in range(len(pairs)) if k not in set(suspects)]
        with self.settings.make_engine() as engine:
            if healthy:
                self._solve_subset(
                    engine, pairs, healthy, out, rows, cols, shard_id, manifest
                )
            self._solve_subset(
                engine, pairs, suspects, out, rows, cols, shard_id, manifest
            )
        return out

    def _solve_subset(
        self,
        engine: PairwiseEMDEngine,
        pairs: Sequence[Tuple[Signature, Signature]],
        indices: Sequence[int],
        out: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        shard_id: int,
        manifest: QuarantineManifest,
    ) -> None:
        """Recursive bisection: solve a pair subset, splitting on failure."""
        if not indices:
            return
        if len(indices) == 1:
            self._rescue_pair(
                engine, pairs, indices[0], out, rows, cols, shard_id, manifest
            )
            return
        indices = list(indices)
        try:
            out[indices] = engine.compute_pairs([pairs[k] for k in indices])
            return
        except SolverError as exc:
            # When the error narrows the failure to a strict subset of
            # this group, isolate exactly those pairs; otherwise halve.
            local = sorted(
                {int(p) for p in (exc.pair_indices or ()) if 0 <= int(p) < len(indices)}
            )
        if local and len(local) < len(indices):
            implicated = [indices[p] for p in local]
            rest = [k for k in indices if k not in set(implicated)]
            halves = (rest, implicated)
        else:
            mid = len(indices) // 2
            halves = (indices[:mid], indices[mid:])
        for half in halves:
            self._solve_subset(
                engine, pairs, half, out, rows, cols, shard_id, manifest
            )

    def _rescue_pair(
        self,
        engine: PairwiseEMDEngine,
        pairs: Sequence[Tuple[Signature, Signature]],
        index: int,
        out: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        shard_id: int,
        manifest: QuarantineManifest,
    ) -> None:
        """Last line of defence for one isolated pair."""
        sig_a, sig_b = pairs[index]
        last_error: Optional[SolverError] = None
        for _ in range(1 + max(0, self.policy.poison_retries)):
            try:
                out[index] = float(engine.compute_pairs([(sig_a, sig_b)])[0])
                # Reaching here at all means the pair poisoned a batched
                # solve: any success is a rescue.
                self.n_poison_rescued += 1
                return
            except SolverError as exc:
                last_error = exc
        try:
            out[index] = float(
                emd(
                    sig_a,
                    sig_b,
                    ground_distance=self.settings.ground_distance,
                    backend="linprog",
                )
            )
            self.n_poison_rescued += 1
            return
        except SolverError as exc:
            out[index] = np.nan
            manifest.add(
                QuarantinedPair(
                    row=int(rows[index]),
                    col=int(cols[index]),
                    shard_id=shard_id,
                    reason=(
                        f"engine failed {1 + max(0, self.policy.poison_retries)} "
                        f"time(s) ({last_error}); exact-LP rescue failed: {exc}"
                    ),
                )
            )

    def _reconcile_quarantine(
        self,
        values: Mapping[int, np.ndarray],
        manifest: QuarantineManifest,
    ) -> QuarantineManifest:
        """Make the manifest match the NaN mask of the merged band exactly.

        Resumed checkpoints may carry masked pairs whose records were
        lost (manifest deleted) or records for pairs a recomputation has
        since rescued; the band itself is the ground truth.
        """
        recorded = {(p.row, p.col): p for p in manifest.pairs}
        final = QuarantineManifest(manifest.plan_hash, manifest.fingerprint)
        for spec in self.plan.shards:
            shard_values = values[spec.shard_id]
            nan_positions = np.flatnonzero(np.isnan(shard_values))
            if nan_positions.size == 0:
                continue
            rows, cols = self.plan.pair_indices(spec.shard_id)
            for k in nan_positions.tolist():
                key = (int(rows[k]), int(cols[k]))
                record = recorded.get(key)
                if record is None:
                    record = QuarantinedPair(
                        row=key[0],
                        col=key[1],
                        shard_id=spec.shard_id,
                        reason="masked pair resumed from a checkpoint "
                        "without a manifest record",
                    )
                final.add(record)
        return final


def orchestrated_banded_matrix(
    signatures: Sequence[Signature],
    bandwidth: int,
    n_shards: int,
    *,
    settings: Optional[EngineSettings] = None,
    policy: Optional[RetryPolicy] = None,
    mode: ShardModeName = "process",
    n_workers: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> BandedDistanceMatrix:
    """Convenience wrapper: plan, orchestrate and merge in one call."""
    plan = ShardPlan.build(len(signatures), bandwidth, n_shards)
    orchestrator = ShardOrchestrator(
        plan,
        settings,
        policy=policy,
        mode=mode,
        n_workers=n_workers,
        checkpoint_dir=checkpoint_dir,
    )
    return orchestrator.run(signatures)


__all__ = [
    "QUARANTINE_FILENAME",
    "compute_backoff",
    "RetryPolicy",
    "QuarantinedPair",
    "QuarantineManifest",
    "WorkerCrash",
    "WorkerHang",
    "InlineWorkerBackend",
    "ProcessWorkerBackend",
    "ShardOrchestrator",
    "orchestrated_banded_matrix",
]
