"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised where a
caller may reasonably want to distinguish failure modes (bad input data,
solver failures, configuration problems).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .emd.orchestrator import QuarantineManifest


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are invalid.

    Inherits from :class:`ValueError` so generic callers that catch
    ``ValueError`` keep working.
    """


class EmptyBagError(ValidationError):
    """Raised when a bag with zero observations is supplied where data is required."""


class SolverError(ReproError, RuntimeError):
    """Raised when an optimisation backend fails to produce a valid solution.

    Attributes
    ----------
    pair_indices:
        When the failure happened inside a *batched* multi-pair solve
        (the block-diagonal LP or the tensor-batched Sinkhorn), the
        indices of the pairs that were stacked into the failing solve —
        batch-local for errors raised by the solvers themselves,
        translated to :meth:`PairwiseEMDEngine.compute_pairs` positions
        by the engine.  ``None`` for single-pair failures.
    shard_id:
        When the failure happened inside a sharded band build
        (:class:`repro.emd.sharding.ShardRunner`), the id of the shard
        whose solve failed; ``pair_indices`` are then positions into
        that shard's pair ordering (see
        :meth:`repro.emd.sharding.ShardPlan.pair_indices`).  ``None``
        outside shard execution.
    shard_rows:
        The failing shard's owned row range ``(row_start, row_stop)``,
        or ``None`` outside shard execution.
    """

    def __init__(
        self,
        *args: object,
        pair_indices: Optional[Iterable[int]] = None,
        shard_id: Optional[int] = None,
        shard_rows: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(*args)
        self.pair_indices: Optional[Tuple[int, ...]] = (
            None if pair_indices is None else tuple(int(i) for i in pair_indices)
        )
        self.shard_id: Optional[int] = None if shard_id is None else int(shard_id)
        self.shard_rows: Optional[Tuple[int, int]] = (
            None
            if shard_rows is None
            else (int(shard_rows[0]), int(shard_rows[1]))
        )


class PoisonPairError(SolverError):
    """Raised by a *strict* orchestrated band build that quarantined pairs.

    The band was fully built — every healthy pair solved, every poison
    pair isolated by bisection and re-tried — but some pairs exhausted
    their rescue budget and were masked as NaN.  Under the
    ``on_poison_pair="strict"`` policy that result must not be consumed
    silently, so the orchestrator raises this error with the full
    quarantine manifest attached instead of returning the degraded band.

    Attributes
    ----------
    manifest:
        The :class:`~repro.emd.orchestrator.QuarantineManifest` listing
        every quarantined ``(i, j)`` pair, its shard and the terminal
        solver failure; also persisted as ``quarantine.json`` in the
        checkpoint directory when one is configured.
    """

    def __init__(
        self,
        *args: object,
        manifest: Optional["QuarantineManifest"] = None,
        pair_indices: Optional[Iterable[int]] = None,
        shard_id: Optional[int] = None,
        shard_rows: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            *args,
            pair_indices=pair_indices,
            shard_id=shard_id,
            shard_rows=shard_rows,
        )
        self.manifest = manifest


class OrchestratorError(ReproError, RuntimeError):
    """Raised when the fault-tolerant shard orchestrator gives up.

    The orchestrator retries crashed and timed-out shard attempts with
    exponential backoff; this error means a shard kept failing past its
    retry budget (or a worker backend broke in a way no retry can fix),
    so the band build cannot terminate.  Transient faults within the
    budget never surface as this error — they are retried silently and
    counted on the orchestrator's ``n_retries``.
    """


class CheckpointError(ReproError, RuntimeError):
    """Raised when a shard checkpoint cannot be used for a resume.

    A checkpoint is *stale* when its recorded shard-plan hash or
    engine-config fingerprint does not match the current run — silently
    merging it would mix distances computed under different solver
    settings, so the runner refuses and asks the caller to clear the
    checkpoint directory (or point at a fresh one) instead.
    """


class BackpressureError(ReproError, RuntimeError):
    """Raised when a stream's bounded ingest queue overflows under the
    ``backpressure="error"`` policy.

    Attributes
    ----------
    stream:
        Name of the stream whose queue was full.
    depth:
        The queue depth (== capacity) at the time of the rejected submit.
    """

    def __init__(
        self,
        *args: object,
        stream: Optional[str] = None,
        depth: Optional[int] = None,
    ) -> None:
        super().__init__(*args)
        self.stream = stream
        self.depth = None if depth is None else int(depth)


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before being fitted."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a detector or estimator is configured inconsistently."""


class DetectorClosedError(ConfigurationError):
    """Raised when a closed detector is asked to consume more data.

    :meth:`repro.core.OnlineBagDetector.close` releases the detector's
    solver resources; a subsequent :meth:`push` would otherwise surface
    whatever low-level error the closed EMD engine happens to raise.
    This error names the actual problem — the detector's lifecycle is
    over — and points at the two valid continuations: create a fresh
    detector, or restore one from a snapshot.  It subclasses
    :class:`ConfigurationError` because that is what the offline
    detector has always raised for use-after-close, so existing
    ``except ConfigurationError`` handlers keep working.
    """
