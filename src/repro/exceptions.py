"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised where a
caller may reasonably want to distinguish failure modes (bad input data,
solver failures, configuration problems).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are invalid.

    Inherits from :class:`ValueError` so generic callers that catch
    ``ValueError`` keep working.
    """


class EmptyBagError(ValidationError):
    """Raised when a bag with zero observations is supplied where data is required."""


class SolverError(ReproError, RuntimeError):
    """Raised when an optimisation backend fails to produce a valid solution.

    Attributes
    ----------
    pair_indices:
        When the failure happened inside a *batched* multi-pair solve
        (the block-diagonal LP or the tensor-batched Sinkhorn), the
        indices of the pairs that were stacked into the failing solve —
        batch-local for errors raised by the solvers themselves,
        translated to :meth:`PairwiseEMDEngine.compute_pairs` positions
        by the engine.  ``None`` for single-pair failures.
    shard_id:
        When the failure happened inside a sharded band build
        (:class:`repro.emd.sharding.ShardRunner`), the id of the shard
        whose solve failed; ``pair_indices`` are then positions into
        that shard's pair ordering (see
        :meth:`repro.emd.sharding.ShardPlan.pair_indices`).  ``None``
        outside shard execution.
    shard_rows:
        The failing shard's owned row range ``(row_start, row_stop)``,
        or ``None`` outside shard execution.
    """

    def __init__(
        self,
        *args: object,
        pair_indices: Optional[Iterable[int]] = None,
        shard_id: Optional[int] = None,
        shard_rows: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(*args)
        self.pair_indices: Optional[Tuple[int, ...]] = (
            None if pair_indices is None else tuple(int(i) for i in pair_indices)
        )
        self.shard_id: Optional[int] = None if shard_id is None else int(shard_id)
        self.shard_rows: Optional[Tuple[int, int]] = (
            None
            if shard_rows is None
            else (int(shard_rows[0]), int(shard_rows[1]))
        )


class CheckpointError(ReproError, RuntimeError):
    """Raised when a shard checkpoint cannot be used for a resume.

    A checkpoint is *stale* when its recorded shard-plan hash or
    engine-config fingerprint does not match the current run — silently
    merging it would mix distances computed under different solver
    settings, so the runner refuses and asks the caller to clear the
    checkpoint directory (or point at a fresh one) instead.
    """


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before being fitted."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a detector or estimator is configured inconsistently."""
