"""Distance-based information estimators for weighted data (paper Section 3.3)."""

from .estimators import (
    DEFAULT_CONFIG,
    EstimatorConfig,
    WeightedInformationEstimator,
    auto_entropy,
    cross_entropy,
    information_content,
)
from .weights import (
    discounted_reference_weights,
    discounted_test_weights,
    normalize_weights,
    resolve_weights,
    uniform_weights,
)

__all__ = [
    "EstimatorConfig",
    "DEFAULT_CONFIG",
    "WeightedInformationEstimator",
    "information_content",
    "auto_entropy",
    "cross_entropy",
    "uniform_weights",
    "discounted_reference_weights",
    "discounted_test_weights",
    "resolve_weights",
    "normalize_weights",
]
