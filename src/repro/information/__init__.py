"""Distance-based information estimators for weighted data (paper Section 3.3)."""

from .estimators import (
    DEFAULT_CONFIG,
    EstimatorConfig,
    WeightedInformationEstimator,
    auto_entropy,
    auto_entropy_batch,
    cross_entropy,
    cross_entropy_batch,
    information_content,
    information_content_batch,
    log_distances,
)
from .weights import (
    discounted_reference_weights,
    discounted_test_weights,
    normalize_weights,
    resolve_weights,
    uniform_weights,
)

__all__ = [
    "EstimatorConfig",
    "DEFAULT_CONFIG",
    "WeightedInformationEstimator",
    "information_content",
    "information_content_batch",
    "auto_entropy",
    "auto_entropy_batch",
    "cross_entropy",
    "cross_entropy_batch",
    "log_distances",
    "uniform_weights",
    "discounted_reference_weights",
    "discounted_test_weights",
    "resolve_weights",
    "normalize_weights",
]
