"""Distance-based information estimators for weighted signature sets.

Implements the three estimators of Hino & Murata, *Information estimators
for weighted observations* (Neural Networks, 2013), in the form used by
the paper (Section 3.3):

* information content ``I(S; S') = c + d Σ_j ψ'_j log EMD(S'_j, S)``
* auto-entropy ``H(S) = c + d Σ_i Σ_{j≠i} ψ_i ψ_j / (1 - ψ_i) log EMD(S_i, S_j)``
* cross-entropy ``H(S, S') = c + d Σ_i Σ_j ψ_i ψ'_j log EMD(S_i, S'_j)``

The constant ``c`` and effective dimension ``d`` cancel in both
change-point scores (the paper notes they are not essential), so they
default to ``0`` and ``1``.  Distances of exactly zero (identical
signatures) are floored at ``min_distance`` to keep the logarithm finite.

The estimators here operate on *precomputed* distance matrices so that the
Bayesian bootstrap can resample the weights ψ thousands of times without
recomputing a single EMD.

Each estimator comes in two forms: a scalar function taking one weight
vector, and a ``*_batch`` variant taking a ``(B, n)`` matrix of weight
vectors and returning all ``B`` values at once.  The batched forms clip
and log the distance matrix exactly once (or accept an already-logged
matrix via ``precomputed_log``, see :func:`log_distances`) and reduce the
replicates with matmul/einsum, which is what makes the Bayesian-bootstrap
confidence intervals of the detector cheap at hundreds of replicates per
inspection point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_weights
from ..exceptions import ValidationError
from ..signatures import Signature


@dataclass(frozen=True)
class EstimatorConfig:
    """Shared constants of the information estimators.

    Attributes
    ----------
    constant:
        The additive constant ``c``; irrelevant for the change-point scores.
    dimension:
        The effective dimension ``d`` multiplying the log-distance terms.
    min_distance:
        Floor applied to distances before taking the logarithm, protecting
        against ``log(0)`` when two signatures coincide.
    """

    constant: float = 0.0
    dimension: float = 1.0
    min_distance: float = 1e-12

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValidationError("dimension must be positive")
        if self.min_distance <= 0:
            raise ValidationError("min_distance must be positive")


DEFAULT_CONFIG = EstimatorConfig()


def log_distances(
    distances: np.ndarray, config: EstimatorConfig = DEFAULT_CONFIG
) -> np.ndarray:
    """Clip ``distances`` at ``config.min_distance`` and take the log.

    This is the only transformation the estimators apply to the distance
    values; precomputing it once and passing the result to the batched
    estimators via ``precomputed_log`` lets a point score and all its
    bootstrap replicates share a single clip-and-log pass.
    """
    clipped = np.maximum(np.asarray(distances, dtype=float), config.min_distance)
    return np.log(clipped)


def _log_distances(distances: np.ndarray, config: EstimatorConfig) -> np.ndarray:
    return log_distances(distances, config)


def _check_weight_matrix(weights: np.ndarray, name: str, n: int) -> np.ndarray:
    """Validate a ``(B, n)`` batch of weight vectors and normalise each row.

    A 1-D vector is promoted to a single-row batch so the scalar and the
    batched call sites can share code.
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a (B, n) weight matrix, got {arr.ndim} dimensions")
    if arr.shape[1] != n:
        raise ValidationError(f"{name} must have {n} columns, got {arr.shape[1]}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    if np.any(arr < 0):
        raise ValidationError(f"{name} must be non-negative")
    totals = arr.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise ValidationError(f"every row of {name} must have positive total mass")
    return arr / totals


def _resolve_log(
    distances: Optional[np.ndarray],
    precomputed_log: Optional[np.ndarray],
    config: EstimatorConfig,
    name: str,
) -> np.ndarray:
    if precomputed_log is not None:
        return np.asarray(precomputed_log, dtype=float)
    if distances is None:
        raise ValidationError(f"either {name} or precomputed_log must be provided")
    return log_distances(distances, config)


def information_content(
    distances_to_set: np.ndarray,
    set_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Information content ``I(S; S')`` of a signature w.r.t. a weighted set.

    Parameters
    ----------
    distances_to_set:
        Vector of length ``m`` with ``EMD(S'_j, S)`` for every signature
        ``S'_j`` of the weighted set.
    set_weights:
        Weights ``ψ'_j`` of the set, which must sum to one (they are
        normalised if they do not).
    config:
        Estimator constants.
    """
    dist = np.asarray(distances_to_set, dtype=float).ravel()
    weights = check_weights(set_weights, "set_weights", normalize=True)
    if dist.shape != weights.shape:
        raise ValidationError(
            f"distances ({dist.shape[0]}) and weights ({weights.shape[0]}) must match"
        )
    return float(config.constant + config.dimension * np.sum(weights * _log_distances(dist, config)))


def information_content_batch(
    distances_to_set: Optional[np.ndarray],
    set_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    precomputed_log: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``I(S; S')`` for a batch of weight vectors (one value per row).

    Parameters
    ----------
    distances_to_set:
        Vector of length ``m`` with ``EMD(S'_j, S)``; may be ``None`` when
        ``precomputed_log`` is given.
    set_weights:
        ``(B, m)`` matrix of weight vectors (rows are normalised if they do
        not sum to one); a 1-D vector is treated as ``B = 1``.
    precomputed_log:
        Optional output of :func:`log_distances` to reuse across calls.
    """
    log_dist = _resolve_log(distances_to_set, precomputed_log, config, "distances_to_set").ravel()
    weights = _check_weight_matrix(set_weights, "set_weights", log_dist.shape[0])
    return config.constant + config.dimension * (weights @ log_dist)


def auto_entropy(
    pairwise_distances: np.ndarray,
    weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Auto-entropy ``H(S)`` of a weighted signature set.

    Parameters
    ----------
    pairwise_distances:
        Symmetric ``(n, n)`` matrix with ``EMD(S_i, S_j)``; the diagonal is
        ignored (the ``j ≠ i`` restriction of the estimator).
    weights:
        Weights ``ψ_i`` of the set (normalised to sum to one).
    """
    dist = np.asarray(pairwise_distances, dtype=float)
    weights = check_weights(weights, "weights", normalize=True)
    n = weights.shape[0]
    if dist.shape != (n, n):
        raise ValidationError(
            f"pairwise_distances must have shape ({n}, {n}), got {dist.shape}"
        )
    log_dist = _log_distances(dist, config)
    # Outer weight product ψ_i ψ_j / (1 - ψ_i), with the diagonal removed.
    denom = 1.0 - weights
    # A weight of exactly 1 can only occur for a singleton set, where the
    # double sum is empty anyway; guard against division by zero.
    denom = np.where(denom <= 0, np.inf, denom)
    outer = (weights / denom)[:, None] * weights[None, :]
    np.fill_diagonal(outer, 0.0)
    return float(config.constant + config.dimension * np.sum(outer * log_dist))


def auto_entropy_batch(
    pairwise_distances: Optional[np.ndarray],
    weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    precomputed_log: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``H(S)`` for a batch of weight vectors (one value per row).

    The ``(n, n)`` distance matrix is clipped and logged once; the ``j ≠ i``
    restriction is applied by zeroing the diagonal of the log matrix, and
    all ``B`` double sums reduce to a single einsum
    ``Σ_ij [ψ_i/(1−ψ_i)] ψ_j log d_ij``.
    """
    log_dist = _resolve_log(pairwise_distances, precomputed_log, config, "pairwise_distances")
    if log_dist.ndim != 2 or log_dist.shape[0] != log_dist.shape[1]:
        raise ValidationError("pairwise_distances must be a square matrix")
    w = _check_weight_matrix(weights, "weights", log_dist.shape[0])
    denom = 1.0 - w
    # As in the scalar path: a weight of exactly 1 only occurs for a
    # singleton set, where the double sum is empty; avoid dividing by zero.
    denom = np.where(denom <= 0, np.inf, denom)
    ratio = w / denom
    off_diag_log = log_dist.copy()
    np.fill_diagonal(off_diag_log, 0.0)
    return config.constant + config.dimension * np.einsum(
        "bi,ij,bj->b", ratio, off_diag_log, w, optimize=True
    )


def cross_entropy(
    cross_distances: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Cross-entropy ``H(S, S')`` between two weighted signature sets.

    Parameters
    ----------
    cross_distances:
        ``(n, m)`` matrix with ``EMD(S_i, S'_j)``.
    weights_a:
        Weights ``ψ_i`` of the first set.
    weights_b:
        Weights ``ψ'_j`` of the second set.
    """
    dist = np.asarray(cross_distances, dtype=float)
    wa = check_weights(weights_a, "weights_a", normalize=True)
    wb = check_weights(weights_b, "weights_b", normalize=True)
    if dist.shape != (wa.shape[0], wb.shape[0]):
        raise ValidationError(
            f"cross_distances must have shape ({wa.shape[0]}, {wb.shape[0]}), got {dist.shape}"
        )
    log_dist = _log_distances(dist, config)
    return float(config.constant + config.dimension * np.sum(np.outer(wa, wb) * log_dist))


def cross_entropy_batch(
    cross_distances: Optional[np.ndarray],
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
    precomputed_log: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``H(S, S')`` for a batch of weight-vector pairs (one value per row).

    ``weights_a`` is ``(B, n)`` and ``weights_b`` is ``(B, m)``; row ``b``
    of the result pairs row ``b`` of each.  The bilinear form
    ``ψᵀ log(D) ψ'`` is evaluated for all rows with one matmul.
    """
    log_dist = _resolve_log(cross_distances, precomputed_log, config, "cross_distances")
    if log_dist.ndim != 2:
        raise ValidationError("cross_distances must be a 2-D matrix")
    wa = _check_weight_matrix(weights_a, "weights_a", log_dist.shape[0])
    wb = _check_weight_matrix(weights_b, "weights_b", log_dist.shape[1])
    if wa.shape[0] != wb.shape[0]:
        raise ValidationError(
            f"weights_a ({wa.shape[0]} rows) and weights_b ({wb.shape[0]} rows) "
            "must have the same batch size"
        )
    return config.constant + config.dimension * np.sum((wa @ log_dist) * wb, axis=1)


class WeightedInformationEstimator:
    """Object-oriented wrapper computing the estimators from signatures.

    This convenience class computes the necessary EMD values internally
    (optionally through an :class:`~repro.emd.EMDCache`) and is the
    friendly entry point for interactive use; the detector itself uses the
    array-level functions above on precomputed distance matrices for speed.
    """

    def __init__(
        self,
        *,
        config: EstimatorConfig = DEFAULT_CONFIG,
        ground_distance: str = "euclidean",
        backend: str = "auto",
        cache: Optional[object] = None,
    ):
        from ..emd import EMDCache  # local import to avoid a cycle at module load

        self.config = config
        self.cache = cache if cache is not None else EMDCache(
            ground_distance=ground_distance, backend=backend
        )

    def _distance(self, a: Signature, b: Signature) -> float:
        return self.cache.distance(a, b)

    def information_content(
        self, signature: Signature, signatures: Sequence[Signature], weights: np.ndarray
    ) -> float:
        """``I(signature; {signatures, weights})``."""
        dist = np.array([self._distance(s, signature) for s in signatures])
        return information_content(dist, weights, config=self.config)

    def auto_entropy(self, signatures: Sequence[Signature], weights: np.ndarray) -> float:
        """``H({signatures, weights})``."""
        n = len(signatures)
        dist = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                dist[i, j] = dist[j, i] = self._distance(signatures[i], signatures[j])
        return auto_entropy(dist, weights, config=self.config)

    def cross_entropy(
        self,
        signatures_a: Sequence[Signature],
        weights_a: np.ndarray,
        signatures_b: Sequence[Signature],
        weights_b: np.ndarray,
    ) -> float:
        """``H({signatures_a, weights_a}, {signatures_b, weights_b})``."""
        dist = np.zeros((len(signatures_a), len(signatures_b)))
        for i, sa in enumerate(signatures_a):
            for j, sb in enumerate(signatures_b):
                dist[i, j] = self._distance(sa, sb)
        return cross_entropy(dist, weights_a, weights_b, config=self.config)
