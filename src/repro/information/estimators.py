"""Distance-based information estimators for weighted signature sets.

Implements the three estimators of Hino & Murata, *Information estimators
for weighted observations* (Neural Networks, 2013), in the form used by
the paper (Section 3.3):

* information content ``I(S; S') = c + d Σ_j ψ'_j log EMD(S'_j, S)``
* auto-entropy ``H(S) = c + d Σ_i Σ_{j≠i} ψ_i ψ_j / (1 - ψ_i) log EMD(S_i, S_j)``
* cross-entropy ``H(S, S') = c + d Σ_i Σ_j ψ_i ψ'_j log EMD(S_i, S'_j)``

The constant ``c`` and effective dimension ``d`` cancel in both
change-point scores (the paper notes they are not essential), so they
default to ``0`` and ``1``.  Distances of exactly zero (identical
signatures) are floored at ``min_distance`` to keep the logarithm finite.

The estimators here operate on *precomputed* distance matrices so that the
Bayesian bootstrap can resample the weights ψ thousands of times without
recomputing a single EMD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_weights
from ..exceptions import ValidationError
from ..signatures import Signature


@dataclass(frozen=True)
class EstimatorConfig:
    """Shared constants of the information estimators.

    Attributes
    ----------
    constant:
        The additive constant ``c``; irrelevant for the change-point scores.
    dimension:
        The effective dimension ``d`` multiplying the log-distance terms.
    min_distance:
        Floor applied to distances before taking the logarithm, protecting
        against ``log(0)`` when two signatures coincide.
    """

    constant: float = 0.0
    dimension: float = 1.0
    min_distance: float = 1e-12

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValidationError("dimension must be positive")
        if self.min_distance <= 0:
            raise ValidationError("min_distance must be positive")


DEFAULT_CONFIG = EstimatorConfig()


def _log_distances(distances: np.ndarray, config: EstimatorConfig) -> np.ndarray:
    clipped = np.maximum(np.asarray(distances, dtype=float), config.min_distance)
    return np.log(clipped)


def information_content(
    distances_to_set: np.ndarray,
    set_weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Information content ``I(S; S')`` of a signature w.r.t. a weighted set.

    Parameters
    ----------
    distances_to_set:
        Vector of length ``m`` with ``EMD(S'_j, S)`` for every signature
        ``S'_j`` of the weighted set.
    set_weights:
        Weights ``ψ'_j`` of the set, which must sum to one (they are
        normalised if they do not).
    config:
        Estimator constants.
    """
    dist = np.asarray(distances_to_set, dtype=float).ravel()
    weights = check_weights(set_weights, "set_weights", normalize=True)
    if dist.shape != weights.shape:
        raise ValidationError(
            f"distances ({dist.shape[0]}) and weights ({weights.shape[0]}) must match"
        )
    return float(config.constant + config.dimension * np.sum(weights * _log_distances(dist, config)))


def auto_entropy(
    pairwise_distances: np.ndarray,
    weights: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Auto-entropy ``H(S)`` of a weighted signature set.

    Parameters
    ----------
    pairwise_distances:
        Symmetric ``(n, n)`` matrix with ``EMD(S_i, S_j)``; the diagonal is
        ignored (the ``j ≠ i`` restriction of the estimator).
    weights:
        Weights ``ψ_i`` of the set (normalised to sum to one).
    """
    dist = np.asarray(pairwise_distances, dtype=float)
    weights = check_weights(weights, "weights", normalize=True)
    n = weights.shape[0]
    if dist.shape != (n, n):
        raise ValidationError(
            f"pairwise_distances must have shape ({n}, {n}), got {dist.shape}"
        )
    log_dist = _log_distances(dist, config)
    # Outer weight product ψ_i ψ_j / (1 - ψ_i), with the diagonal removed.
    denom = 1.0 - weights
    # A weight of exactly 1 can only occur for a singleton set, where the
    # double sum is empty anyway; guard against division by zero.
    denom = np.where(denom <= 0, np.inf, denom)
    outer = (weights / denom)[:, None] * weights[None, :]
    np.fill_diagonal(outer, 0.0)
    return float(config.constant + config.dimension * np.sum(outer * log_dist))


def cross_entropy(
    cross_distances: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    *,
    config: EstimatorConfig = DEFAULT_CONFIG,
) -> float:
    """Cross-entropy ``H(S, S')`` between two weighted signature sets.

    Parameters
    ----------
    cross_distances:
        ``(n, m)`` matrix with ``EMD(S_i, S'_j)``.
    weights_a:
        Weights ``ψ_i`` of the first set.
    weights_b:
        Weights ``ψ'_j`` of the second set.
    """
    dist = np.asarray(cross_distances, dtype=float)
    wa = check_weights(weights_a, "weights_a", normalize=True)
    wb = check_weights(weights_b, "weights_b", normalize=True)
    if dist.shape != (wa.shape[0], wb.shape[0]):
        raise ValidationError(
            f"cross_distances must have shape ({wa.shape[0]}, {wb.shape[0]}), got {dist.shape}"
        )
    log_dist = _log_distances(dist, config)
    return float(config.constant + config.dimension * np.sum(np.outer(wa, wb) * log_dist))


class WeightedInformationEstimator:
    """Object-oriented wrapper computing the estimators from signatures.

    This convenience class computes the necessary EMD values internally
    (optionally through an :class:`~repro.emd.EMDCache`) and is the
    friendly entry point for interactive use; the detector itself uses the
    array-level functions above on precomputed distance matrices for speed.
    """

    def __init__(
        self,
        *,
        config: EstimatorConfig = DEFAULT_CONFIG,
        ground_distance: str = "euclidean",
        backend: str = "auto",
        cache: Optional[object] = None,
    ):
        from ..emd import EMDCache  # local import to avoid a cycle at module load

        self.config = config
        self.cache = cache if cache is not None else EMDCache(
            ground_distance=ground_distance, backend=backend
        )

    def _distance(self, a: Signature, b: Signature) -> float:
        return self.cache.distance(a, b)

    def information_content(
        self, signature: Signature, signatures: Sequence[Signature], weights: np.ndarray
    ) -> float:
        """``I(signature; {signatures, weights})``."""
        dist = np.array([self._distance(s, signature) for s in signatures])
        return information_content(dist, weights, config=self.config)

    def auto_entropy(self, signatures: Sequence[Signature], weights: np.ndarray) -> float:
        """``H({signatures, weights})``."""
        n = len(signatures)
        dist = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                dist[i, j] = dist[j, i] = self._distance(signatures[i], signatures[j])
        return auto_entropy(dist, weights, config=self.config)

    def cross_entropy(
        self,
        signatures_a: Sequence[Signature],
        weights_a: np.ndarray,
        signatures_b: Sequence[Signature],
        weights_b: np.ndarray,
    ) -> float:
        """``H({signatures_a, weights_a}, {signatures_b, weights_b})``."""
        dist = np.zeros((len(signatures_a), len(signatures_b)))
        for i, sa in enumerate(signatures_a):
            for j, sb in enumerate(signatures_b):
                dist[i, j] = self._distance(sa, sb)
        return cross_entropy(dist, weights_a, weights_b, config=self.config)
