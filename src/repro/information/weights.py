"""Weighting schemes for signatures in the reference and test windows.

The information estimators operate on *weighted* sets of signatures
``S = {(S_i, ψ_i)}`` with ``Σ ψ_i = 1`` (paper Section 3.3).  The paper
uses either uniform weights (``ψ_i = 1/τ``) or time-discounted weights
that emphasise bags closer to the inspection point (Eq. 15).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_weights
from ..exceptions import ConfigurationError


def uniform_weights(n: int) -> np.ndarray:
    """Uniform weights ``ψ_i = 1/n`` over ``n`` signatures."""
    n = check_positive_int(n, "n")
    return np.full(n, 1.0 / n)


def discounted_reference_weights(n: int, inspection_offset: int = 0) -> np.ndarray:
    """Time-discounted weights for a reference window of length ``n``.

    Following paper Eq. 15, the weight of the bag at time ``t - k``
    (``k = 1 .. n``) is proportional to ``1 / k``: bags closer to the
    inspection point ``t`` receive larger weight.  The returned array is
    ordered chronologically (oldest bag first) and normalised to sum to 1.

    Parameters
    ----------
    n:
        Window length τ.
    inspection_offset:
        Extra lag between the newest bag in the window and the inspection
        point (0 when the window ends immediately before ``t``).
    """
    n = check_positive_int(n, "n")
    lags = np.arange(n, 0, -1) + inspection_offset  # oldest bag has the largest lag
    raw = 1.0 / lags
    return raw / raw.sum()


def discounted_test_weights(n: int) -> np.ndarray:
    """Time-discounted weights for a test window of length ``n``.

    The bag at time ``t + k`` (``k = 0 .. n-1``) receives weight
    proportional to ``1 / (k + 1)``, i.e. the bag at the inspection point
    itself is emphasised most (paper Eq. 15, second case).  Ordered
    chronologically and normalised.
    """
    n = check_positive_int(n, "n")
    raw = 1.0 / np.arange(1, n + 1)
    return raw / raw.sum()


def resolve_weights(scheme: str, n: int, *, is_test: bool = False) -> np.ndarray:
    """Return a weight vector by scheme name (``"uniform"`` or ``"discounted"``)."""
    name = str(scheme).lower()
    if name == "uniform":
        return uniform_weights(n)
    if name == "discounted":
        return discounted_test_weights(n) if is_test else discounted_reference_weights(n)
    raise ConfigurationError(
        f"unknown weighting scheme {scheme!r}; expected 'uniform' or 'discounted'"
    )


def normalize_weights(weights: np.ndarray) -> np.ndarray:
    """Validate and normalise an arbitrary non-negative weight vector."""
    return check_weights(weights, "weights", normalize=True)
