"""Shared typing vocabulary for the :mod:`repro` package.

Central definitions of the array aliases, seed types and structural
interfaces used across the package, so signatures stay consistent and a
reader can find the contract of "a quantizer" or "a pairwise solver" in
one place.  Everything here is typing-only; importing this module has no
runtime side effects beyond name definitions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Tuple, Union, runtime_checkable

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from .quantize.base import QuantizationResult
    from .signatures.signature import Signature

#: A float64 numpy array — the working dtype of every distance matrix,
#: weight vector and signature position array in the package.
FloatArray = npt.NDArray[np.float64]

#: An integer numpy array (labels, counts, pair indices).
IntArray = npt.NDArray[np.int64]

#: A boolean numpy mask.
BoolArray = npt.NDArray[np.bool_]

#: Anything accepted where randomness needs seeding: ``None`` (fresh
#: entropy), an integer seed, or an already-constructed Generator.  The
#: package never touches the legacy ``np.random.*`` global state
#: (enforced by reprolint rule RL002).
SeedLike = Union[None, int, np.random.Generator]

#: A ``(row, col)`` pair index into a banded distance matrix.
PairIndex = Tuple[int, int]


@runtime_checkable
class PairwiseSolver(Protocol):
    """Structural interface of a per-pair EMD solver.

    Anything callable on two signatures (plus a precomputed ground-cost
    matrix) that returns the transport cost satisfies this protocol; the
    engine's string-dispatched backends and test doubles alike conform
    without inheriting from a common base.
    """

    def __call__(
        self, sig_a: "Signature", sig_b: "Signature", cost: FloatArray
    ) -> float: ...


@runtime_checkable
class Quantizer(Protocol):
    """Structural interface of a bag quantiser (paper Section 3.1).

    :class:`repro.quantize.base.BaseQuantizer` subclasses satisfy this
    protocol, but so does any object exposing ``fit``; signature
    builders depend only on this surface.
    """

    def fit(self, data: np.ndarray) -> "QuantizationResult": ...
