"""Extensions beyond the paper's core method (its stated future work)."""

from .feature_selection import SupervisedFeatureWeighter, dimension_change_scores

__all__ = ["SupervisedFeatureWeighter", "dimension_change_scores"]
