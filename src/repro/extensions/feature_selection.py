"""Supervised feature weighting for bag change-point detection.

The paper's future-work section sketches an *online feature selection*
scheme: given labels ("change" / "no change") for some time steps, learn a
mapping of the observation space that emphasises the dimensions relevant
to changes before signatures are constructed.  This module implements a
practical version of that idea:

* :func:`dimension_change_scores` measures, per dimension, how strongly the
  labelled change points separate the adjacent windows (a Wasserstein-1
  distance between the pooled before/after samples, normalised by the
  typical distance between change-free windows);
* :class:`SupervisedFeatureWeighter` turns those scores into a diagonal
  metric — relevant dimensions are stretched, irrelevant ones shrunk — that
  is applied to every bag before signature construction, and can be
  refined incrementally as new labels arrive (the "online" aspect).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..emd import wasserstein_1d
from ..exceptions import NotFittedError, ValidationError


def _pooled_window(bags: Sequence[np.ndarray], indices: Sequence[int]) -> np.ndarray:
    return np.vstack([check_matrix(bags[i], "bag") for i in indices])


def dimension_change_scores(
    bags: Sequence[np.ndarray],
    change_points: Sequence[int],
    *,
    window: int = 5,
    n_null_pairs: int = 20,
    random_state: Optional[int] = 0,
) -> np.ndarray:
    """Per-dimension relevance scores from labelled change points.

    For every labelled change point ``c`` and every dimension ``j`` the
    Wasserstein-1 distance between the pooled observations of the
    ``window`` bags before ``c`` and the ``window`` bags from ``c`` on is
    computed.  The same distance is computed for randomly chosen
    change-free window pairs (the null scale).  The score of dimension
    ``j`` is the mean change distance divided by the mean null distance:
    values well above 1 mark dimensions that actually carry the changes.
    """
    window = check_positive_int(window, "window")
    if not change_points:
        raise ValidationError("at least one labelled change point is required")
    n_bags = len(bags)
    dimension = check_matrix(bags[0], "bag").shape[1]
    rng = np.random.default_rng(random_state)

    change_distances = np.zeros(dimension)
    n_used = 0
    for change in change_points:
        if change - window < 0 or change + window > n_bags:
            continue
        before = _pooled_window(bags, range(change - window, change))
        after = _pooled_window(bags, range(change, change + window))
        for j in range(dimension):
            change_distances[j] += wasserstein_1d(
                before[:, j], np.ones(len(before)), after[:, j], np.ones(len(after))
            )
        n_used += 1
    if n_used == 0:
        raise ValidationError("no labelled change point has a full window on both sides")
    change_distances /= n_used

    # Null distances from change-free window pairs.
    forbidden = set()
    for change in change_points:
        forbidden.update(range(change - window, change + window))
    candidates = [
        start
        for start in range(0, n_bags - 2 * window)
        if not any(t in forbidden for t in range(start, start + 2 * window))
    ]
    null_distances = np.zeros(dimension)
    n_null = 0
    for _ in range(n_null_pairs):
        if not candidates:
            break
        start = int(rng.choice(candidates))
        before = _pooled_window(bags, range(start, start + window))
        after = _pooled_window(bags, range(start + window, start + 2 * window))
        for j in range(dimension):
            null_distances[j] += wasserstein_1d(
                before[:, j], np.ones(len(before)), after[:, j], np.ones(len(after))
            )
        n_null += 1
    if n_null == 0:
        # No change-free stretch long enough: fall back to the raw distances.
        null_distances = np.ones(dimension)
        n_null = 1
    null_distances = np.maximum(null_distances / n_null, 1e-12)
    return change_distances / null_distances


class SupervisedFeatureWeighter:
    """Diagonal metric learned from labelled change points.

    Parameters
    ----------
    window:
        Window length used when pooling observations around each labelled
        change point.
    power:
        Exponent applied to the relevance scores before normalisation;
        larger values sharpen the selection.
    floor:
        Minimum relative weight of any dimension (keeps every dimension
        minimally visible so that previously unseen change types are not
        completely suppressed).
    """

    def __init__(self, *, window: int = 5, power: float = 1.0, floor: float = 0.05) -> None:
        self.window = check_positive_int(window, "window")
        if power <= 0:
            raise ValidationError("power must be positive")
        if not 0.0 <= floor < 1.0:
            raise ValidationError("floor must lie in [0, 1)")
        self.power = float(power)
        self.floor = float(floor)
        self.scores_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self._n_updates = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _scores_to_weights(self, scores: np.ndarray) -> np.ndarray:
        sharpened = np.power(np.maximum(scores, 1e-12), self.power)
        weights = sharpened / sharpened.max()
        return np.maximum(weights, self.floor)

    def fit(
        self,
        bags: Sequence[np.ndarray],
        change_points: Sequence[int],
        *,
        random_state: Optional[int] = 0,
    ) -> "SupervisedFeatureWeighter":
        """Learn the dimension weights from a labelled stream."""
        self.scores_ = dimension_change_scores(
            bags, change_points, window=self.window, random_state=random_state
        )
        self.weights_ = self._scores_to_weights(self.scores_)
        self._n_updates = 1
        return self

    def partial_fit(
        self,
        bags: Sequence[np.ndarray],
        change_points: Sequence[int],
        *,
        random_state: Optional[int] = 0,
    ) -> "SupervisedFeatureWeighter":
        """Incorporate new labelled data by running-averaging the scores.

        This is the online refinement sketched in the paper: each call
        corresponds to a new batch of labelled time steps.
        """
        new_scores = dimension_change_scores(
            bags, change_points, window=self.window, random_state=random_state
        )
        if self.scores_ is None:
            self.scores_ = new_scores
            self._n_updates = 1
        else:
            if new_scores.shape != self.scores_.shape:
                raise ValidationError("dimensionality changed between partial_fit calls")
            self._n_updates += 1
            rate = 1.0 / self._n_updates
            self.scores_ = (1.0 - rate) * self.scores_ + rate * new_scores
        self.weights_ = self._scores_to_weights(self.scores_)
        return self

    # ------------------------------------------------------------------ #
    # Applying the learned metric
    # ------------------------------------------------------------------ #
    def transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Scale every bag's dimensions by the learned weights."""
        if self.weights_ is None:
            raise NotFittedError("SupervisedFeatureWeighter must be fitted before use")
        out = []
        for bag in bags:
            data = check_matrix(bag, "bag")
            if data.shape[1] != self.weights_.shape[0]:
                raise ValidationError(
                    f"bag has {data.shape[1]} dimensions, weighter was fitted on "
                    f"{self.weights_.shape[0]}"
                )
            out.append(data * self.weights_)
        return out

    def fit_transform(
        self,
        bags: Sequence[np.ndarray],
        change_points: Sequence[int],
        *,
        random_state: Optional[int] = 0,
    ) -> List[np.ndarray]:
        """Fit on the labelled stream and return the re-weighted bags."""
        return self.fit(bags, change_points, random_state=random_state).transform(bags)

    def top_dimensions(self, k: int = 1) -> np.ndarray:
        """Indices of the ``k`` most change-relevant dimensions."""
        if self.scores_ is None:
            raise NotFittedError("SupervisedFeatureWeighter must be fitted before use")
        k = check_positive_int(k, "k")
        return np.argsort(self.scores_)[::-1][:k]
