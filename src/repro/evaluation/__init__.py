"""Evaluation metrics, threshold sweeps and experiment runner."""

from .curves import OperatingPoint, best_f1_point, precision_recall_curve, threshold_sweep
from .metrics import MatchingResult, false_alarm_rate, match_alarms, score_auc
from .runner import ExperimentReport, format_report_table, run_experiment

__all__ = [
    "MatchingResult",
    "match_alarms",
    "false_alarm_rate",
    "score_auc",
    "OperatingPoint",
    "threshold_sweep",
    "precision_recall_curve",
    "best_f1_point",
    "ExperimentReport",
    "run_experiment",
    "format_report_table",
]
