"""Evaluation metrics for change-point detection runs.

The paper evaluates its method qualitatively (do the alerts coincide with
the true change points / scripted events, and are false alarms avoided in
noisy regimes?).  To make those judgements quantitative and repeatable,
this module provides the standard alarm/ground-truth matching metrics used
in the change-point detection literature: precision, recall, F1 within a
tolerance window, mean detection delay, false-alarm rate, and the AUC of a
score curve against the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import check_vector
from ..exceptions import ValidationError


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of matching alarms to true change points.

    Attributes
    ----------
    true_positives:
        Number of true change points matched by at least one alarm inside
        the tolerance window.
    false_positives:
        Number of alarms that match no true change point.
    false_negatives:
        Number of true change points with no matching alarm.
    delays:
        Detection delay (alarm time − change time) of each matched change
        point, in time steps.
    matches:
        List of ``(change_point, alarm_time)`` pairs that were matched.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    delays: Tuple[float, ...]
    matches: Tuple[Tuple[int, int], ...]

    @property
    def precision(self) -> float:
        """Fraction of alarms that correspond to a true change."""
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total > 0 else 0.0

    @property
    def recall(self) -> float:
        """Fraction of true changes that were detected."""
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total > 0 else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def mean_delay(self) -> float:
        """Average detection delay over matched change points (nan if none)."""
        return float(np.mean(self.delays)) if self.delays else float("nan")


def match_alarms(
    alarm_times: Sequence[int],
    change_points: Sequence[int],
    *,
    tolerance: int = 5,
    allow_early: int = 0,
) -> MatchingResult:
    """Greedily match alarms to true change points within a tolerance window.

    A change point at ``c`` is considered detected by an alarm at ``a`` when
    ``c − allow_early ≤ a ≤ c + tolerance``.  Each alarm can confirm at most
    one change point and vice versa; matching proceeds in time order.
    """
    if tolerance < 0 or allow_early < 0:
        raise ValidationError("tolerance and allow_early must be non-negative")
    alarms = sorted(int(a) for a in alarm_times)
    changes = sorted(int(c) for c in change_points)

    used_alarms: set[int] = set()
    matches: List[Tuple[int, int]] = []
    delays: List[float] = []
    for change in changes:
        candidates = [
            a
            for a in alarms
            if a not in used_alarms and change - allow_early <= a <= change + tolerance
        ]
        if candidates:
            alarm = min(candidates, key=lambda a: abs(a - change))
            used_alarms.add(alarm)
            matches.append((change, alarm))
            delays.append(float(alarm - change))

    true_positives = len(matches)
    false_positives = len(alarms) - len(used_alarms)
    false_negatives = len(changes) - true_positives
    return MatchingResult(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        delays=tuple(delays),
        matches=tuple(matches),
    )


def false_alarm_rate(
    alarm_times: Sequence[int],
    change_points: Sequence[int],
    n_steps: int,
    *,
    tolerance: int = 5,
) -> float:
    """Fraction of time steps carrying an alarm not explained by any change."""
    if n_steps <= 0:
        raise ValidationError("n_steps must be positive")
    result = match_alarms(alarm_times, change_points, tolerance=tolerance)
    return result.false_positives / float(n_steps)


def score_auc(
    scores: np.ndarray,
    times: np.ndarray,
    change_points: Sequence[int],
    *,
    tolerance: int = 5,
) -> float:
    """Area under the ROC curve of a score curve against change-point labels.

    Every inspection time within ``tolerance`` steps *after* a change point
    is labelled positive; the AUC is the probability that a positive time
    receives a higher score than a negative one (ties counted as 0.5).
    Returns ``nan`` when either class is empty.
    """
    scores = check_vector(scores, "scores")
    times = np.asarray(times, dtype=int).ravel()
    if scores.shape[0] != times.shape[0]:
        raise ValidationError("scores and times must have the same length")
    labels = np.zeros(scores.shape[0], dtype=bool)
    for change in change_points:
        labels |= (times >= change) & (times <= change + tolerance)
    positives = scores[labels]
    negatives = scores[~labels]
    if positives.size == 0 or negatives.size == 0:
        return float("nan")
    # Mann-Whitney U statistic via rank sums.
    combined = np.concatenate([positives, negatives])
    ranks = combined.argsort().argsort().astype(float) + 1.0
    # Average ranks for ties.
    order = np.argsort(combined, kind="stable")
    sorted_values = combined[order]
    i = 0
    while i < sorted_values.shape[0]:
        j = i
        while j + 1 < sorted_values.shape[0] and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    rank_sum_positive = ranks[: positives.size].sum()
    u_statistic = rank_sum_positive - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))
