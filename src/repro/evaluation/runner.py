"""Experiment runner: detector + dataset + metrics in one call.

Used by the benchmark harnesses and the examples to keep the
"run the detector on this dataset and evaluate against its ground truth"
boilerplate in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core import BagChangePointDetector, DetectionResult, DetectorConfig
from ..datasets.base import BagDataset
from .metrics import MatchingResult, false_alarm_rate, match_alarms, score_auc


@dataclass
class ExperimentReport:
    """Detection result plus its evaluation against the dataset's ground truth."""

    dataset_name: str
    detection: DetectionResult
    matching: MatchingResult
    auc: float
    false_alarm_rate: float
    extra: Dict[str, object] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dictionary suitable for tabular printing."""
        return {
            "dataset": self.dataset_name,
            "n_alerts": int(self.detection.alerts.sum()),
            "precision": round(self.matching.precision, 3),
            "recall": round(self.matching.recall, 3),
            "f1": round(self.matching.f1, 3),
            "mean_delay": (
                round(self.matching.mean_delay, 2)
                if np.isfinite(self.matching.mean_delay)
                else None
            ),
            "auc": round(self.auc, 3) if np.isfinite(self.auc) else None,
            "false_alarm_rate": round(self.false_alarm_rate, 4),
        }


def run_experiment(
    dataset: BagDataset,
    config: Optional[DetectorConfig] = None,
    *,
    tolerance: int = 5,
    detector: Optional[BagChangePointDetector] = None,
    **config_kwargs,
) -> ExperimentReport:
    """Run the bag-of-data detector on a dataset and evaluate the alarms.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.BagDataset` with ground-truth change points.
    config:
        Optional detector configuration; keyword arguments may be given
        instead and are forwarded to :class:`~repro.core.DetectorConfig`.
    tolerance:
        Matching window (in bags) for counting an alarm as a detection.
    detector:
        A pre-built detector instance (overrides ``config``).
    """
    if detector is None:
        detector = (
            BagChangePointDetector(config)
            if config is not None
            else BagChangePointDetector(**config_kwargs)
        )
    detection = detector.detect(dataset.bags)
    matching = match_alarms(
        detection.alarm_times.tolist(), dataset.change_points, tolerance=tolerance
    )
    auc = score_auc(
        detection.scores, detection.times, dataset.change_points, tolerance=tolerance
    )
    far = false_alarm_rate(
        detection.alarm_times.tolist(),
        dataset.change_points,
        len(dataset.bags),
        tolerance=tolerance,
    )
    return ExperimentReport(
        dataset_name=dataset.name,
        detection=detection,
        matching=matching,
        auc=auc,
        false_alarm_rate=far,
        extra={"change_points": list(dataset.change_points)},
    )


def format_report_table(reports) -> str:
    """Render a list of :class:`ExperimentReport` as an aligned text table."""
    rows = [report.row() for report in reports]
    if not rows:
        return "(no results)"
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers}
    lines = [
        "  ".join(str(h).ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
