"""Threshold sweeps: ROC and precision-recall curves for score sequences.

The adaptive thresholding of Section 4 removes the need to pick a fixed
threshold η, but for *comparing* scoring functions (scoreLR vs scoreKL vs
baselines) it is still useful to sweep a threshold over the raw scores and
trace out the resulting operating characteristics.  This module provides
those sweeps for alarm/ground-truth matching with a tolerance window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import check_vector
from ..exceptions import ValidationError
from .metrics import match_alarms


@dataclass(frozen=True)
class OperatingPoint:
    """Detection metrics at one threshold value."""

    threshold: float
    precision: float
    recall: float
    false_alarms: int
    alarms: int


def threshold_sweep(
    scores: np.ndarray,
    times: np.ndarray,
    change_points: Sequence[int],
    *,
    tolerance: int = 5,
    n_thresholds: int = 50,
) -> List[OperatingPoint]:
    """Evaluate alarm quality for a grid of thresholds over the score range.

    At each threshold, every time step whose score exceeds it is treated as
    an alarm and matched against the true change points with the usual
    tolerance window.
    """
    scores = check_vector(scores, "scores")
    times = np.asarray(times, dtype=int).ravel()
    if scores.shape[0] != times.shape[0]:
        raise ValidationError("scores and times must have the same length")
    if n_thresholds < 2:
        raise ValidationError("n_thresholds must be at least 2")

    lo, hi = float(scores.min()), float(scores.max())
    if hi <= lo:
        hi = lo + 1.0
    thresholds = np.linspace(lo, hi, n_thresholds)
    points: List[OperatingPoint] = []
    for threshold in thresholds:
        alarm_times = times[scores > threshold].tolist()
        result = match_alarms(alarm_times, change_points, tolerance=tolerance)
        points.append(
            OperatingPoint(
                threshold=float(threshold),
                precision=result.precision,
                recall=result.recall,
                false_alarms=result.false_positives,
                alarms=len(alarm_times),
            )
        )
    return points


def precision_recall_curve(
    scores: np.ndarray,
    times: np.ndarray,
    change_points: Sequence[int],
    *,
    tolerance: int = 5,
    n_thresholds: int = 50,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall as a function of the score threshold.

    Returns ``(thresholds, precision, recall)`` arrays.
    """
    points = threshold_sweep(
        scores, times, change_points, tolerance=tolerance, n_thresholds=n_thresholds
    )
    return (
        np.array([p.threshold for p in points]),
        np.array([p.precision for p in points]),
        np.array([p.recall for p in points]),
    )


def best_f1_point(
    scores: np.ndarray,
    times: np.ndarray,
    change_points: Sequence[int],
    *,
    tolerance: int = 5,
    n_thresholds: int = 50,
) -> OperatingPoint:
    """The operating point with the highest F1 over the threshold sweep."""
    points = threshold_sweep(
        scores, times, change_points, tolerance=tolerance, n_thresholds=n_thresholds
    )

    def f1(point: OperatingPoint) -> float:
        if point.precision + point.recall == 0:
            return 0.0
        return 2 * point.precision * point.recall / (point.precision + point.recall)

    return max(points, key=f1)
