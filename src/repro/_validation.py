"""Internal validation helpers shared across the library.

These helpers centralise the conversion of user input into well-formed
``numpy`` arrays and the checking of common preconditions (positivity,
shape, finiteness).  They raise :class:`repro.exceptions.ValidationError`
with descriptive messages instead of letting numpy errors propagate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .exceptions import ValidationError

ArrayLike = Union[np.ndarray, Sequence[float], Sequence[Sequence[float]]]


def as_rng(seed: Union[None, int, np.random.Generator]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_matrix(
    data: ArrayLike,
    name: str = "data",
    *,
    allow_empty: bool = False,
    dtype: type = float,
) -> np.ndarray:
    """Validate and return a 2-D float array of shape ``(n, d)``.

    A 1-D input of length ``n`` is promoted to shape ``(n, 1)``.
    """
    arr = np.asarray(data, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be a 1-D or 2-D array, got {arr.ndim} dimensions"
        )
    if not allow_empty and arr.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one row")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_vector(
    data: ArrayLike,
    name: str = "vector",
    *,
    allow_empty: bool = False,
) -> np.ndarray:
    """Validate and return a 1-D float array."""
    arr = np.asarray(data, dtype=float).ravel()
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must contain at least one element")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_weights(
    weights: ArrayLike,
    name: str = "weights",
    *,
    normalize: bool = False,
) -> np.ndarray:
    """Validate a vector of non-negative weights with positive total mass."""
    arr = check_vector(weights, name)
    if np.any(arr < 0):
        raise ValidationError(f"{name} must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        raise ValidationError(f"{name} must have positive total mass")
    if normalize:
        arr = arr / total
    return arr


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate an integer parameter that must be at least ``minimum``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate a probability-like scalar in the open interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValidationError(f"{name} must lie strictly between 0 and 1, got {value}")
    return value


def check_same_dimension(a: np.ndarray, b: np.ndarray, name_a: str, name_b: str) -> None:
    """Raise if two 2-D arrays do not share the same number of columns."""
    if a.shape[1] != b.shape[1]:
        raise ValidationError(
            f"{name_a} and {name_b} must have the same dimensionality: "
            f"{a.shape[1]} != {b.shape[1]}"
        )


def check_window(value: Optional[int], name: str) -> Optional[int]:
    """Validate an optional window length (``None`` or a positive integer)."""
    if value is None:
        return None
    return check_positive_int(value, name, minimum=1)
