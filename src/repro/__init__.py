"""repro — change-point detection in a sequence of bags-of-data.

A full reproduction of Koshijima, Hino & Murata, *Change-Point Detection
in a Sequence of Bags-of-Data* (IEEE TKDE 27(10), 2015).  The package
provides the complete pipeline of the paper — signatures, the Earth
Mover's Distance, distance-based information estimators, the two
change-point scores, and Bayesian-bootstrap adaptive thresholding — plus
every substrate it depends on (vector quantisers, an LP/transportation
solver, bipartite-graph feature extraction), the baselines it compares
against, and the synthetic data generators used in its evaluation.

Quick start
-----------
>>> import numpy as np
>>> from repro import BagChangePointDetector
>>> rng = np.random.default_rng(7)
>>> bags = [rng.normal(0.0, 1.0, size=(60, 2)) for _ in range(12)]
>>> bags += [rng.normal(3.0, 1.0, size=(60, 2)) for _ in range(12)]
>>> detector = BagChangePointDetector(tau=5, tau_test=5, random_state=0)
>>> result = detector.detect(bags)
>>> result.alarm_times  # doctest: +SKIP
array([12])
"""

from .core import (
    Bag,
    BagChangePointDetector,
    BagSequence,
    DetectionResult,
    DetectorConfig,
    OnlineBagDetector,
    ScoreEngine,
    ScorePoint,
)
from .emd import emd, emd_matrix, emd_with_flow
from .exceptions import (
    BackpressureError,
    CheckpointError,
    ConfigurationError,
    DetectorClosedError,
    EmptyBagError,
    NotFittedError,
    ReproError,
    SolverError,
    ValidationError,
)
from .service import StreamSupervisor, SupervisorPolicy
from .signatures import Signature, SignatureBuilder, build_signature

__version__ = "1.0.0"

__all__ = [
    "Bag",
    "BagSequence",
    "BagChangePointDetector",
    "OnlineBagDetector",
    "DetectorConfig",
    "DetectionResult",
    "ScorePoint",
    "ScoreEngine",
    "Signature",
    "SignatureBuilder",
    "build_signature",
    "StreamSupervisor",
    "SupervisorPolicy",
    "emd",
    "emd_with_flow",
    "emd_matrix",
    "ReproError",
    "ValidationError",
    "EmptyBagError",
    "SolverError",
    "BackpressureError",
    "CheckpointError",
    "DetectorClosedError",
    "NotFittedError",
    "ConfigurationError",
    "__version__",
]
