"""Crash-safe streaming detection service.

Public surface:

* :class:`StreamSupervisor` — multiplex many named online detector
  streams with snapshot/restore, per-stream fault isolation and bounded
  ingest queues.
* :class:`SupervisorPolicy` — the robustness knobs (error policy,
  backpressure policy, queue capacity, snapshot cadence).
* :func:`save_stream_snapshot` / :func:`load_stream_snapshot` — the
  stamped, checksummed on-disk form of one stream's state.
* :func:`config_fingerprint` — hash of every score-affecting detector
  setting; a snapshot only restores into a matching config.
"""

from .policies import (
    BACKPRESSURE_POLICIES,
    DEFAULT_SERVICE_HISTORY_LIMIT,
    STREAM_ERROR_POLICIES,
    BackpressurePolicyName,
    StreamErrorPolicyName,
    SupervisorPolicy,
)
from .snapshots import (
    QUARANTINE_MANIFEST_VERSION,
    SNAPSHOT_FORMAT_VERSION,
    config_fingerprint,
    load_quarantine_manifest,
    load_stream_snapshot,
    quarantine_manifest_path,
    save_quarantine_manifest,
    save_stream_snapshot,
    snapshot_path,
)
from .supervisor import StreamSupervisor

__all__ = [
    "BACKPRESSURE_POLICIES",
    "DEFAULT_SERVICE_HISTORY_LIMIT",
    "QUARANTINE_MANIFEST_VERSION",
    "SNAPSHOT_FORMAT_VERSION",
    "STREAM_ERROR_POLICIES",
    "BackpressurePolicyName",
    "StreamErrorPolicyName",
    "StreamSupervisor",
    "SupervisorPolicy",
    "config_fingerprint",
    "load_quarantine_manifest",
    "load_stream_snapshot",
    "quarantine_manifest_path",
    "save_quarantine_manifest",
    "save_stream_snapshot",
    "snapshot_path",
]
