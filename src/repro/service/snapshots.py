"""Stamped, checksummed on-disk snapshots of online detector streams.

The in-memory form of a stream's state is
:meth:`repro.core.OnlineBagDetector.state_dict`; this module gives it a
durable ``.npz`` representation with the same validation semantics as
the shard checkpoints of :mod:`repro.emd.sharding` (format v2 idiom):

* every file is stamped with a **format version**, a **config
  fingerprint** (sha256 over every score-affecting detector setting) and
  a **payload checksum** (sha256 over the exact serialised bytes);
* writes are **atomic** — the payload lands in a temporary file that is
  renamed into place, so a kill mid-write never leaves a half-written
  snapshot under the canonical name;
* loads **never repair**: a missing file returns ``None``, but an
  unreadable, stale, corrupt or fingerprint-mismatched file raises
  :class:`~repro.exceptions.CheckpointError` with an
  expected-vs-found diagnostic.  Silently restoring a stream from a
  snapshot produced under different settings would continue it with the
  wrong computation, which is worse than refusing.

The quarantine manifest of :class:`repro.service.StreamSupervisor` —
the JSON record of streams parked by the ``"quarantine"`` error policy —
is persisted here too, next to the snapshots it refers to.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import zipfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..bootstrap import ConfidenceInterval
from ..core.config import DetectorConfig
from ..core.online import STATE_FORMAT_VERSION
from ..core.results import ScorePoint
from ..exceptions import CheckpointError, ValidationError
from ..signatures import Signature

#: Version stamp written into every stream snapshot; bumped on layout
#: changes so an old file is rejected with a clear message instead of
#: being misread into a silently wrong stream state.
SNAPSHOT_FORMAT_VERSION = 1

#: Version stamp of the quarantine manifest JSON layout.
QUARANTINE_MANIFEST_VERSION = 1

#: Stream names become file names, so they are restricted to a
#: filesystem-safe alphabet up front.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9._-]+$")

#: Serialisation order of the payload arrays; the checksum hashes them
#: in exactly this order, so the order is part of the format.
_PAYLOAD_KEYS: Tuple[str, ...] = (
    "n_seen",
    "sig_indices",
    "sig_offsets",
    "sig_positions",
    "sig_weights",
    "window_matrix",
    "log_matrix",
    "rng_state_json",
    "threshold_times",
    "threshold_bounds",
    "history_times",
    "history_scores",
    "history_gammas",
    "history_alerts",
    "history_bounds",
)


def check_stream_name(name: str) -> str:
    """Validate a stream name (it becomes part of a file name)."""
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ValidationError(
            "stream names must be non-empty and use only letters, digits, "
            f"'.', '_' and '-', got {name!r}"
        )
    return name


def snapshot_path(directory: Union[str, Path], name: str) -> Path:
    """Canonical snapshot file for one stream."""
    return Path(directory) / f"stream_{check_stream_name(name)}.npz"


def quarantine_manifest_path(directory: Union[str, Path]) -> Path:
    """Canonical quarantine manifest file of a snapshot directory."""
    return Path(directory) / "stream_quarantine.json"


# ---------------------------------------------------------------------- #
# Config fingerprint
# ---------------------------------------------------------------------- #
def config_fingerprint(config: DetectorConfig) -> str:
    """Stable hash of every detector setting that changes a score.

    Two configs with equal fingerprints produce bit-identical score
    streams from identical inputs, so a snapshot may only be restored
    into a detector whose config fingerprint matches.  Runtime-only
    knobs — parallelism, sharding, checkpoint paths, ``history_limit`` —
    are deliberately excluded: they change how fast or how much is
    retained, never what is computed.
    """
    gd = config.ground_distance
    if not isinstance(gd, str):
        gd = f"callable:{getattr(gd, '__module__', '?')}.{getattr(gd, '__qualname__', repr(gd))}"
    est = config.estimator
    payload = "|".join(
        (
            f"v{SNAPSHOT_FORMAT_VERSION}",
            f"tau={config.tau}",
            f"tau_test={config.tau_test}",
            f"score={config.score}",
            f"signature_method={config.signature_method}",
            f"n_clusters={config.n_clusters}",
            f"bins={config.bins!r}",
            f"histogram_range={None if config.histogram_range is None else [tuple(map(float, r)) for r in np.atleast_2d(np.asarray(config.histogram_range, dtype=float))]!r}",
            f"ground_distance={gd}",
            f"emd_backend={config.emd_backend}",
            f"sinkhorn_epsilon={config.sinkhorn_epsilon!r}",
            f"sinkhorn_max_iter={config.sinkhorn_max_iter}",
            f"sinkhorn_tol={config.sinkhorn_tol!r}",
            f"sinkhorn_anneal={None if config.sinkhorn_anneal is None else tuple(float(e) for e in config.sinkhorn_anneal)!r}",
            f"lr_inspection_index={config.lr_inspection_index}",
            f"weighting={config.weighting}",
            f"n_bootstrap={config.n_bootstrap}",
            f"alpha={config.alpha!r}",
            f"estimator_constant={est.constant!r}",
            f"estimator_dimension={est.dimension!r}",
            f"estimator_min_distance={est.min_distance!r}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------- #
# State <-> array packing
# ---------------------------------------------------------------------- #
def _encode_rng_state(rng_state: Dict[str, Any]) -> str:
    """JSON-encode a bit-generator state (ndarray members become lists)."""

    def _default(obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.integer):
            return int(obj)
        raise TypeError(f"cannot serialise {type(obj).__name__} in RNG state")

    return json.dumps(rng_state, default=_default)


def _decode_rng_state(encoded: str) -> Dict[str, Any]:
    """Invert :func:`_encode_rng_state` (restores MT19937 key arrays)."""
    state: Dict[str, Any] = json.loads(encoded)
    inner = state.get("state")
    if isinstance(inner, dict) and isinstance(inner.get("key"), list):
        inner["key"] = np.asarray(inner["key"], dtype=np.uint32)
    return state


def _intervals_to_arrays(
    items: List[Tuple[int, ConfidenceInterval]]
) -> Tuple[np.ndarray, np.ndarray]:
    times = np.array([t for t, _ in items], dtype=np.int64)
    bounds = np.array(
        [[iv.lower, iv.upper, iv.level, iv.point] for _, iv in items], dtype=float
    ).reshape(len(items), 4)
    return times, bounds


def _interval_from_row(row: np.ndarray) -> ConfidenceInterval:
    return ConfidenceInterval(
        lower=float(row[0]), upper=float(row[1]), level=float(row[2]), point=float(row[3])
    )


def _pack_state(state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Flatten a detector state dict into named numpy payload arrays."""
    signatures: List[Tuple[int, Signature]] = state["signatures"]
    sig_indices = np.array([int(i) for i, _ in signatures], dtype=np.int64)
    sizes = [sig.size for _, sig in signatures]
    sig_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    if signatures:
        sig_positions = np.vstack([np.asarray(sig.positions, dtype=float) for _, sig in signatures])
        sig_weights = np.concatenate([np.asarray(sig.weights, dtype=float) for _, sig in signatures])
    else:
        sig_positions = np.zeros((0, 1), dtype=float)
        sig_weights = np.zeros(0, dtype=float)

    threshold: Dict[int, ConfidenceInterval] = state["threshold"]
    threshold_times, threshold_bounds = _intervals_to_arrays(
        sorted(threshold.items())
    )

    history: List[ScorePoint] = state["history"]
    history_times = np.array([p.time for p in history], dtype=np.int64)
    history_scores = np.array([p.score for p in history], dtype=float)
    history_gammas = np.array([p.gamma for p in history], dtype=float)
    history_alerts = np.array([p.alert for p in history], dtype=bool)
    _, history_bounds = _intervals_to_arrays([(p.time, p.interval) for p in history])

    return {
        "n_seen": np.array(int(state["n_seen"]), dtype=np.int64),
        "sig_indices": sig_indices,
        "sig_offsets": sig_offsets,
        "sig_positions": sig_positions,
        "sig_weights": sig_weights,
        "window_matrix": np.asarray(state["window_matrix"], dtype=float),
        "log_matrix": np.asarray(state["log_matrix"], dtype=float),
        "rng_state_json": np.array(_encode_rng_state(dict(state["rng_state"]))),
        "threshold_times": threshold_times,
        "threshold_bounds": threshold_bounds,
        "history_times": history_times,
        "history_scores": history_scores,
        "history_gammas": history_gammas,
        "history_alerts": history_alerts,
        "history_bounds": history_bounds,
    }


def _unpack_state(payload: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Invert :func:`_pack_state` back into a detector state dict."""
    sig_indices = np.asarray(payload["sig_indices"], dtype=np.int64)
    sig_offsets = np.asarray(payload["sig_offsets"], dtype=np.int64)
    sig_positions = np.asarray(payload["sig_positions"], dtype=float)
    sig_weights = np.asarray(payload["sig_weights"], dtype=float)
    signatures: List[Tuple[int, Signature]] = []
    for k, index in enumerate(sig_indices):
        lo, hi = int(sig_offsets[k]), int(sig_offsets[k + 1])
        signatures.append(
            (
                int(index),
                Signature(
                    positions=sig_positions[lo:hi],
                    weights=sig_weights[lo:hi],
                    label=int(index),
                ),
            )
        )

    threshold_times = np.asarray(payload["threshold_times"], dtype=np.int64)
    threshold_bounds = np.asarray(payload["threshold_bounds"], dtype=float)
    threshold = {
        int(t): _interval_from_row(threshold_bounds[k])
        for k, t in enumerate(threshold_times)
    }

    history_times = np.asarray(payload["history_times"], dtype=np.int64)
    history_bounds = np.asarray(payload["history_bounds"], dtype=float)
    history = [
        ScorePoint(
            time=int(history_times[k]),
            score=float(payload["history_scores"][k]),
            interval=_interval_from_row(history_bounds[k]),
            gamma=float(payload["history_gammas"][k]),
            alert=bool(payload["history_alerts"][k]),
        )
        for k in range(len(history_times))
    ]

    return {
        "format_version": STATE_FORMAT_VERSION,
        "n_seen": int(payload["n_seen"]),
        "signatures": signatures,
        "window_matrix": np.asarray(payload["window_matrix"], dtype=float),
        "log_matrix": np.asarray(payload["log_matrix"], dtype=float),
        "rng_state": _decode_rng_state(str(payload["rng_state_json"])),
        "threshold": threshold,
        "history": history,
    }


def _payload_checksum(payload: Dict[str, np.ndarray]) -> str:
    """sha256 over the exact payload bytes, in the fixed key order."""
    digest = hashlib.sha256()
    for key in _PAYLOAD_KEYS:
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# Save / load
# ---------------------------------------------------------------------- #
def save_stream_snapshot(
    directory: Union[str, Path],
    name: str,
    state: Dict[str, Any],
    fingerprint: str,
) -> Path:
    """Atomically write one stream's state, stamped for safe restores."""
    version = int(state.get("format_version", -1))
    if version != STATE_FORMAT_VERSION:
        raise ValidationError(
            f"stream state has format version {version}, expected "
            f"{STATE_FORMAT_VERSION}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(directory, name)
    payload = _pack_state(state)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".stream_{name}.", suffix=".tmp.npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                format_version=np.array(SNAPSHOT_FORMAT_VERSION),
                state_version=np.array(STATE_FORMAT_VERSION),
                stream=np.array(name),
                fingerprint=np.array(fingerprint),
                checksum=np.array(_payload_checksum(payload)),
                **payload,
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_stream_snapshot(
    directory: Union[str, Path],
    name: str,
    fingerprint: str,
) -> Optional[Dict[str, Any]]:
    """One stream's snapshotted state, or ``None`` when not yet written.

    Raises :class:`~repro.exceptions.CheckpointError` when a file exists
    but is unreadable, has a different snapshot format, was captured
    under a different config fingerprint, or fails its payload checksum.
    A rejected snapshot is never silently discarded or recomputed — the
    caller decides whether to delete it or to restore the original
    configuration.
    """
    path = snapshot_path(directory, name)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            stamp = str(archive["fingerprint"])
            checksum = str(archive["checksum"])
            payload = {key: np.asarray(archive[key]) for key in _PAYLOAD_KEYS}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"stream snapshot {path} is unreadable: {exc}") from exc
    if version != SNAPSHOT_FORMAT_VERSION:
        raise CheckpointError(
            f"stream snapshot {path} has format version {version}, expected "
            f"{SNAPSHOT_FORMAT_VERSION}; re-snapshot the stream with this "
            "library version"
        )
    if stamp != fingerprint:
        raise CheckpointError(
            f"stream snapshot {path} was captured under a different detector "
            f"configuration: expected fingerprint {fingerprint}, found "
            f"{stamp}; restore the original configuration or delete the "
            "snapshot"
        )
    found_checksum = _payload_checksum(payload)
    if checksum != found_checksum:
        raise CheckpointError(
            f"stream snapshot {path} is corrupt: expected payload checksum "
            f"{checksum}, found {found_checksum}; delete the file (the "
            "stream will restart from scratch)"
        )
    return _unpack_state(payload)


# ---------------------------------------------------------------------- #
# Quarantine manifest
# ---------------------------------------------------------------------- #
def save_quarantine_manifest(
    directory: Union[str, Path], entries: Dict[str, Dict[str, Any]]
) -> Path:
    """Atomically persist the supervisor's quarantined-stream record.

    ``entries`` maps stream names to ``{"n_seen", "reason",
    "fingerprint"}`` dicts; an empty mapping is written out too (it
    records that nothing is quarantined any more).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = quarantine_manifest_path(directory)
    document = {
        "format_version": QUARANTINE_MANIFEST_VERSION,
        "streams": {
            check_stream_name(name): {
                "n_seen": int(entry["n_seen"]),
                "reason": str(entry["reason"]),
                "fingerprint": str(entry["fingerprint"]),
            }
            for name, entry in sorted(entries.items())
        },
    }
    fd, tmp_name = tempfile.mkstemp(
        prefix=".stream_quarantine.", suffix=".tmp.json", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_quarantine_manifest(
    directory: Union[str, Path]
) -> Dict[str, Dict[str, Any]]:
    """The persisted quarantine record, empty when none was written.

    Raises :class:`~repro.exceptions.CheckpointError` for an unreadable
    or wrong-version manifest — a supervisor must not silently resume
    streams whose quarantine record it cannot interpret.
    """
    path = quarantine_manifest_path(directory)
    if not path.exists():
        return {}
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        version = int(document["format_version"])
        streams = document["streams"]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(
            f"quarantine manifest {path} is unreadable: {exc}"
        ) from exc
    if version != QUARANTINE_MANIFEST_VERSION:
        raise CheckpointError(
            f"quarantine manifest {path} has format version {version}, "
            f"expected {QUARANTINE_MANIFEST_VERSION}"
        )
    return {
        str(name): {
            "n_seen": int(entry["n_seen"]),
            "reason": str(entry["reason"]),
            "fingerprint": str(entry["fingerprint"]),
        }
        for name, entry in streams.items()
    }
