"""Robustness policies of the streaming supervisor.

Two orthogonal policy axes govern how :class:`repro.service.StreamSupervisor`
reacts to trouble:

* **Stream-error policy** — what a :class:`~repro.exceptions.SolverError`
  during one stream's push does to that stream (never to its siblings):

  ``"strict"``
      The bag goes back to the front of the stream's queue and the error
      propagates to the caller.  The failed push left the detector
      untouched, so draining again simply retries the same bag.
  ``"degraded"``
      The bag is consumed through the detector's masked path: every
      inspection point whose window still contains it emits a NaN score
      (never an alert), and the stream's scores re-converge bit-for-bit
      with an unfaulted run once the bag has left the window.
  ``"quarantine"``
      The stream is parked: its pre-failure state is snapshotted (when a
      snapshot directory is configured), the failure is recorded in the
      persisted quarantine manifest, its queued bags are shed, and the
      supervisor stops accepting submissions for it until
      :meth:`~repro.service.StreamSupervisor.restore_stream`.

* **Backpressure policy** — what a submission to a full per-stream
  queue does:

  ``"block"``
      The supervisor drains one queued bag of that stream inline
      (synchronously, in the caller) to make room — ingest slows down to
      processing speed instead of growing memory.
  ``"shed"``
      The new bag is dropped and counted on the supervisor's ``n_shed``
      metric.
  ``"error"``
      A :class:`~repro.exceptions.BackpressureError` naming the stream
      and its queue depth is raised.

Orthogonal to both axes, ``batch_drain`` switches the supervisor's
round-robin drain to the **cross-stream batched** scheduler: each round
collects one pending bag per active stream, stacks every (new, window)
signature pair across streams into one
:meth:`~repro.emd.PairwiseEMDEngine.solve_pairs` call, then commits each
stream independently.  Distances are pair-local in the engine's routing,
so the batched drain commits bit-identically to the sequential drain on
the exact backends while paying the batched solver's setup cost once per
round instead of once per stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple, get_args

from ..exceptions import ConfigurationError

StreamErrorPolicyName = Literal["strict", "degraded", "quarantine"]
BackpressurePolicyName = Literal["block", "shed", "error"]

#: Valid ``on_stream_error`` policies, in documentation order.
STREAM_ERROR_POLICIES: Tuple[str, ...] = get_args(StreamErrorPolicyName)
#: Valid ``backpressure`` policies, in documentation order.
BACKPRESSURE_POLICIES: Tuple[str, ...] = get_args(BackpressurePolicyName)

#: History bound substituted for supervised streams whose config leaves
#: ``history_limit`` at ``None`` — a long-running service must not grow
#: its per-stream memory with every emitted point.
DEFAULT_SERVICE_HISTORY_LIMIT = 1024


@dataclass(frozen=True)
class SupervisorPolicy:
    """Robustness knobs of a :class:`repro.service.StreamSupervisor`.

    Attributes
    ----------
    on_stream_error:
        Per-stream fault-isolation policy (see module docstring).
    backpressure:
        Full-queue policy (see module docstring).
    queue_capacity:
        Bound of each stream's ingest queue.
    snapshot_every:
        Snapshot a stream after this many successful pushes (requires
        the supervisor to have a snapshot directory); ``None`` disables
        cadence snapshots — streams are then only snapshotted on
        :meth:`~repro.service.StreamSupervisor.snapshot`, quarantine and
        :meth:`~repro.service.StreamSupervisor.close`.
    batch_drain:
        Route round-robin :meth:`~repro.service.StreamSupervisor.drain`
        through the cross-stream batched scheduler: one stacked solve
        per round across all active streams instead of one solve per
        stream (see module docstring).  Single-stream drains
        (``drain(name=...)``) and inline backpressure drains stay
        sequential either way.
    """

    on_stream_error: StreamErrorPolicyName = "strict"
    backpressure: BackpressurePolicyName = "block"
    queue_capacity: int = 64
    snapshot_every: Optional[int] = None
    batch_drain: bool = False

    def __post_init__(self) -> None:
        if self.on_stream_error not in STREAM_ERROR_POLICIES:
            raise ConfigurationError(
                f"on_stream_error must be one of {STREAM_ERROR_POLICIES}, "
                f"got {self.on_stream_error!r}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if not isinstance(self.queue_capacity, int) or self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be a positive integer, got {self.queue_capacity!r}"
            )
        if self.snapshot_every is not None and (
            not isinstance(self.snapshot_every, int) or self.snapshot_every < 1
        ):
            raise ConfigurationError(
                f"snapshot_every must be a positive integer or None, "
                f"got {self.snapshot_every!r}"
            )
        if not isinstance(self.batch_drain, bool):
            raise ConfigurationError(
                f"batch_drain must be a bool, got {self.batch_drain!r}"
            )
