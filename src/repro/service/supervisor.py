"""Crash-safe multiplexing of many online detector streams.

:class:`StreamSupervisor` runs any number of named
:class:`~repro.core.OnlineBagDetector` streams behind bounded ingest
queues, with three robustness layers:

1. **Snapshot/restore** — streams are periodically serialised into
   stamped, checksummed snapshot files
   (:mod:`repro.service.snapshots`); a supervisor pointed at the same
   directory restores every stream on :meth:`add_stream` and continues
   it bit-identically.
2. **Per-stream fault isolation** — a solver failure during one
   stream's push is handled by the configured
   :class:`~repro.service.SupervisorPolicy` (strict / degraded /
   quarantine) and never perturbs sibling streams: each stream owns its
   detector, generator and queue, and the detector's push-retryability
   contract guarantees the failed stream itself is left consistent.
3. **Backpressure** — per-stream queues are bounded; a full queue
   blocks (drains inline), sheds, or raises, per policy, and the
   supervisor exposes shed/quarantine/restore counters and queue depths
   as :attr:`metrics`.

The supervisor is deliberately synchronous: :meth:`submit` enqueues,
:meth:`drain` processes.  That keeps the scheduling deterministic (and
the bit-identity guarantees testable); wrapping it in threads or an
event loop is the caller's choice.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.config import DetectorConfig
from ..core.online import OnlineBagDetector, PendingPush
from ..core.results import ScorePoint
from ..emd.batch import PairwiseEMDEngine
from ..emd.sharding import EngineSettings
from ..exceptions import BackpressureError, SolverError, ValidationError
from ..signatures import Signature
from .policies import DEFAULT_SERVICE_HISTORY_LIMIT, SupervisorPolicy
from .snapshots import (
    check_stream_name,
    config_fingerprint,
    load_quarantine_manifest,
    load_stream_snapshot,
    save_quarantine_manifest,
    save_stream_snapshot,
)

#: Stream lifecycle states.
ACTIVE = "active"
QUARANTINED = "quarantined"


@dataclasses.dataclass
class _StreamState:
    """Book-keeping of one supervised stream (internal)."""

    name: str
    config: DetectorConfig
    fingerprint: str
    engine_key: str
    detector: OnlineBagDetector
    queue: Deque[np.ndarray]
    status: str = ACTIVE
    pushes_since_snapshot: int = 0
    quarantine_reason: Optional[str] = None


class StreamSupervisor:
    """Multiplex many named online detector streams, crash-safely.

    Parameters
    ----------
    config:
        Default :class:`~repro.core.DetectorConfig` for streams added
        without their own config.  When its ``history_limit`` is
        ``None``, supervised streams get a bounded default
        (:data:`~repro.service.DEFAULT_SERVICE_HISTORY_LIMIT`) — a
        service must not grow per-stream memory forever.
    policy:
        The :class:`~repro.service.SupervisorPolicy`; defaults to
        strict errors, blocking backpressure, no cadence snapshots.
    snapshot_dir:
        Directory for stream snapshots and the quarantine manifest.
        ``None`` disables persistence (quarantine then parks streams
        in memory only).
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        policy: Optional[SupervisorPolicy] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.snapshot_dir = None if snapshot_dir is None else str(snapshot_dir)
        self._streams: Dict[str, _StreamState] = {}
        self._quarantine: Dict[str, Dict[str, Any]] = (
            load_quarantine_manifest(self.snapshot_dir)
            if self.snapshot_dir is not None
            else {}
        )
        self._closed = False
        self.n_shed_backpressure = 0
        self.n_shed_quarantined = 0
        self.n_discarded_on_close = 0
        self.n_quarantined = 0
        self.n_restored = 0
        self.n_degraded_points = 0
        self.n_snapshots_written = 0
        #: Points emitted outside a drain() call (inline backpressure
        #: drains, batched rounds aborted by a strict error) — returned,
        #: and cleared, by the next drain().
        self._pending_emissions: List[Tuple[str, ScorePoint]] = []
        #: Shared solve engines of the batched drain, keyed by the
        #: solver-relevant EngineSettings fingerprint of the stream
        #: configs — streams with identical solver settings share one
        #: engine (and therefore one stacked solve per round).
        self._batch_engines: Dict[str, PairwiseEMDEngine] = {}

    @property
    def n_shed(self) -> int:
        """Total dropped bags — sum of the per-cause shed counters.

        Kept for compatibility; prefer the per-cause counters
        ``n_shed_backpressure`` (shed-policy drops on a full queue),
        ``n_shed_quarantined`` (submissions to — and queues cleared
        by — quarantine) and ``n_discarded_on_close`` (queued bags
        discarded by :meth:`close`).
        """
        return (
            self.n_shed_backpressure
            + self.n_shed_quarantined
            + self.n_discarded_on_close
        )

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #
    def _service_config(self, config: Optional[DetectorConfig]) -> DetectorConfig:
        base = config if config is not None else self.config
        if base.history_limit is None:
            base = dataclasses.replace(
                base, history_limit=DEFAULT_SERVICE_HISTORY_LIMIT
            )
        return base

    def add_stream(
        self, name: str, config: Optional[DetectorConfig] = None
    ) -> OnlineBagDetector:
        """Register a stream; restore it from its snapshot when one exists.

        A stream recorded in the persisted quarantine manifest comes
        back *parked* — its snapshot (taken at quarantine time) is
        restored, but submissions are shed until
        :meth:`restore_stream` un-parks it explicitly.
        """
        check_stream_name(name)
        if name in self._streams:
            raise ValidationError(f"stream {name!r} is already registered")
        stream_config = self._service_config(config)
        fingerprint = config_fingerprint(stream_config)
        detector: Optional[OnlineBagDetector] = None
        if self.snapshot_dir is not None:
            state = load_stream_snapshot(self.snapshot_dir, name, fingerprint)
            if state is not None:
                detector = OnlineBagDetector.from_state_dict(state, stream_config)
                self.n_restored += 1
        if detector is None:
            detector = OnlineBagDetector(stream_config)
        stream = _StreamState(
            name=name,
            config=stream_config,
            fingerprint=fingerprint,
            engine_key=EngineSettings.from_config(stream_config).fingerprint(),
            detector=detector,
            queue=deque(),
        )
        if name in self._quarantine:
            stream.status = QUARANTINED
            stream.quarantine_reason = self._quarantine[name]["reason"]
        self._streams[name] = stream
        return detector

    def _stream(self, name: str) -> _StreamState:
        try:
            return self._streams[name]
        except KeyError:
            raise ValidationError(
                f"unknown stream {name!r}; register it with add_stream() first"
            ) from None

    @property
    def stream_names(self) -> List[str]:
        """Names of the registered streams, in registration order."""
        return list(self._streams)

    def detector(self, name: str) -> OnlineBagDetector:
        """The detector behind one stream (read access for history etc.)."""
        return self._stream(name).detector

    def status(self, name: str) -> str:
        """``"active"`` or ``"quarantined"``."""
        return self._stream(name).status

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def submit(self, name: str, bag: np.ndarray) -> bool:
        """Enqueue one bag for a stream; returns whether it was accepted.

        A quarantined stream sheds every submission (counted on
        ``n_shed_quarantined``).  A full queue follows the backpressure
        policy: ``"block"`` processes one queued bag of this stream
        inline to make room — any point that push emits is buffered and
        delivered by the next :meth:`drain` — ``"shed"`` drops the new
        bag (counted on ``n_shed_backpressure``), ``"error"`` raises
        :class:`~repro.exceptions.BackpressureError`.
        """
        self._check_open()
        stream = self._stream(name)
        if stream.status == QUARANTINED:
            self.n_shed_quarantined += 1
            return False
        if len(stream.queue) >= self.policy.queue_capacity:
            if self.policy.backpressure == "shed":
                self.n_shed_backpressure += 1
                return False
            if self.policy.backpressure == "error":
                raise BackpressureError(
                    f"ingest queue of stream {name!r} is full "
                    f"({len(stream.queue)} bags); drain the supervisor or "
                    "raise queue_capacity",
                    stream=name,
                    depth=len(stream.queue),
                )
            # "block": make room by processing the oldest queued bag now.
            # The emitted point (possibly an alarm) must not be dropped
            # on the floor just because it surfaced outside a drain()
            # call — buffer it for the next drain.
            self._collect(stream, limit=1, into=self._pending_emissions)
            if stream.status == QUARANTINED:
                self.n_shed_quarantined += 1
                return False
        stream.queue.append(np.asarray(bag, dtype=float))
        return True

    def drain(
        self, name: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Tuple[str, ScorePoint]]:
        """Process queued bags; return the emitted ``(stream, point)`` pairs.

        Points that were emitted *between* drains — by inline
        backpressure pushes under the ``"block"`` policy, or by a
        batched round aborted by a strict-mode error — are returned
        first (and their buffer cleared), whatever ``name`` says.

        With ``name`` only that stream is drained; otherwise streams are
        drained round-robin (one bag per stream per round) so no stream
        can starve its siblings.  When the policy's ``batch_drain`` is
        on, the round-robin path runs each round as one cross-stream
        stacked solve (see :meth:`drain_batched`); single-stream drains
        stay sequential.

        ``limit`` caps the number of bags **attempted** in this call,
        not the number of points emitted: a bag that warms up a window
        (no point yet), is consumed masked, or faults its stream into
        quarantine still consumes one unit of ``limit``.  Counting
        attempts keeps a faulting stream from monopolising the drain —
        with emission-counting, a stream that never emits would pin the
        round-robin loop on itself forever.  Buffered between-drain
        points do not consume ``limit`` (their bags were already
        processed when they were buffered).
        """
        self._check_open()
        emitted: List[Tuple[str, ScorePoint]] = []
        if self._pending_emissions:
            emitted.extend(self._pending_emissions)
            self._pending_emissions.clear()
        remaining = limit
        if name is not None:
            self._collect(self._stream(name), limit=remaining, into=emitted)
            return emitted
        if self.policy.batch_drain:
            self._drain_batched(emitted, remaining)
            return emitted
        while remaining is None or remaining > 0:
            progressed = False
            for stream in list(self._streams.values()):
                if stream.status != ACTIVE or not stream.queue:
                    continue
                n = self._collect(stream, limit=1, into=emitted)
                progressed = True
                if remaining is not None:
                    remaining -= n
                    if remaining <= 0:
                        return emitted
            if not progressed:
                break
        return emitted

    def _collect(
        self,
        stream: _StreamState,
        limit: Optional[int] = None,
        into: Optional[List[Tuple[str, ScorePoint]]] = None,
    ) -> int:
        """Process up to ``limit`` queued bags of one stream; count them."""
        processed = 0
        while stream.queue and stream.status == ACTIVE:
            if limit is not None and processed >= limit:
                break
            point = self._process_one(stream)
            processed += 1
            if point is not None and into is not None:
                into.append((stream.name, point))
        return processed

    # ------------------------------------------------------------------ #
    # Cross-stream batched drain
    # ------------------------------------------------------------------ #
    def drain_batched(
        self, limit: Optional[int] = None
    ) -> List[Tuple[str, ScorePoint]]:
        """Round-robin drain with one stacked solve per round.

        Each round pops one bag per active stream, runs
        :meth:`~repro.core.OnlineBagDetector.prepare` on each (no state
        mutates), stacks every (new, window) signature pair of every
        stream sharing solver settings into **one**
        :meth:`~repro.emd.PairwiseEMDEngine.solve_pairs` call, scatters
        the distances back, and commits each stream independently — so
        the batched backends amortise their setup over the whole fleet
        instead of paying it per stream.  The engine's routing is
        pair-local, so on the exact backends every stream commits
        bit-identically to a sequential :meth:`drain`.

        Fault isolation survives the stacking: a
        :class:`~repro.exceptions.SolverError` from the stacked solve is
        attributed to the owning streams through its ``pair_indices``
        and the round's pair→stream map; only those streams take the
        ``on_stream_error`` policy, and every sibling that merely shared
        the stack is rescued by re-solving its own pairs alone (exactly
        the sequential solve).  An unattributable error (no
        ``pair_indices``) re-solves every stream alone instead.  In
        strict mode the healthy streams of the round commit *before*
        the error propagates, and the points they emitted are buffered
        for the next :meth:`drain` so the raise cannot lose them.

        ``limit`` caps attempted bags, with the same attempts-not-
        emissions semantics as :meth:`drain`.
        """
        self._check_open()
        emitted: List[Tuple[str, ScorePoint]] = []
        if self._pending_emissions:
            emitted.extend(self._pending_emissions)
            self._pending_emissions.clear()
        self._drain_batched(emitted, limit)
        return emitted

    def _drain_batched(
        self, into: List[Tuple[str, ScorePoint]], remaining: Optional[int]
    ) -> None:
        while remaining is None or remaining > 0:
            n = self._drain_round_batched(into, remaining)
            if n == 0:
                break
            if remaining is not None:
                remaining -= n

    def _batch_engine(self, stream: _StreamState) -> PairwiseEMDEngine:
        """The shared solve engine for this stream's solver settings."""
        engine = self._batch_engines.get(stream.engine_key)
        if engine is None:
            engine = EngineSettings.from_config(stream.config).make_engine()
            self._batch_engines[stream.engine_key] = engine
        return engine

    @staticmethod
    def _implicated(exc: SolverError, owners: List[int]) -> "set[int]":
        """Prepared-push indices owning the pairs a stacked solve blamed.

        An error without ``pair_indices`` implicates nobody — the
        caller then re-solves every member alone and lets the
        individual solves assign blame.
        """
        if exc.pair_indices is None:
            return set()
        return {owners[j] for j in exc.pair_indices if 0 <= j < len(owners)}

    def _drain_round_batched(
        self, into: List[Tuple[str, ScorePoint]], max_streams: Optional[int]
    ) -> int:
        """One batched round; returns the number of bags attempted."""
        # Phase 1 — pop one bag per eligible stream and prepare it
        # (quantise + enumerate pairs; no detector state mutates yet).
        prepared: List[Tuple[_StreamState, np.ndarray, PendingPush]] = []
        failures: List[
            Tuple[_StreamState, np.ndarray, Optional[PendingPush], SolverError]
        ] = []
        attempts = 0
        for stream in list(self._streams.values()):
            if max_streams is not None and attempts >= max_streams:
                break
            if stream.status != ACTIVE or not stream.queue:
                continue
            bag = stream.queue.popleft()
            attempts += 1
            try:
                pending = stream.detector.prepare(bag)
            except SolverError as exc:
                failures.append((stream, bag, None, exc))
                continue
            prepared.append((stream, bag, pending))

        # Phase 2 — one stacked solve per solver-settings group, with
        # failures attributed back through the pair→stream map.
        distances: Dict[int, np.ndarray] = {}
        groups: Dict[str, List[int]] = {}
        for i, (stream, _, _) in enumerate(prepared):
            groups.setdefault(stream.engine_key, []).append(i)
        for members in groups.values():
            engine = self._batch_engine(prepared[members[0]][0])
            flat_pairs: List[Tuple[Signature, Signature]] = []
            owners: List[int] = []
            slices: Dict[int, slice] = {}
            for i in members:
                pending = prepared[i][2]
                start = len(flat_pairs)
                flat_pairs.extend(pending.pairs)
                owners.extend([i] * len(pending.pairs))
                slices[i] = slice(start, start + len(pending.pairs))
            try:
                stacked = engine.solve_pairs(flat_pairs)
            except SolverError as exc:
                implicated = self._implicated(exc, owners)
                for i in members:
                    stream, bag, pending = prepared[i]
                    if i in implicated:
                        failures.append((stream, bag, pending, exc))
                        continue
                    # Rescue a sibling that merely shared the stack:
                    # re-solve its own pairs alone — exactly the
                    # sequential push's solve, so it commits
                    # bit-identically.
                    try:
                        distances[i] = engine.solve_pairs(list(pending.pairs))
                    except SolverError as solo_exc:
                        failures.append((stream, bag, pending, solo_exc))
            else:
                for i in members:
                    distances[i] = stacked[slices[i]]

        # Phase 3 — commit the solved streams, in registration order.
        for i, (stream, _, pending) in enumerate(prepared):
            if i not in distances:
                continue
            point = stream.detector.commit(pending, distances[i])
            self._after_push(stream)
            if point is not None:
                into.append((stream.name, point))

        # Phase 4 — apply the stream-error policy to the failures.
        strict_error: Optional[SolverError] = None
        for stream, bag, maybe_pending, exc in failures:
            if self.policy.on_stream_error == "strict":
                if maybe_pending is not None:
                    stream.detector.rollback(maybe_pending)
                stream.queue.appendleft(bag)
                if strict_error is None:
                    strict_error = exc
                continue
            if self.policy.on_stream_error == "degraded":
                warnings.warn(
                    f"stream {stream.name!r}: solver failed "
                    f"({exc}); consuming the bag masked — scores touching it "
                    "will be NaN",
                    RuntimeWarning,
                    stacklevel=4,
                )
                if maybe_pending is not None:
                    point = stream.detector.commit(
                        maybe_pending, np.full(len(maybe_pending.pairs), np.nan)
                    )
                else:
                    point = stream.detector.push_masked(bag)
                self.n_degraded_points += 1
                self._after_push(stream)
                if point is not None:
                    into.append((stream.name, point))
                continue
            # "quarantine": rewind the prepared push first, so the
            # snapshot taken while parking captures the pre-failure
            # state (generator included).
            if maybe_pending is not None:
                stream.detector.rollback(maybe_pending)
            self._quarantine_stream(stream, exc)
        if strict_error is not None:
            # The caller never sees a return value when we raise — park
            # every point collected by this drain call for the next one
            # instead of losing them.
            self._pending_emissions.extend(into)
            into.clear()
            raise strict_error
        return attempts

    def _process_one(self, stream: _StreamState) -> Optional[ScorePoint]:
        """Push the oldest queued bag of one stream, applying the error policy."""
        bag = stream.queue.popleft()
        try:
            point = stream.detector.push(bag)
        except SolverError as exc:
            return self._handle_stream_error(stream, bag, exc)
        self._after_push(stream)
        return point

    def _handle_stream_error(
        self, stream: _StreamState, bag: np.ndarray, exc: SolverError
    ) -> Optional[ScorePoint]:
        policy = self.policy.on_stream_error
        if policy == "strict":
            # The failed push left the detector untouched, so the bag
            # goes back to the front of the queue and the next drain of
            # this stream retries it.
            stream.queue.appendleft(bag)
            raise exc
        if policy == "degraded":
            warnings.warn(
                f"stream {stream.name!r}: solver failed "
                f"({exc}); consuming the bag masked — scores touching it "
                "will be NaN",
                RuntimeWarning,
                stacklevel=4,
            )
            point = stream.detector.push_masked(bag)
            self.n_degraded_points += 1
            self._after_push(stream)
            return point
        # "quarantine": park the stream on its pre-failure state.
        self._quarantine_stream(stream, exc)
        return None

    def _quarantine_stream(self, stream: _StreamState, exc: SolverError) -> None:
        """Park a stream on its pre-failure state after a solver error."""
        reason = f"{type(exc).__name__}: {exc}"
        if self.snapshot_dir is not None:
            self._write_snapshot(stream)
        self._quarantine[stream.name] = {
            "n_seen": stream.detector.n_seen,
            "reason": reason,
            "fingerprint": stream.fingerprint,
        }
        if self.snapshot_dir is not None:
            save_quarantine_manifest(self.snapshot_dir, self._quarantine)
        self.n_shed_quarantined += len(stream.queue)
        stream.queue.clear()
        stream.status = QUARANTINED
        stream.quarantine_reason = reason
        self.n_quarantined += 1
        warnings.warn(
            f"stream {stream.name!r} quarantined after {reason}",
            RuntimeWarning,
            stacklevel=5,
        )

    def _after_push(self, stream: _StreamState) -> None:
        stream.pushes_since_snapshot += 1
        cadence = self.policy.snapshot_every
        if (
            cadence is not None
            and self.snapshot_dir is not None
            and stream.pushes_since_snapshot >= cadence
        ):
            self._write_snapshot(stream)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def _write_snapshot(self, stream: _StreamState) -> None:
        if self.snapshot_dir is None:
            raise ValidationError(
                "this StreamSupervisor has no snapshot_dir; configure one "
                "to snapshot streams"
            )
        save_stream_snapshot(
            self.snapshot_dir,
            stream.name,
            stream.detector.state_dict(),
            stream.fingerprint,
        )
        stream.pushes_since_snapshot = 0
        self.n_snapshots_written += 1

    def snapshot(self, name: Optional[str] = None) -> None:
        """Snapshot one stream (or, with ``name=None``, every stream)."""
        streams = (
            [self._stream(name)] if name is not None else list(self._streams.values())
        )
        for stream in streams:
            self._write_snapshot(stream)

    def restore_stream(self, name: str) -> OnlineBagDetector:
        """Un-park a quarantined stream from its last snapshot.

        The stream's detector is rebuilt from its snapshot (falling back
        to the parked in-memory detector when no snapshot directory is
        configured), its quarantine manifest entry is cleared, and it
        accepts submissions again.
        """
        stream = self._stream(name)
        if self.snapshot_dir is not None:
            state = load_stream_snapshot(self.snapshot_dir, name, stream.fingerprint)
            if state is not None:
                stream.detector = OnlineBagDetector.from_state_dict(
                    state, stream.config
                )
        stream.status = ACTIVE
        stream.quarantine_reason = None
        stream.pushes_since_snapshot = 0
        if self._quarantine.pop(name, None) is not None and self.snapshot_dir is not None:
            save_quarantine_manifest(self.snapshot_dir, self._quarantine)
        self.n_restored += 1
        return stream.detector

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def metrics(self) -> Dict[str, Any]:
        """Robustness counters and per-stream queue depths."""
        return {
            "n_streams": len(self._streams),
            "n_shed": self.n_shed,
            "n_shed_backpressure": self.n_shed_backpressure,
            "n_shed_quarantined": self.n_shed_quarantined,
            "n_discarded_on_close": self.n_discarded_on_close,
            "n_quarantined": self.n_quarantined,
            "n_restored": self.n_restored,
            "n_degraded_points": self.n_degraded_points,
            "n_snapshots_written": self.n_snapshots_written,
            "n_pending_emissions": len(self._pending_emissions),
            "queue_depths": {
                name: len(stream.queue) for name, stream in self._streams.items()
            },
        }

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("this StreamSupervisor has been closed")

    def close(self) -> None:
        """Snapshot active streams (when persisting) and close all detectors.

        Bags still queued at close time are discarded and counted on
        ``n_discarded_on_close``.  Idempotent; safe to call from
        ``finally`` blocks and ``__exit__``.  Detector close is itself
        idempotent, so a stream whose detector was closed directly does
        not break teardown.
        """
        if self._closed:
            return
        self._closed = True
        for stream in self._streams.values():
            self.n_discarded_on_close += len(stream.queue)
            stream.queue.clear()
            if self.snapshot_dir is not None and stream.status == ACTIVE:
                self._write_snapshot(stream)
            stream.detector.close()
        for engine in self._batch_engines.values():
            engine.close()
        self._batch_engines.clear()

    def __enter__(self) -> "StreamSupervisor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
