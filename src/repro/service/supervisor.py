"""Crash-safe multiplexing of many online detector streams.

:class:`StreamSupervisor` runs any number of named
:class:`~repro.core.OnlineBagDetector` streams behind bounded ingest
queues, with three robustness layers:

1. **Snapshot/restore** — streams are periodically serialised into
   stamped, checksummed snapshot files
   (:mod:`repro.service.snapshots`); a supervisor pointed at the same
   directory restores every stream on :meth:`add_stream` and continues
   it bit-identically.
2. **Per-stream fault isolation** — a solver failure during one
   stream's push is handled by the configured
   :class:`~repro.service.SupervisorPolicy` (strict / degraded /
   quarantine) and never perturbs sibling streams: each stream owns its
   detector, generator and queue, and the detector's push-retryability
   contract guarantees the failed stream itself is left consistent.
3. **Backpressure** — per-stream queues are bounded; a full queue
   blocks (drains inline), sheds, or raises, per policy, and the
   supervisor exposes shed/quarantine/restore counters and queue depths
   as :attr:`metrics`.

The supervisor is deliberately synchronous: :meth:`submit` enqueues,
:meth:`drain` processes.  That keeps the scheduling deterministic (and
the bit-identity guarantees testable); wrapping it in threads or an
event loop is the caller's choice.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.config import DetectorConfig
from ..core.online import OnlineBagDetector
from ..core.results import ScorePoint
from ..exceptions import BackpressureError, SolverError, ValidationError
from .policies import DEFAULT_SERVICE_HISTORY_LIMIT, SupervisorPolicy
from .snapshots import (
    check_stream_name,
    config_fingerprint,
    load_quarantine_manifest,
    load_stream_snapshot,
    save_quarantine_manifest,
    save_stream_snapshot,
)

#: Stream lifecycle states.
ACTIVE = "active"
QUARANTINED = "quarantined"


@dataclasses.dataclass
class _StreamState:
    """Book-keeping of one supervised stream (internal)."""

    name: str
    config: DetectorConfig
    fingerprint: str
    detector: OnlineBagDetector
    queue: Deque[np.ndarray]
    status: str = ACTIVE
    pushes_since_snapshot: int = 0
    quarantine_reason: Optional[str] = None


class StreamSupervisor:
    """Multiplex many named online detector streams, crash-safely.

    Parameters
    ----------
    config:
        Default :class:`~repro.core.DetectorConfig` for streams added
        without their own config.  When its ``history_limit`` is
        ``None``, supervised streams get a bounded default
        (:data:`~repro.service.DEFAULT_SERVICE_HISTORY_LIMIT`) — a
        service must not grow per-stream memory forever.
    policy:
        The :class:`~repro.service.SupervisorPolicy`; defaults to
        strict errors, blocking backpressure, no cadence snapshots.
    snapshot_dir:
        Directory for stream snapshots and the quarantine manifest.
        ``None`` disables persistence (quarantine then parks streams
        in memory only).
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        policy: Optional[SupervisorPolicy] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.snapshot_dir = None if snapshot_dir is None else str(snapshot_dir)
        self._streams: Dict[str, _StreamState] = {}
        self._quarantine: Dict[str, Dict[str, Any]] = (
            load_quarantine_manifest(self.snapshot_dir)
            if self.snapshot_dir is not None
            else {}
        )
        self._closed = False
        self.n_shed = 0
        self.n_quarantined = 0
        self.n_restored = 0
        self.n_degraded_points = 0
        self.n_snapshots_written = 0

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #
    def _service_config(self, config: Optional[DetectorConfig]) -> DetectorConfig:
        base = config if config is not None else self.config
        if base.history_limit is None:
            base = dataclasses.replace(
                base, history_limit=DEFAULT_SERVICE_HISTORY_LIMIT
            )
        return base

    def add_stream(
        self, name: str, config: Optional[DetectorConfig] = None
    ) -> OnlineBagDetector:
        """Register a stream; restore it from its snapshot when one exists.

        A stream recorded in the persisted quarantine manifest comes
        back *parked* — its snapshot (taken at quarantine time) is
        restored, but submissions are shed until
        :meth:`restore_stream` un-parks it explicitly.
        """
        check_stream_name(name)
        if name in self._streams:
            raise ValidationError(f"stream {name!r} is already registered")
        stream_config = self._service_config(config)
        fingerprint = config_fingerprint(stream_config)
        detector: Optional[OnlineBagDetector] = None
        if self.snapshot_dir is not None:
            state = load_stream_snapshot(self.snapshot_dir, name, fingerprint)
            if state is not None:
                detector = OnlineBagDetector.from_state_dict(state, stream_config)
                self.n_restored += 1
        if detector is None:
            detector = OnlineBagDetector(stream_config)
        stream = _StreamState(
            name=name,
            config=stream_config,
            fingerprint=fingerprint,
            detector=detector,
            queue=deque(),
        )
        if name in self._quarantine:
            stream.status = QUARANTINED
            stream.quarantine_reason = self._quarantine[name]["reason"]
        self._streams[name] = stream
        return detector

    def _stream(self, name: str) -> _StreamState:
        try:
            return self._streams[name]
        except KeyError:
            raise ValidationError(
                f"unknown stream {name!r}; register it with add_stream() first"
            ) from None

    @property
    def stream_names(self) -> List[str]:
        """Names of the registered streams, in registration order."""
        return list(self._streams)

    def detector(self, name: str) -> OnlineBagDetector:
        """The detector behind one stream (read access for history etc.)."""
        return self._stream(name).detector

    def status(self, name: str) -> str:
        """``"active"`` or ``"quarantined"``."""
        return self._stream(name).status

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def submit(self, name: str, bag: np.ndarray) -> bool:
        """Enqueue one bag for a stream; returns whether it was accepted.

        A quarantined stream sheds every submission (counted on
        ``n_shed``).  A full queue follows the backpressure policy:
        ``"block"`` processes one queued bag of this stream inline to
        make room, ``"shed"`` drops the new bag, ``"error"`` raises
        :class:`~repro.exceptions.BackpressureError`.
        """
        self._check_open()
        stream = self._stream(name)
        if stream.status == QUARANTINED:
            self.n_shed += 1
            return False
        if len(stream.queue) >= self.policy.queue_capacity:
            if self.policy.backpressure == "shed":
                self.n_shed += 1
                return False
            if self.policy.backpressure == "error":
                raise BackpressureError(
                    f"ingest queue of stream {name!r} is full "
                    f"({len(stream.queue)} bags); drain the supervisor or "
                    "raise queue_capacity",
                    stream=name,
                    depth=len(stream.queue),
                )
            # "block": make room by processing the oldest queued bag now.
            self._collect(stream, limit=1)
            if stream.status == QUARANTINED:
                self.n_shed += 1
                return False
        stream.queue.append(np.asarray(bag, dtype=float))
        return True

    def drain(
        self, name: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Tuple[str, ScorePoint]]:
        """Process queued bags; return the emitted ``(stream, point)`` pairs.

        With ``name`` only that stream is drained; otherwise streams are
        drained round-robin (one bag per stream per round) so no stream
        can starve its siblings.  ``limit`` caps the number of bags
        processed in this call.
        """
        self._check_open()
        emitted: List[Tuple[str, ScorePoint]] = []
        remaining = limit
        if name is not None:
            self._collect(self._stream(name), limit=remaining, into=emitted)
            return emitted
        while remaining is None or remaining > 0:
            progressed = False
            for stream in list(self._streams.values()):
                if stream.status != ACTIVE or not stream.queue:
                    continue
                n = self._collect(stream, limit=1, into=emitted)
                progressed = True
                if remaining is not None:
                    remaining -= n
                    if remaining <= 0:
                        return emitted
            if not progressed:
                break
        return emitted

    def _collect(
        self,
        stream: _StreamState,
        limit: Optional[int] = None,
        into: Optional[List[Tuple[str, ScorePoint]]] = None,
    ) -> int:
        """Process up to ``limit`` queued bags of one stream; count them."""
        processed = 0
        while stream.queue and stream.status == ACTIVE:
            if limit is not None and processed >= limit:
                break
            point = self._process_one(stream)
            processed += 1
            if point is not None and into is not None:
                into.append((stream.name, point))
        return processed

    def _process_one(self, stream: _StreamState) -> Optional[ScorePoint]:
        """Push the oldest queued bag of one stream, applying the error policy."""
        bag = stream.queue.popleft()
        try:
            point = stream.detector.push(bag)
        except SolverError as exc:
            return self._handle_stream_error(stream, bag, exc)
        self._after_push(stream)
        return point

    def _handle_stream_error(
        self, stream: _StreamState, bag: np.ndarray, exc: SolverError
    ) -> Optional[ScorePoint]:
        policy = self.policy.on_stream_error
        if policy == "strict":
            # The failed push left the detector untouched, so the bag
            # goes back to the front of the queue and the next drain of
            # this stream retries it.
            stream.queue.appendleft(bag)
            raise exc
        if policy == "degraded":
            warnings.warn(
                f"stream {stream.name!r}: solver failed "
                f"({exc}); consuming the bag masked — scores touching it "
                "will be NaN",
                RuntimeWarning,
                stacklevel=4,
            )
            point = stream.detector.push_masked(bag)
            self.n_degraded_points += 1
            self._after_push(stream)
            return point
        # "quarantine": park the stream on its pre-failure state.
        reason = f"{type(exc).__name__}: {exc}"
        if self.snapshot_dir is not None:
            self._write_snapshot(stream)
        self._quarantine[stream.name] = {
            "n_seen": stream.detector.n_seen,
            "reason": reason,
            "fingerprint": stream.fingerprint,
        }
        if self.snapshot_dir is not None:
            save_quarantine_manifest(self.snapshot_dir, self._quarantine)
        self.n_shed += len(stream.queue)
        stream.queue.clear()
        stream.status = QUARANTINED
        stream.quarantine_reason = reason
        self.n_quarantined += 1
        warnings.warn(
            f"stream {stream.name!r} quarantined after {reason}",
            RuntimeWarning,
            stacklevel=4,
        )
        return None

    def _after_push(self, stream: _StreamState) -> None:
        stream.pushes_since_snapshot += 1
        cadence = self.policy.snapshot_every
        if (
            cadence is not None
            and self.snapshot_dir is not None
            and stream.pushes_since_snapshot >= cadence
        ):
            self._write_snapshot(stream)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def _write_snapshot(self, stream: _StreamState) -> None:
        if self.snapshot_dir is None:
            raise ValidationError(
                "this StreamSupervisor has no snapshot_dir; configure one "
                "to snapshot streams"
            )
        save_stream_snapshot(
            self.snapshot_dir,
            stream.name,
            stream.detector.state_dict(),
            stream.fingerprint,
        )
        stream.pushes_since_snapshot = 0
        self.n_snapshots_written += 1

    def snapshot(self, name: Optional[str] = None) -> None:
        """Snapshot one stream (or, with ``name=None``, every stream)."""
        streams = (
            [self._stream(name)] if name is not None else list(self._streams.values())
        )
        for stream in streams:
            self._write_snapshot(stream)

    def restore_stream(self, name: str) -> OnlineBagDetector:
        """Un-park a quarantined stream from its last snapshot.

        The stream's detector is rebuilt from its snapshot (falling back
        to the parked in-memory detector when no snapshot directory is
        configured), its quarantine manifest entry is cleared, and it
        accepts submissions again.
        """
        stream = self._stream(name)
        if self.snapshot_dir is not None:
            state = load_stream_snapshot(self.snapshot_dir, name, stream.fingerprint)
            if state is not None:
                stream.detector = OnlineBagDetector.from_state_dict(
                    state, stream.config
                )
        stream.status = ACTIVE
        stream.quarantine_reason = None
        stream.pushes_since_snapshot = 0
        if self._quarantine.pop(name, None) is not None and self.snapshot_dir is not None:
            save_quarantine_manifest(self.snapshot_dir, self._quarantine)
        self.n_restored += 1
        return stream.detector

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def metrics(self) -> Dict[str, Any]:
        """Robustness counters and per-stream queue depths."""
        return {
            "n_streams": len(self._streams),
            "n_shed": self.n_shed,
            "n_quarantined": self.n_quarantined,
            "n_restored": self.n_restored,
            "n_degraded_points": self.n_degraded_points,
            "n_snapshots_written": self.n_snapshots_written,
            "queue_depths": {
                name: len(stream.queue) for name, stream in self._streams.items()
            },
        }

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("this StreamSupervisor has been closed")

    def close(self) -> None:
        """Snapshot active streams (when persisting) and close all detectors.

        Idempotent; safe to call from ``finally`` blocks and
        ``__exit__``.  Detector close is itself idempotent, so a stream
        whose detector was closed directly does not break teardown.
        """
        if self._closed:
            return
        self._closed = True
        for stream in self._streams.values():
            if self.snapshot_dir is not None and stream.status == ACTIVE:
                self._write_snapshot(stream)
            stream.detector.close()

    def __enter__(self) -> "StreamSupervisor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
