"""The seven per-node / per-edge features of paper Section 5.3.

For each bipartite graph observed in a time window, seven statistics are
extracted; each statistic produces a *bag* of one-dimensional values (one
per node or per edge), so that graphs with different numbers of nodes can
be compared through the bag-of-data change-point detector:

1. degrees of source nodes;
2. degrees of destination nodes;
3. second degrees of source nodes (number of other source nodes reachable
   through a shared destination);
4. second degrees of destination nodes;
5. total weight of the edges leaving each source node;
6. total weight of the edges entering each destination node;
7. the weight of each edge.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .bipartite import BipartiteGraph

FEATURE_NAMES: Dict[int, str] = {
    1: "source_degree",
    2: "destination_degree",
    3: "source_second_degree",
    4: "destination_second_degree",
    5: "source_out_weight",
    6: "destination_in_weight",
    7: "edge_weight",
}


def source_degrees(graph: BipartiteGraph) -> np.ndarray:
    """Feature 1: number of destinations each source node connects to."""
    return graph.adjacency.sum(axis=1)


def destination_degrees(graph: BipartiteGraph) -> np.ndarray:
    """Feature 2: number of sources each destination node is connected to."""
    return graph.adjacency.sum(axis=0)


def source_second_degrees(graph: BipartiteGraph) -> np.ndarray:
    """Feature 3: per source node, the number of *other* source nodes that
    share at least one destination with it."""
    adjacency = graph.adjacency
    co_connection = adjacency @ adjacency.T > 0
    np.fill_diagonal(co_connection, False)
    return co_connection.sum(axis=1).astype(float)


def destination_second_degrees(graph: BipartiteGraph) -> np.ndarray:
    """Feature 4: per destination node, the number of *other* destination
    nodes that share at least one source with it."""
    adjacency = graph.adjacency
    co_connection = adjacency.T @ adjacency > 0
    np.fill_diagonal(co_connection, False)
    return co_connection.sum(axis=1).astype(float)


def source_out_weights(graph: BipartiteGraph) -> np.ndarray:
    """Feature 5: total weight of the edges coming out of each source node."""
    return graph.weights.sum(axis=1)


def destination_in_weights(graph: BipartiteGraph) -> np.ndarray:
    """Feature 6: total weight of the edges going into each destination node."""
    return graph.weights.sum(axis=0)


def edge_weights(graph: BipartiteGraph) -> np.ndarray:
    """Feature 7: the weight of each existing edge."""
    values = graph.weights[graph.weights > 0]
    if values.size == 0:
        # A graph with no edges still needs a non-empty bag; represent it by
        # a single zero-weight pseudo-edge so downstream code keeps working.
        return np.zeros(1)
    return values


_EXTRACTORS: Dict[int, Callable[[BipartiteGraph], np.ndarray]] = {
    1: source_degrees,
    2: destination_degrees,
    3: source_second_degrees,
    4: destination_second_degrees,
    5: source_out_weights,
    6: destination_in_weights,
    7: edge_weights,
}


def extract_feature(graph: BipartiteGraph, feature_id: int) -> np.ndarray:
    """Extract one of the seven features as a column vector bag ``(n, 1)``."""
    if feature_id not in _EXTRACTORS:
        raise ConfigurationError(
            f"feature_id must be one of {sorted(_EXTRACTORS)}, got {feature_id}"
        )
    values = _EXTRACTORS[feature_id](graph)
    return np.asarray(values, dtype=float).reshape(-1, 1)


def extract_all_features(graph: BipartiteGraph) -> Dict[int, np.ndarray]:
    """Extract all seven features of one graph, keyed by feature id."""
    return {fid: extract_feature(graph, fid) for fid in sorted(_EXTRACTORS)}


def feature_bag_sequences(
    graphs: Sequence[BipartiteGraph],
) -> Dict[int, List[np.ndarray]]:
    """Turn a sequence of graphs into seven bag sequences (one per feature).

    The returned dictionary maps each feature id to the list of per-graph
    bags that can be fed directly to
    :class:`~repro.core.BagChangePointDetector`.
    """
    sequences: Dict[int, List[np.ndarray]] = {fid: [] for fid in sorted(_EXTRACTORS)}
    for graph in graphs:
        for fid in sequences:
            sequences[fid].append(extract_feature(graph, fid))
    return sequences
