"""Bipartite-graph substrate for network change-point detection (paper §5.3)."""

from .bipartite import BipartiteGraph
from .features import (
    FEATURE_NAMES,
    destination_degrees,
    destination_in_weights,
    destination_second_degrees,
    edge_weights,
    extract_all_features,
    extract_feature,
    feature_bag_sequences,
    source_degrees,
    source_out_weights,
    source_second_degrees,
)
from .generators import CommunityModel, sample_community_graph

__all__ = [
    "BipartiteGraph",
    "FEATURE_NAMES",
    "extract_feature",
    "extract_all_features",
    "feature_bag_sequences",
    "source_degrees",
    "destination_degrees",
    "source_second_degrees",
    "destination_second_degrees",
    "source_out_weights",
    "destination_in_weights",
    "edge_weights",
    "CommunityModel",
    "sample_community_graph",
]
