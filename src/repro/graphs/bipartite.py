"""Bipartite graph model used for network change-point detection (§5.3).

A :class:`BipartiteGraph` represents the communication observed in one
time window: source nodes (e.g. e-mail senders) connected to destination
nodes (receivers) by weighted edges (e.g. number of messages).  The graphs
at different time steps may have different numbers of nodes — which is
exactly why the paper analyses them through bags of per-node statistics
rather than through node-identified methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError


@dataclass(frozen=True)
class BipartiteGraph:
    """A weighted bipartite graph stored as a dense weight matrix.

    Attributes
    ----------
    weights:
        Array of shape ``(n_sources, n_destinations)``; entry ``(i, j)`` is
        the weight of the edge from source ``i`` to destination ``j``
        (0 means no edge).
    index:
        Optional time label of the window this graph summarises.
    """

    weights: np.ndarray
    index: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        if weights.ndim != 2:
            raise ValidationError("weights must be a 2-D matrix")
        if weights.shape[0] == 0 or weights.shape[1] == 0:
            raise ValidationError("a bipartite graph needs at least one node on each side")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValidationError("edge weights must be finite and non-negative")
        weights = weights.copy()
        weights.setflags(write=False)
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def n_sources(self) -> int:
        """Number of source (sender) nodes."""
        return int(self.weights.shape[0])

    @property
    def n_destinations(self) -> int:
        """Number of destination (receiver) nodes."""
        return int(self.weights.shape[1])

    @property
    def n_edges(self) -> int:
        """Number of edges with strictly positive weight."""
        return int(np.count_nonzero(self.weights))

    @property
    def total_weight(self) -> float:
        """Total traffic: the sum of all edge weights."""
        return float(self.weights.sum())

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def adjacency(self) -> np.ndarray:
        """Binary adjacency matrix (1 where an edge exists)."""
        return (self.weights > 0).astype(float)

    def edge_list(self) -> list[Tuple[int, int, float]]:
        """List of ``(source, destination, weight)`` triples for existing edges."""
        sources, destinations = np.nonzero(self.weights)
        return [
            (int(i), int(j), float(self.weights[i, j]))
            for i, j in zip(sources, destinations)
        ]

    def rearranged(
        self, source_order: Sequence[int], destination_order: Sequence[int]
    ) -> "BipartiteGraph":
        """Permute the rows/columns (the paper's Fig. 8(b) 'rearranged' view)."""
        source_order = np.asarray(source_order, dtype=int)
        destination_order = np.asarray(destination_order, dtype=int)
        if sorted(source_order.tolist()) != list(range(self.n_sources)):
            raise ValidationError("source_order must be a permutation of the source nodes")
        if sorted(destination_order.tolist()) != list(range(self.n_destinations)):
            raise ValidationError(
                "destination_order must be a permutation of the destination nodes"
            )
        return BipartiteGraph(
            self.weights[np.ix_(source_order, destination_order)], index=self.index
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edges(
        edges: Sequence[Tuple[int, int, float]],
        n_sources: Optional[int] = None,
        n_destinations: Optional[int] = None,
        index: Optional[object] = None,
    ) -> "BipartiteGraph":
        """Build a graph from ``(source, destination, weight)`` triples.

        Duplicate edges have their weights summed.
        """
        if not edges:
            raise ValidationError("edge list must not be empty")
        sources = np.array([e[0] for e in edges], dtype=int)
        destinations = np.array([e[1] for e in edges], dtype=int)
        values = np.array([e[2] for e in edges], dtype=float)
        if np.any(sources < 0) or np.any(destinations < 0):
            raise ValidationError("node indices must be non-negative")
        ns = int(sources.max()) + 1 if n_sources is None else int(n_sources)
        nd = int(destinations.max()) + 1 if n_destinations is None else int(n_destinations)
        weights = np.zeros((ns, nd), dtype=float)
        np.add.at(weights, (sources, destinations), values)
        return BipartiteGraph(weights, index=index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteGraph(n_sources={self.n_sources}, "
            f"n_destinations={self.n_destinations}, n_edges={self.n_edges}, "
            f"total_weight={self.total_weight:.0f})"
        )
