"""Generators of community-structured bipartite graphs (paper §5.3).

The synthetic bipartite experiments assume that the source and destination
nodes are partitioned into clusters; each (source cluster, destination
cluster) pair forms a *community* whose edge weights follow a Poisson
distribution with its own rate λ_{k,l} (paper Fig. 8).  This module
provides the generator for a single graph plus helpers used by
:mod:`repro.datasets.bipartite_streams` to produce whole streams with
scripted parameter changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .._validation import as_rng
from ..exceptions import ValidationError
from .bipartite import BipartiteGraph


@dataclass(frozen=True)
class CommunityModel:
    """Parameters of a two-sided community-structured bipartite graph.

    Attributes
    ----------
    rate_matrix:
        ``(K, L)`` matrix of Poisson rates λ_{k,l}: the expected weight of
        an edge between a source node of cluster ``k`` and a destination
        node of cluster ``l``.
    source_fractions:
        Length-``K`` vector of source cluster proportions (sums to 1);
        with two clusters this is ``(κ, 1 − κ)`` in the paper's notation.
    destination_fractions:
        Length-``L`` vector of destination cluster proportions
        (``(δ, 1 − δ)`` in the paper).
    mean_sources, mean_destinations:
        Poisson means of the total number of source / destination nodes.
    """

    rate_matrix: np.ndarray
    source_fractions: np.ndarray
    destination_fractions: np.ndarray
    mean_sources: float = 200.0
    mean_destinations: float = 200.0

    def __post_init__(self) -> None:
        rates = np.asarray(self.rate_matrix, dtype=float)
        src = np.asarray(self.source_fractions, dtype=float).ravel()
        dst = np.asarray(self.destination_fractions, dtype=float).ravel()
        if rates.ndim != 2:
            raise ValidationError("rate_matrix must be 2-D")
        if np.any(rates < 0):
            raise ValidationError("Poisson rates must be non-negative")
        if rates.shape != (src.size, dst.size):
            raise ValidationError(
                f"rate_matrix shape {rates.shape} does not match cluster fractions "
                f"({src.size}, {dst.size})"
            )
        for name, fractions in (("source_fractions", src), ("destination_fractions", dst)):
            if np.any(fractions < 0) or not np.isclose(fractions.sum(), 1.0):
                raise ValidationError(f"{name} must be non-negative and sum to one")
        if self.mean_sources <= 0 or self.mean_destinations <= 0:
            raise ValidationError("mean node counts must be positive")
        object.__setattr__(self, "rate_matrix", rates)
        object.__setattr__(self, "source_fractions", src)
        object.__setattr__(self, "destination_fractions", dst)

    def with_rates(self, rate_matrix: np.ndarray) -> "CommunityModel":
        """Copy of the model with a different rate matrix."""
        return CommunityModel(
            rate_matrix=np.asarray(rate_matrix, dtype=float),
            source_fractions=self.source_fractions,
            destination_fractions=self.destination_fractions,
            mean_sources=self.mean_sources,
            mean_destinations=self.mean_destinations,
        )

    def with_partitions(self, kappa: float, delta: float) -> "CommunityModel":
        """Copy with two-cluster partitions ``(κ, 1−κ)`` and ``(δ, 1−δ)``."""
        if self.rate_matrix.shape != (2, 2):
            raise ValidationError("with_partitions requires a 2x2 community model")
        if not (0.0 <= kappa <= 1.0 and 0.0 <= delta <= 1.0):
            raise ValidationError("kappa and delta must lie in [0, 1]")
        return CommunityModel(
            rate_matrix=self.rate_matrix,
            source_fractions=np.array([kappa, 1.0 - kappa]),
            destination_fractions=np.array([delta, 1.0 - delta]),
            mean_sources=self.mean_sources,
            mean_destinations=self.mean_destinations,
        )


def _cluster_sizes(total: int, fractions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Split ``total`` nodes into clusters according to ``fractions``."""
    sizes = np.floor(total * fractions).astype(int)
    remainder = total - sizes.sum()
    if remainder > 0:
        extra = rng.choice(len(fractions), size=remainder, p=fractions)
        for idx in extra:
            sizes[idx] += 1
    return sizes


def sample_community_graph(
    model: CommunityModel,
    *,
    rng: Union[None, int, np.random.Generator] = None,
    index: Optional[object] = None,
    shuffle_nodes: bool = True,
    fixed_total_weight: Optional[float] = None,
) -> BipartiteGraph:
    """Sample one bipartite graph from a community model.

    Parameters
    ----------
    model:
        The community model to sample from.
    rng:
        Seed or generator.
    index:
        Optional time label for the resulting graph.
    shuffle_nodes:
        Shuffle node identities so the community structure is not apparent
        from the node ordering (the paper's Fig. 8(a) "observed" view).
    fixed_total_weight:
        When given, the total edge weight is fixed to this value and
        distributed to communities proportionally to their λ rates
        (paper's dataset 3 construction), with the weight spread uniformly
        at random over the edges within each community.
    """
    generator = as_rng(rng)
    n_sources = max(1, int(generator.poisson(model.mean_sources)))
    n_destinations = max(1, int(generator.poisson(model.mean_destinations)))

    source_sizes = _cluster_sizes(n_sources, model.source_fractions, generator)
    destination_sizes = _cluster_sizes(n_destinations, model.destination_fractions, generator)
    source_labels = np.repeat(np.arange(source_sizes.size), source_sizes)
    destination_labels = np.repeat(np.arange(destination_sizes.size), destination_sizes)
    # Guard against a cluster assignment shorter than the node count due to
    # empty clusters (all nodes then fall into the populated clusters).
    if source_labels.size < n_sources:
        source_labels = np.concatenate(
            [source_labels, np.zeros(n_sources - source_labels.size, dtype=int)]
        )
    if destination_labels.size < n_destinations:
        destination_labels = np.concatenate(
            [destination_labels, np.zeros(n_destinations - destination_labels.size, dtype=int)]
        )

    rate_per_edge = model.rate_matrix[np.ix_(source_labels, destination_labels)]
    if fixed_total_weight is None:
        weights = generator.poisson(rate_per_edge).astype(float)
    else:
        if fixed_total_weight <= 0:
            raise ValidationError("fixed_total_weight must be positive")
        # Distribute the fixed budget over communities proportionally to the
        # rates, then spread each community's budget over its edges via a
        # multinomial draw (uniform within the community).
        total_rate = rate_per_edge.sum()
        if total_rate <= 0:
            weights = np.zeros_like(rate_per_edge)
        else:
            probabilities = (rate_per_edge / total_rate).ravel()
            counts = generator.multinomial(int(fixed_total_weight), probabilities)
            weights = counts.reshape(rate_per_edge.shape).astype(float)

    if shuffle_nodes:
        weights = weights[generator.permutation(n_sources), :]
        weights = weights[:, generator.permutation(n_destinations)]

    return BipartiteGraph(weights, index=index)
