"""The estimator contract every detector in the zoo implements.

:class:`BaseBagDetector` is the sklearn/skchange-style facade over the
project's heterogeneous detector population: the paper's offline and
online bag-of-data detectors and the eight single-vector baselines all
answer the same two questions through it —

* :meth:`~BaseBagDetector.fit_predict` — *where* did the stream change?
  Returns the **sparse** representation: a sorted integer array of
  change points (see :mod:`repro.api.conversion`).
* :meth:`~BaseBagDetector.fit_transform` — *which segment* does each bag
  belong to?  Returns the **dense** representation: one integer segment
  label per bag, derived from the same change points, so
  ``fit_transform(bags) == sparse_to_dense(fit_predict(bags), len(bags))``
  by construction.

Subclasses implement one hook, :meth:`~BaseBagDetector._predict_changepoints`,
plus :meth:`~BaseBagDetector.create_test_instance` — a small, fast,
*seeded* configuration the shared estimator battery
(``tests/test_estimator_battery.py``) runs through the contract suite.
The base class owns input normalisation and output validation, so every
registered detector fails the same way on bad input and can never return
malformed change points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Union

import numpy as np

from .._typing import IntArray
from ..core.bag import BagSequence
from ..exceptions import ValidationError
from .conversion import _as_changepoints, sparse_to_dense

__all__ = ["BaseBagDetector"]

#: Anything a facade detector accepts as the input stream.
BagsLike = Union[BagSequence, Sequence[np.ndarray]]


def as_bag_arrays(bags: BagsLike) -> List[np.ndarray]:
    """Normalise the input stream to a list of ``(n_t, d)`` float arrays.

    Parameters
    ----------
    bags:
        A :class:`~repro.core.BagSequence` or a sequence of per-time-step
        arrays; one-dimensional bags are promoted to ``(n_t, 1)``.
    """
    if isinstance(bags, BagSequence):
        arrays = bags.arrays()
    else:
        arrays = [np.asarray(bag, dtype=float) for bag in bags]
    out: List[np.ndarray] = []
    for index, bag in enumerate(arrays):
        if bag.ndim == 1:
            bag = bag.reshape(-1, 1)
        if bag.ndim != 2:
            raise ValidationError(
                f"bag {index} has shape {bag.shape}; each bag must be a "
                "(n_observations, d) array"
            )
        if bag.shape[0] == 0:
            raise ValidationError(f"bag {index} is empty")
        out.append(bag)
    return out


class BaseBagDetector(ABC):
    """Estimator contract: a change-point detector over a stream of bags.

    The facade is deliberately *stateless across calls*: ``fit_predict``
    and ``fit_transform`` each run the full pipeline on the stream they
    are handed, and a detector constructed with an integer seed returns
    identical output on every call (the determinism leg of the shared
    estimator battery).

    Subclasses provide:

    * :meth:`_predict_changepoints` — the detection itself, returning
      raw change-point indices for a validated list of bags;
    * :attr:`min_sequence_length` — the shortest stream the detector
      can score (the base class rejects shorter input with a uniform
      :class:`~repro.exceptions.ValidationError` before the hook runs);
    * :meth:`create_test_instance` — a small, fast, seeded instance for
      the contract suite.
    """

    @property
    def min_sequence_length(self) -> int:
        """Minimum number of bags :meth:`fit_predict` accepts."""
        return 2

    @classmethod
    def create_test_instance(cls) -> "BaseBagDetector":
        """A small, fast, seeded instance for the shared estimator battery."""
        return cls()

    @abstractmethod
    def _predict_changepoints(self, bags: List[np.ndarray]) -> IntArray:
        """Detect change points on a validated list of ``(n_t, d)`` bags."""

    # ------------------------------------------------------------------ #
    # Public facade
    # ------------------------------------------------------------------ #
    def fit_predict(self, bags: BagsLike) -> IntArray:
        """Run detection and return sorted sparse change-point indices.

        Parameters
        ----------
        bags:
            A :class:`~repro.core.BagSequence` or sequence of per-step
            ``(n_t, d)`` arrays, at least :attr:`min_sequence_length`
            long.

        Returns
        -------
        IntArray
            Strictly increasing change points in ``(0, len(bags))`` —
            each the index of the first bag of a new segment; empty when
            no change was detected.
        """
        arrays = as_bag_arrays(bags)
        n = len(arrays)
        minimum = self.min_sequence_length
        if n < minimum:
            raise ValidationError(
                f"{type(self).__name__} needs at least {minimum} bags, got {n}"
            )
        changepoints = np.asarray(self._predict_changepoints(arrays))
        # Re-validate through the shared converter checks so a buggy
        # subclass cannot leak unsorted/out-of-range change points.
        return _as_changepoints(changepoints, n)

    def fit_transform(self, bags: BagsLike) -> IntArray:
        """Run detection and return dense per-bag segment labels.

        Parameters
        ----------
        bags:
            Same input as :meth:`fit_predict`.

        Returns
        -------
        IntArray
            One segment label per bag (``0`` before the first change
            point), exactly ``sparse_to_dense(fit_predict(bags), len(bags))``.
        """
        arrays = as_bag_arrays(bags)
        return sparse_to_dense(self.fit_predict(arrays), len(arrays))
