"""Estimator facade: one contract over every detector in the repo.

See ``docs/api.md`` for the guide.  The public surface:

* :class:`BaseBagDetector` — the contract (``fit_predict`` → sparse
  change points, ``fit_transform`` → dense segment labels);
* :func:`sparse_to_dense` / :func:`dense_to_sparse` — the two output
  representations and their exact round-trip converters;
* :func:`register_detector` / :func:`get_detector` /
  :func:`detector_names` — the registry the estimator battery and the
  ``repro-detect zoo`` subcommand iterate;
* the ten registered adapters (two paper detectors + eight baselines).

Importing this package populates the registry.
"""

from .adapters import (
    ChangeFinderBaseline,
    CusumBaseline,
    DensityRatioBaseline,
    EMDDetector,
    KcdBaseline,
    MeanShiftBaseline,
    OneClassSvmBaseline,
    OnlineEMDDetector,
    SdarBaseline,
    SstBaseline,
)
from .base import BaseBagDetector
from .conversion import dense_to_sparse, sparse_to_dense
from .registry import detector_names, get_detector, register_detector

__all__ = [
    "BaseBagDetector",
    "ChangeFinderBaseline",
    "CusumBaseline",
    "DensityRatioBaseline",
    "EMDDetector",
    "KcdBaseline",
    "MeanShiftBaseline",
    "OneClassSvmBaseline",
    "OnlineEMDDetector",
    "SdarBaseline",
    "SstBaseline",
    "dense_to_sparse",
    "detector_names",
    "get_detector",
    "register_detector",
    "sparse_to_dense",
]
