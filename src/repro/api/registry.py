"""Named registry of facade detectors.

Adapters register themselves with :func:`register_detector` at import
time; the shared estimator battery and the ``repro-detect zoo`` CLI both
iterate :func:`detector_names`, so registering a detector automatically
enrols it in the contract suite and the comparison harness.

Importing :mod:`repro.api` populates the registry (the package
``__init__`` imports the adapters module); code that imports this module
directly sees only whatever has been registered so far.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type, TypeVar

from ..exceptions import ValidationError
from .base import BaseBagDetector

__all__ = ["detector_names", "get_detector", "register_detector"]

_REGISTRY: Dict[str, Type[BaseBagDetector]] = {}

D = TypeVar("D", bound=Type[BaseBagDetector])


def register_detector(name: str) -> Callable[[D], D]:
    """Class decorator: enrol a facade detector under ``name``.

    Parameters
    ----------
    name:
        Registry key (also the CLI spelling).  Must be unique; a
        duplicate registration raises :class:`~repro.exceptions.ValidationError`
        rather than silently shadowing the earlier detector.
    """
    if not name:
        raise ValidationError("detector name must be non-empty")

    def decorator(cls: D) -> D:
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValidationError(f"detector name {name!r} is already registered")
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_detector(name: str) -> Type[BaseBagDetector]:
    """Look up a registered detector class by name.

    Parameters
    ----------
    name:
        A key previously passed to :func:`register_detector`.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValidationError(
            f"unknown detector {name!r}; registered detectors: {known}"
        ) from None


def detector_names() -> List[str]:
    """All registered detector names, sorted."""
    return sorted(_REGISTRY)
