"""Sparse/dense change-point representations and their converters.

The estimator facade (:mod:`repro.api`) standardises two output formats
for a detection run over ``n`` bags, mirroring the skchange convention:

* **sparse** — a sorted integer array of *change points*: each entry is
  the index of the first bag of a new segment, so every value lies in
  the open interval ``(0, n)``;
* **dense** — an integer array of *segment labels* of length ``n``:
  label ``0`` before the first change point, ``1`` up to the second,
  and so on.

:func:`sparse_to_dense` and :func:`dense_to_sparse` convert between the
two.  Their round-trip contract is exact in both directions:

* ``dense_to_sparse(sparse_to_dense(cps, n)) == cps`` for any valid
  sparse array ``cps``;
* ``sparse_to_dense(dense_to_sparse(labels), len(labels))`` equals
  ``labels`` whenever the labels are *canonical* (``0, 1, 2, …`` in
  order of first appearance) — for arbitrary labels the round trip
  canonicalises them while preserving every segment boundary.

Both invariants are property-tested in ``tests/test_api_conversion.py``
independently of any detector.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._typing import IntArray
from ..exceptions import ValidationError

__all__ = ["dense_to_sparse", "sparse_to_dense"]


def _as_changepoints(changepoints: Union[Sequence[int], IntArray], n_samples: int) -> IntArray:
    """Validate a sparse change-point array against a sequence length."""
    arr = np.asarray(changepoints)
    if arr.size == 0:
        return np.array([], dtype=np.int64)
    if arr.ndim != 1:
        raise ValidationError(
            f"changepoints must be one-dimensional, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.floor(arr)):
            raise ValidationError("changepoints must be integers")
    out = arr.astype(np.int64)
    if np.any(np.diff(out) <= 0):
        raise ValidationError(
            "changepoints must be strictly increasing (sorted, no duplicates)"
        )
    if out[0] < 1 or out[-1] >= n_samples:
        raise ValidationError(
            f"changepoints must lie in the open interval (0, {n_samples}); "
            f"got range [{out[0]}, {out[-1]}] — a change point is the index "
            "of the first sample of a new segment, so 0 and n are not valid"
        )
    return out


def sparse_to_dense(
    changepoints: Union[Sequence[int], IntArray], n_samples: int
) -> IntArray:
    """Expand sparse change points into dense per-sample segment labels.

    Parameters
    ----------
    changepoints:
        Sorted, strictly increasing change-point indices in ``(0,
        n_samples)``; each is the index of the first sample of a new
        segment.  An empty array yields a single all-zero segment.
    n_samples:
        Length of the sequence being labelled (must be positive).

    Returns
    -------
    IntArray
        Length-``n_samples`` array of segment labels ``0 … k`` where
        ``k == len(changepoints)``.
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be positive, got {n_samples}")
    cps = _as_changepoints(changepoints, n_samples)
    labels = np.zeros(n_samples, dtype=np.int64)
    # Each change point increments the label of every later sample.
    for cp in cps:
        labels[cp:] += 1
    return labels


def dense_to_sparse(labels: Union[Sequence[int], IntArray]) -> IntArray:
    """Collapse dense segment labels into sparse change-point indices.

    Parameters
    ----------
    labels:
        One-dimensional integer segment labels, one per sample.  Labels
        need not be consecutive or start at zero — a change point is
        recorded wherever the label *differs* from its predecessor.

    Returns
    -------
    IntArray
        Sorted change-point indices: every ``i`` with
        ``labels[i] != labels[i - 1]``.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValidationError(f"labels must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError("labels must contain at least one sample")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError(f"labels must be integers, got dtype {arr.dtype}")
    changed = np.nonzero(arr[1:] != arr[:-1])[0] + 1
    return changed.astype(np.int64)
