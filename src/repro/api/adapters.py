"""Facade adapters: every detector in the repo behind one contract.

Two families:

* the paper's bag-of-data detectors — :class:`EMDDetector` wraps the
  offline :class:`~repro.core.BagChangePointDetector`;
  :class:`OnlineEMDDetector` replays the stream through the streaming
  :class:`~repro.core.OnlineBagDetector` one push at a time, so the
  facade exercises exactly the code path a live service runs;
* the eight ``repro.baselines`` methods — single-vector detectors
  applied to the per-bag sample-mean sequence (the paper's Fig. 1
  reduction, via :func:`repro.baselines.mean_sequence`), their score
  series thresholded at ``mean + threshold_sigma · std`` of the active
  scores and nearby alarms merged with
  :func:`~repro.core.merge_close_alarms`.

Every adapter is registered by name in :mod:`repro.api.registry`; the
shared estimator battery iterates that registry, so a new adapter is on
the hook for the full contract suite the moment it registers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._typing import FloatArray, IntArray
from ..baselines import (
    SDAR,
    ChangeFinder,
    CusumDetector,
    KernelChangeDetection,
    OneClassSVM,
    RelativeDensityRatioDetector,
    SingularSpectrumTransformation,
    median_heuristic_gamma,
)
from ..core import BagChangePointDetector, DetectorConfig, OnlineBagDetector
from ..core.segmentation import merge_close_alarms
from ..exceptions import ValidationError
from .base import BaseBagDetector
from .registry import register_detector

__all__ = [
    "ChangeFinderBaseline",
    "CusumBaseline",
    "DensityRatioBaseline",
    "EMDDetector",
    "KcdBaseline",
    "MeanShiftBaseline",
    "OneClassSvmBaseline",
    "OnlineEMDDetector",
    "SdarBaseline",
    "SstBaseline",
]


def _merged_alarms(alarms: Sequence[int], n: int, min_gap: int) -> IntArray:
    """Merge nearby alarm indices and clip them to the open interval (0, n)."""
    merged = merge_close_alarms([a for a in alarms if 0 < a < n], max(min_gap, 1))
    return np.asarray(merged, dtype=np.int64)


# --------------------------------------------------------------------- #
# The paper's detectors
# --------------------------------------------------------------------- #
@register_detector("emd")
class EMDDetector(BaseBagDetector):
    """The paper's offline bag-of-data detector behind the facade.

    Parameters
    ----------
    config:
        A full :class:`~repro.core.DetectorConfig`; keyword arguments
        may be passed instead and are forwarded to the config.
    min_gap:
        Alarms closer together than this many steps are reported as one
        change point (consecutive alarms while the windows straddle one
        change refer to the same event).  Defaults to the test-window
        length ``tau_test``.
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        *,
        min_gap: Optional[int] = None,
        **kwargs: object,
    ) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)  # type: ignore[arg-type]
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self.min_gap = int(min_gap) if min_gap is not None else config.tau_test

    @property
    def min_sequence_length(self) -> int:
        """The detector needs one full reference + test window."""
        return self.config.window_span

    @classmethod
    def create_test_instance(cls) -> "EMDDetector":
        """Small windows, few clusters, few replicates — fast and seeded."""
        return cls(
            tau=3, tau_test=3, n_clusters=3, n_bootstrap=30, random_state=0
        )

    def _predict_changepoints(self, bags: List[np.ndarray]) -> IntArray:
        with BagChangePointDetector(self.config) as detector:
            result = detector.detect(bags)
        return _merged_alarms(result.alarm_times.tolist(), len(bags), self.min_gap)


@register_detector("emd_online")
class OnlineEMDDetector(BaseBagDetector):
    """The streaming bag-of-data detector, replayed over a recorded stream.

    The adapter feeds the bags one :meth:`~repro.core.OnlineBagDetector.push`
    at a time — the facade runs exactly the incremental code path a live
    stream runs (rolling window matrix, per-push solves), then reads the
    alarms off the emitted history.

    Parameters
    ----------
    config:
        A full :class:`~repro.core.DetectorConfig`; keyword arguments
        may be passed instead and are forwarded to the config.
    min_gap:
        Alarm-merging distance, as in :class:`EMDDetector`.
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        *,
        min_gap: Optional[int] = None,
        **kwargs: object,
    ) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)  # type: ignore[arg-type]
        elif kwargs:
            raise ValidationError("pass either a DetectorConfig or keyword arguments, not both")
        self.config = config
        self.min_gap = int(min_gap) if min_gap is not None else config.tau_test

    @property
    def min_sequence_length(self) -> int:
        """One full window must fit before any score point is emitted."""
        return self.config.window_span

    @classmethod
    def create_test_instance(cls) -> "OnlineEMDDetector":
        """Mirror :meth:`EMDDetector.create_test_instance` on the online path."""
        return cls(
            tau=3, tau_test=3, n_clusters=3, n_bootstrap=30, random_state=0
        )

    def _predict_changepoints(self, bags: List[np.ndarray]) -> IntArray:
        with OnlineBagDetector(self.config) as detector:
            points = detector.push_many(bags)
        alarms = [point.time for point in points if point.alert]
        return _merged_alarms(alarms, len(bags), self.min_gap)


# --------------------------------------------------------------------- #
# Baseline adapters (single-vector methods on the mean sequence)
# --------------------------------------------------------------------- #
class _SeriesBaselineDetector(BaseBagDetector):
    """Shared shape of the eight baseline adapters.

    Subclasses implement :meth:`_score_means` — a per-step change-point
    score over the ``(T, d)`` per-bag sample-mean sequence.  This base
    turns the score series into change points: scores strictly above
    ``mean + threshold_sigma · std`` of the *active* (finite, positive)
    scores become alarms, and alarms closer than ``min_gap`` merge into
    one change point.

    Parameters
    ----------
    threshold_sigma:
        Number of standard deviations above the active-score mean at
        which an alarm is raised.
    min_gap:
        Alarms closer together than this many steps are reported as one
        change point.
    """

    def __init__(self, *, threshold_sigma: float = 2.0, min_gap: int = 5) -> None:
        if not np.isfinite(threshold_sigma) or threshold_sigma <= 0:
            raise ValidationError(
                f"threshold_sigma must be positive and finite, got {threshold_sigma}"
            )
        if min_gap < 1:
            raise ValidationError(f"min_gap must be a positive integer, got {min_gap}")
        self.threshold_sigma = float(threshold_sigma)
        self.min_gap = int(min_gap)

    def _score_means(self, means: FloatArray) -> FloatArray:
        """Per-step change-point score over the mean sequence (hook)."""
        raise NotImplementedError

    @staticmethod
    def _univariate(means: FloatArray) -> FloatArray:
        """Reduce a ``(T, d)`` mean sequence to one value per step.

        One-dimensional streams pass through unchanged; multivariate
        streams reduce to the Euclidean norm of each step's deviation
        from the global mean (direction is lost, which is acceptable for
        baselines the paper already shows failing on richer changes).
        """
        if means.shape[1] == 1:
            return means[:, 0].copy()
        centred = means - means.mean(axis=0, keepdims=True)
        return np.sqrt(np.sum(centred**2, axis=1))

    def _predict_changepoints(self, bags: List[np.ndarray]) -> IntArray:
        n = len(bags)
        means = np.vstack([bag.mean(axis=0) for bag in bags])
        scores = np.asarray(self._score_means(means), dtype=float).ravel()
        if scores.shape[0] != n:
            raise ValidationError(
                f"{type(self).__name__} produced {scores.shape[0]} scores "
                f"for {n} bags; the score series must align with the stream"
            )
        active = scores[np.isfinite(scores) & (scores > 0)]
        if active.size == 0:
            return np.array([], dtype=np.int64)
        threshold = float(active.mean() + self.threshold_sigma * active.std())
        alarms = np.nonzero(np.isfinite(scores) & (scores > threshold))[0]
        return _merged_alarms(alarms.tolist(), n, self.min_gap)


@register_detector("cusum")
class CusumBaseline(_SeriesBaselineDetector):
    """Two-sided CUSUM on the (reduced) mean sequence.

    Parameters
    ----------
    threshold:
        CUSUM decision threshold ``h`` in standard deviations.
    drift:
        CUSUM allowance ``k`` subtracted before accumulation.
    calibration:
        Number of initial points used to estimate the in-control state.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`);
        ``threshold_sigma`` is unused here because CUSUM carries its own
        decision threshold — alarms come straight from the recursion.
    """

    def __init__(
        self,
        *,
        threshold: float = 5.0,
        drift: float = 0.5,
        calibration: int = 10,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self._detector = CusumDetector(
            threshold=threshold, drift=drift, calibration=calibration
        )

    @property
    def min_sequence_length(self) -> int:
        """CUSUM needs its calibration prefix plus at least one monitored point."""
        return self._detector.calibration + 2

    @classmethod
    def create_test_instance(cls) -> "CusumBaseline":
        """Short calibration so the battery's small streams fit."""
        return cls(calibration=6, min_gap=3)

    def _predict_changepoints(self, bags: List[np.ndarray]) -> IntArray:
        # CUSUM carries its own decision threshold; bypass the sigma rule.
        means = np.vstack([bag.mean(axis=0) for bag in bags])
        values = self._univariate(means)
        alarms = self._detector.detect(values)
        return _merged_alarms(alarms.tolist(), len(bags), self.min_gap)

    def _score_means(self, means: FloatArray) -> FloatArray:
        scores, _ = self._detector.score(self._univariate(means))
        return scores


@register_detector("change_finder")
class ChangeFinderBaseline(_SeriesBaselineDetector):
    """Two-stage SDAR (ChangeFinder) on the mean sequence.

    Parameters
    ----------
    order:
        AR order of both SDAR stages.
    discount:
        Discounting coefficient of both stages.
    smoothing:
        Moving-average width used for both smoothing stages.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        order: int = 2,
        discount: float = 0.05,
        smoothing: int = 5,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self.order = int(order)
        self.discount = float(discount)
        self.smoothing = int(smoothing)

    @property
    def min_sequence_length(self) -> int:
        """Both SDAR stages need a few points beyond the AR order."""
        return self.order + self.smoothing + 2

    @classmethod
    def create_test_instance(cls) -> "ChangeFinderBaseline":
        """First-order model with light smoothing — fast on short streams."""
        return cls(order=1, smoothing=3, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        finder = ChangeFinder(
            order=self.order,
            discount=self.discount,
            smoothing_first=self.smoothing,
            smoothing_second=self.smoothing,
            dim=means.shape[1],
        )
        return finder.score(means)


@register_detector("sdar")
class SdarBaseline(_SeriesBaselineDetector):
    """Single-stage SDAR log-loss (outlier score) on the mean sequence.

    Parameters
    ----------
    order:
        AR order of the SDAR model.
    discount:
        Discounting coefficient.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        order: int = 2,
        discount: float = 0.05,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self.order = int(order)
        self.discount = float(discount)

    @property
    def min_sequence_length(self) -> int:
        """The AR model needs its order plus a few points to warm up."""
        return self.order + 3

    @classmethod
    def create_test_instance(cls) -> "SdarBaseline":
        """First-order model, fast on short streams."""
        return cls(order=1, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        model = SDAR(order=self.order, discount=self.discount, dim=means.shape[1])
        return model.score_sequence(means)


@register_detector("sst")
class SstBaseline(_SeriesBaselineDetector):
    """Singular-spectrum transformation on the (reduced) mean sequence.

    Parameters
    ----------
    window:
        Hankel-window length of the SST.
    n_columns:
        Number of lagged columns per Hankel matrix.
    rank:
        Subspace rank compared across the inspection point.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        window: int = 6,
        n_columns: int = 6,
        rank: int = 2,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self._detector = SingularSpectrumTransformation(
            window=window, n_columns=n_columns, rank=rank
        )

    @property
    def min_sequence_length(self) -> int:
        """Two full Hankel spans must fit around one inspection point."""
        return 2 * self._detector.span + 1

    @classmethod
    def create_test_instance(cls) -> "SstBaseline":
        """Small Hankel windows so the battery's short streams fit."""
        return cls(window=3, n_columns=3, rank=1, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        return self._detector.score(self._univariate(means))


@register_detector("kcd")
class KcdBaseline(_SeriesBaselineDetector):
    """Kernel change detection (paired one-class SVMs) on the mean sequence.

    Parameters
    ----------
    window:
        Number of steps in each of the reference and test windows.
    nu:
        ν parameter of the one-class SVMs.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        window: int = 8,
        nu: float = 0.2,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self._detector = KernelChangeDetection(window=window, nu=nu)

    @property
    def min_sequence_length(self) -> int:
        """One reference plus one test window must fit."""
        return 2 * self._detector.window + 1

    @classmethod
    def create_test_instance(cls) -> "KcdBaseline":
        """Small windows keep the per-step SVM fits cheap."""
        return cls(window=4, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        return self._detector.score(means)


@register_detector("density_ratio")
class DensityRatioBaseline(_SeriesBaselineDetector):
    """Relative density-ratio (RuLSIF-style) scoring on the mean sequence.

    Parameters
    ----------
    window:
        Number of steps in each of the two compared windows.
    alpha:
        Relative parameter of the Pearson divergence.
    n_basis:
        Number of kernel basis centres.
    random_state:
        Seed of the basis-centre subsampling (kept deterministic so the
        facade's determinism contract holds).
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        window: int = 8,
        alpha: float = 0.1,
        n_basis: int = 20,
        random_state: int = 0,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self._detector = RelativeDensityRatioDetector(
            window=window, alpha=alpha, n_basis=n_basis, random_state=random_state
        )

    @property
    def min_sequence_length(self) -> int:
        """One reference plus one test window must fit."""
        return 2 * self._detector.window + 1

    @classmethod
    def create_test_instance(cls) -> "DensityRatioBaseline":
        """Few basis centres, small windows — fast and seeded."""
        return cls(window=4, n_basis=10, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        return self._detector.score(means)


@register_detector("ocsvm")
class OneClassSvmBaseline(_SeriesBaselineDetector):
    """One-class-SVM novelty scoring of the test window against the past.

    At each step a ν-OCSVM is fitted on the reference window of mean
    vectors; the score is the negated mean decision value of the test
    window under that model (positive when the test window falls outside
    the reference description).  This is the single-model half of KCD —
    cheaper, and asymmetric by construction.

    Parameters
    ----------
    window:
        Number of steps in each of the reference and test windows.
    nu:
        ν parameter of the one-class SVM.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        window: int = 8,
        nu: float = 0.2,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self.window = int(window)
        self.nu = float(nu)

    @property
    def min_sequence_length(self) -> int:
        """One reference plus one test window must fit."""
        return 2 * self.window + 1

    @classmethod
    def create_test_instance(cls) -> "OneClassSvmBaseline":
        """Small windows keep the per-step SVM fit cheap."""
        return cls(window=4, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        n = means.shape[0]
        w = self.window
        scores = np.zeros(n, dtype=float)
        for t in range(w, n - w + 1):
            reference = means[t - w : t]
            test = means[t : t + w]
            gamma = median_heuristic_gamma(np.vstack([reference, test]))
            model = OneClassSVM(nu=self.nu, gamma=gamma).fit(reference)
            scores[t] = float(-model.decision_function(test).mean())
        return scores


@register_detector("mean_shift")
class MeanShiftBaseline(_SeriesBaselineDetector):
    """Window-mean difference — the descriptive-statistics strawman.

    The score at ``t`` is the Euclidean distance between the average
    mean vector of the test window and that of the reference window.
    This is precisely the summary the paper's Fig. 1 shows failing on
    changes that leave the mean untouched; the facade keeps it in the
    zoo as the floor every other method should beat.

    Parameters
    ----------
    window:
        Number of steps in each of the reference and test windows.
    threshold_sigma, min_gap:
        Facade thresholding knobs (see :class:`_SeriesBaselineDetector`).
    """

    def __init__(
        self,
        *,
        window: int = 5,
        threshold_sigma: float = 2.0,
        min_gap: int = 5,
    ) -> None:
        super().__init__(threshold_sigma=threshold_sigma, min_gap=min_gap)
        self.window = int(window)

    @property
    def min_sequence_length(self) -> int:
        """One reference plus one test window must fit."""
        return 2 * self.window + 1

    @classmethod
    def create_test_instance(cls) -> "MeanShiftBaseline":
        """Small windows so the battery's short streams fit."""
        return cls(window=3, min_gap=3)

    def _score_means(self, means: FloatArray) -> FloatArray:
        n = means.shape[0]
        w = self.window
        scores = np.zeros(n, dtype=float)
        for t in range(w, n - w + 1):
            reference = means[t - w : t].mean(axis=0)
            test = means[t : t + w].mean(axis=0)
            scores[t] = float(np.linalg.norm(test - reference))
        return scores
