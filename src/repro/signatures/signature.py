"""The :class:`Signature` type — a weighted set of representative vectors.

A signature ``S = {(u_k, w_k)}_{k=1..K}`` (paper Eq. 6) summarises the
empirical distribution of a bag: ``u_k`` are cluster centres (or bin
centres) and ``w_k`` the number of observations assigned to each centre.
Signatures are the objects that get embedded in the metric space via the
Earth Mover's Distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from .._validation import check_matrix, check_weights
from ..exceptions import ValidationError


@dataclass(frozen=True)
class Signature:
    """A weighted set of representative vectors.

    Attributes
    ----------
    positions:
        Array of shape ``(K, d)`` holding the representative vectors
        (cluster centres or bin centres).
    weights:
        Array of shape ``(K,)`` with strictly positive masses, typically the
        number of observations assigned to each representative.
    label:
        Optional identifier (e.g. the time index of the bag the signature
        was built from); carried through for bookkeeping only.
    """

    positions: np.ndarray
    weights: np.ndarray
    label: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        positions = check_matrix(self.positions, "positions")
        weights = check_weights(self.weights, "weights")
        if positions.shape[0] != weights.shape[0]:
            raise ValidationError(
                f"positions ({positions.shape[0]}) and weights ({weights.shape[0]}) "
                "must have the same length"
            )
        if np.any(weights == 0):
            keep = weights > 0
            positions = positions[keep]
            weights = weights[keep]
        positions = positions.copy()
        weights = weights.copy()
        positions.setflags(write=False)
        weights.setflags(write=False)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of representatives ``K`` in the signature."""
        return int(self.positions.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of the representative vectors."""
        return int(self.positions.shape[1])

    @property
    def total_weight(self) -> float:
        """Total mass of the signature (the bag size when weights are counts)."""
        return float(self.weights.sum())

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, float]]:
        for k in range(self.size):
            yield self.positions[k], float(self.weights[k])

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def normalized(self) -> "Signature":
        """Return a copy whose weights sum to one."""
        return Signature(
            positions=np.array(self.positions),
            weights=np.array(self.weights) / self.total_weight,
            label=self.label,
        )

    def scaled(self, factor: float) -> "Signature":
        """Return a copy with all weights multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValidationError("scale factor must be positive")
        return Signature(
            positions=np.array(self.positions),
            weights=np.array(self.weights) * float(factor),
            label=self.label,
        )

    def mean(self) -> np.ndarray:
        """Weighted mean of the representatives (the signature's centroid)."""
        w = np.array(self.weights) / self.total_weight
        return np.asarray(w @ self.positions)

    def merged(self, other: "Signature") -> "Signature":
        """Concatenate two signatures (summing masses, no deduplication)."""
        if self.dimension != other.dimension:
            raise ValidationError(
                f"cannot merge signatures of dimension {self.dimension} and {other.dimension}"
            )
        return Signature(
            positions=np.vstack([self.positions, other.positions]),
            weights=np.concatenate([self.weights, other.weights]),
            label=self.label,
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_points(points: np.ndarray, label: Optional[object] = None) -> "Signature":
        """Build a signature with one unit-mass representative per point.

        Duplicate points are collapsed and their masses added, which keeps
        the downstream transportation problems as small as possible.
        """
        points = check_matrix(points, "points")
        unique, counts = np.unique(points, axis=0, return_counts=True)
        return Signature(positions=unique, weights=counts.astype(float), label=label)

    @staticmethod
    def from_histogram(
        counts: np.ndarray, bin_centers: np.ndarray, label: Optional[object] = None
    ) -> "Signature":
        """Build a signature from histogram counts over given bin centres."""
        counts = np.asarray(counts, dtype=float).ravel()
        centers = check_matrix(bin_centers, "bin_centers")
        if counts.shape[0] != centers.shape[0]:
            raise ValidationError("counts and bin_centers must have the same length")
        keep = counts > 0
        if not np.any(keep):
            raise ValidationError("histogram has no mass")
        return Signature(positions=centers[keep], weights=counts[keep], label=label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Signature(size={self.size}, dimension={self.dimension}, "
            f"total_weight={self.total_weight:.3g}, label={self.label!r})"
        )
