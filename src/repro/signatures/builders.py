"""Builders turning bags of raw vectors into :class:`~repro.signatures.Signature`.

The paper constructs signatures by quantising each bag (Section 3.1).  A
:class:`SignatureBuilder` wraps a quantiser choice and exposes a single
:meth:`~SignatureBuilder.build` method; the convenience function
:func:`build_signature` covers the common one-off case.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .._typing import Quantizer, SeedLike
from .._validation import check_matrix, check_positive_int
from ..exceptions import ConfigurationError
from ..quantize import (
    HistogramQuantizer,
    KMeans,
    KMedoids,
    LearningVectorQuantizer,
)
from .signature import Signature

#: Quantisers available for signature construction (paper Section 3.1);
#: the canonical listing that :class:`repro.core.config.DetectorConfig`
#: and the CLI validate against.
SIGNATURE_METHODS = ("kmeans", "kmedoids", "histogram", "lvq", "exact")

_METHODS = SIGNATURE_METHODS


class SignatureBuilder:
    """Factory building signatures from bags with a fixed quantiser setup.

    Parameters
    ----------
    method:
        One of ``"kmeans"``, ``"kmedoids"``, ``"histogram"``, ``"lvq"`` or
        ``"exact"``.  ``"exact"`` skips quantisation entirely and uses every
        (unique) observation as a representative — appropriate for small
        bags or when maximal fidelity is wanted.
    n_clusters:
        Number of representatives for the clustering-based methods.
    bins:
        Number of bins per dimension for the histogram method.
    histogram_range:
        Optional fixed binning range shared by all bags (recommended so the
        grids of different bags align).
    random_state:
        Seed or generator forwarded to stochastic quantisers.
    quantizer:
        An already-configured quantiser; anything satisfying the
        :class:`repro._typing.Quantizer` protocol (e.g. a
        :class:`~repro.quantize.BaseQuantizer` subclass) is accepted.
        When given, ``method`` and the other parameters are ignored.
    """

    def __init__(
        self,
        method: str = "kmeans",
        *,
        n_clusters: int = 8,
        bins: Union[int, Sequence[int]] = 10,
        histogram_range: Optional[Sequence] = None,
        random_state: SeedLike = None,
        quantizer: Optional[Quantizer] = None,
    ) -> None:
        if quantizer is None and method not in _METHODS:
            raise ConfigurationError(
                f"method must be one of {_METHODS}, got {method!r}"
            )
        self.method = method
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.bins = bins
        self.histogram_range = histogram_range
        self.random_state = random_state
        self.quantizer = quantizer

    def _make_quantizer(self) -> Optional[Quantizer]:
        if self.quantizer is not None:
            return self.quantizer
        if self.method == "kmeans":
            return KMeans(self.n_clusters, random_state=self.random_state)
        if self.method == "kmedoids":
            return KMedoids(self.n_clusters, random_state=self.random_state)
        if self.method == "lvq":
            return LearningVectorQuantizer(self.n_clusters, random_state=self.random_state)
        if self.method == "histogram":
            return HistogramQuantizer(self.bins, range=self.histogram_range)
        return None  # "exact"

    def build(self, bag: np.ndarray, label: Optional[object] = None) -> Signature:
        """Quantise one bag (array of shape ``(n, d)``) into a signature."""
        data = check_matrix(bag, "bag")
        quantizer = self._make_quantizer()
        if quantizer is None:
            return Signature.from_points(data, label=label)
        if data.shape[0] <= self.n_clusters and self.method in ("kmeans", "kmedoids", "lvq"):
            # Fewer points than requested clusters: exact representation is
            # both cheaper and more faithful.
            return Signature.from_points(data, label=label)
        result = quantizer.fit(data)
        return Signature(positions=result.centers, weights=result.counts, label=label)

    def build_sequence(
        self, bags: Sequence[np.ndarray], labels: Optional[Sequence[object]] = None
    ) -> list[Signature]:
        """Quantise a sequence of bags into a list of signatures."""
        if labels is None:
            labels = list(range(len(bags)))
        return [self.build(bag, label=lab) for bag, lab in zip(bags, labels)]


def build_signature(
    bag: np.ndarray,
    method: str = "kmeans",
    *,
    n_clusters: int = 8,
    bins: Union[int, Sequence[int]] = 10,
    histogram_range: Optional[Sequence] = None,
    random_state: SeedLike = None,
    label: Optional[object] = None,
) -> Signature:
    """Convenience wrapper: build a single signature from one bag."""
    builder = SignatureBuilder(
        method,
        n_clusters=n_clusters,
        bins=bins,
        histogram_range=histogram_range,
        random_state=random_state,
    )
    return builder.build(bag, label=label)
