"""Signature representation of bags (paper Section 3.1)."""

from .builders import SignatureBuilder, build_signature
from .signature import Signature

__all__ = ["Signature", "SignatureBuilder", "build_signature"]
