"""Testing utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind the orchestrator's recovery test suite (and usable by
downstream users who want to drill their own pipelines): seeded,
monkeypatch-style injectors for worker crashes, hung and transiently
failing solves, poison pairs and corrupt checkpoint files.
"""

from .faults import (
    FakeClock,
    InjectionLog,
    bitflip_checkpoint,
    inject_poison_pairs,
    inject_transient_solver_error,
    inject_worker_crash,
    inject_worker_hang,
    match_first_row,
    tamper_checkpoint_values,
    tamper_snapshot_payload,
    truncate_checkpoint,
)

__all__ = [
    "FakeClock",
    "InjectionLog",
    "bitflip_checkpoint",
    "inject_poison_pairs",
    "inject_transient_solver_error",
    "inject_worker_crash",
    "inject_worker_hang",
    "match_first_row",
    "tamper_checkpoint_values",
    "tamper_snapshot_payload",
    "truncate_checkpoint",
]
