"""Deterministic, seeded fault injection for the shard orchestration stack.

Every injector is a context manager that patches
:meth:`repro.emd.batch.PairwiseEMDEngine.compute_pairs` (the one choke
point every shard solve goes through) with a wrapper that fires a
scripted fault and otherwise delegates to the real solver, restoring the
original on exit.  Faults fire on *deterministic* conditions — pair
counts, call predicates, explicit ``times`` budgets, sentinel files for
cross-process counting — never on wall-clock or randomness, so a faulted
test run replays identically every time.

The injectors cover the orchestrator's whole fault matrix:

* :func:`inject_worker_crash` — a worker dying at pair N (an in-process
  :class:`~repro.emd.orchestrator.WorkerCrash` through the inline
  backend, or a hard ``os._exit`` for real worker processes);
* :func:`inject_worker_hang` — a solve that never returns (the inline
  backend reports the attempt as running until the orchestrator kills
  it);
* :func:`inject_transient_solver_error` — a
  :class:`~repro.exceptions.SolverError` without pair context that
  clears after ``times`` firings (the retry/backoff path);
* :func:`inject_poison_pairs` — specific pairs whose presence makes a
  batched solve fail with ``pair_indices`` (the bisection + quarantine
  path), optionally also failing the singleton re-solve and the
  exact-LP rescue;
* :func:`truncate_checkpoint` / :func:`bitflip_checkpoint` /
  :func:`tamper_checkpoint_values` — on-disk checkpoint corruption
  (unreadable archive, flipped bits, a valid archive whose payload no
  longer matches its checksum);
* :class:`FakeClock` — an injectable clock/sleep pair so timeout and
  straggler behaviour is driven by simulated time.

Because Linux starts worker processes by forking the patched parent,
the ``compute_pairs`` wrappers are inherited by
:class:`~repro.emd.orchestrator.ProcessWorkerBackend` workers too; their
in-memory counters are per-process, so cross-process ``times`` budgets
use sentinel files instead.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..emd.batch import PairwiseEMDEngine
from ..emd.orchestrator import WorkerCrash, WorkerHang
from ..exceptions import SolverError
from ..signatures import Signature

#: A predicate over the pair list of one ``compute_pairs`` call.
PairsPredicate = Callable[[Sequence[Tuple[Signature, Signature]]], bool]


@dataclass
class InjectionLog:
    """Chronological record of the faults an injector actually fired."""

    events: List[str] = field(default_factory=list)

    def record(self, event: str) -> None:
        self.events.append(event)

    def count(self, prefix: str) -> int:
        """How many recorded events start with ``prefix``."""
        return sum(1 for event in self.events if event.startswith(prefix))


class FakeClock:
    """Deterministic monotonic clock + sleep pair for orchestrator tests.

    Time advances only through :meth:`sleep` (called by the orchestrator
    when no attempt makes progress) and :meth:`advance`, so timeout and
    straggler thresholds are crossed by script, not by host load.  Pass
    ``clock=fake`` and ``sleep=fake.sleep`` to the orchestrator.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: List[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.now += float(seconds)

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class _FireBudget:
    """``times`` firings, counted in memory or via cross-process sentinels."""

    def __init__(self, times: int, sentinel: Optional[Union[str, Path]]) -> None:
        self.times = int(times)
        self.sentinel = None if sentinel is None else Path(sentinel)
        self.count = 0

    def _marks(self) -> List[Path]:
        assert self.sentinel is not None
        return sorted(self.sentinel.parent.glob(self.sentinel.name + ".fired.*"))

    def should_fire(self) -> bool:
        if self.sentinel is not None:
            return len(self._marks()) < self.times
        return self.count < self.times

    def fire(self) -> int:
        """Record one firing; returns the 1-based firing number."""
        self.count += 1
        if self.sentinel is not None:
            number = len(self._marks()) + 1
            self.sentinel.parent.mkdir(parents=True, exist_ok=True)
            (self.sentinel.parent / f"{self.sentinel.name}.fired.{number}").touch()
            return number
        return self.count


def _always(pairs: Sequence[Tuple[Signature, Signature]]) -> bool:
    return True


def match_first_row(row: int) -> PairsPredicate:
    """Predicate matching the shard whose first pair starts at ``row``.

    Shard pair lists are enumerated row-major, so the first pair's left
    label identifies the shard — handy for targeting one shard's solve.
    """

    def predicate(pairs: Sequence[Tuple[Signature, Signature]]) -> bool:
        return bool(pairs) and pairs[0][0].label == row

    return predicate


@contextmanager
def _patched_compute_pairs(wrapper: Callable[..., Any]) -> Iterator[None]:
    original = PairwiseEMDEngine.compute_pairs
    PairwiseEMDEngine.compute_pairs = wrapper  # type: ignore[method-assign]
    try:
        yield
    finally:
        PairwiseEMDEngine.compute_pairs = original  # type: ignore[method-assign]


@contextmanager
def inject_worker_crash(
    at_pair: int,
    *,
    times: int = 1,
    hard: bool = False,
    sentinel: Optional[Union[str, Path]] = None,
    log: Optional[InjectionLog] = None,
) -> Iterator[InjectionLog]:
    """Kill the worker once the cumulative pair count crosses ``at_pair``.

    ``hard=False`` raises :class:`~repro.emd.orchestrator.WorkerCrash`
    (the inline backend's crash protocol; propagates out of a plain
    :class:`~repro.emd.sharding.ShardRunner` like a real death mid-run);
    ``hard=True`` calls ``os._exit`` — only meaningful inside a real
    worker process, where the parent observes a dead worker with no
    result.  ``sentinel`` names a file used to count firings across
    process boundaries (fork copies in-memory counters).
    """
    log = log if log is not None else InjectionLog()
    budget = _FireBudget(times, sentinel)
    pairs_seen = {"n": 0}
    original = PairwiseEMDEngine.compute_pairs

    def wrapper(
        self: PairwiseEMDEngine, pairs: Sequence[Tuple[Signature, Signature]]
    ) -> np.ndarray:
        if budget.should_fire() and pairs_seen["n"] + len(pairs) > at_pair:
            number = budget.fire()
            log.record(f"crash:{number}:after_pair:{pairs_seen['n']}")
            if hard:
                os._exit(23)
            raise WorkerCrash(f"injected worker crash #{number} at pair {at_pair}")
        pairs_seen["n"] += len(pairs)
        return original(self, pairs)

    with _patched_compute_pairs(wrapper):
        yield log


@contextmanager
def inject_worker_hang(
    *,
    match: Optional[PairsPredicate] = None,
    times: int = 1,
    log: Optional[InjectionLog] = None,
) -> Iterator[InjectionLog]:
    """Make matching solves hang (never return) for ``times`` firings.

    Raises :class:`~repro.emd.orchestrator.WorkerHang`, which the inline
    backend models as an attempt that stays running until the
    orchestrator kills it — the deterministic stand-in for a hung LP
    solve, driving the timeout and straggler re-dispatch paths.
    """
    log = log if log is not None else InjectionLog()
    predicate = match if match is not None else _always
    budget = _FireBudget(times, None)
    original = PairwiseEMDEngine.compute_pairs

    def wrapper(
        self: PairwiseEMDEngine, pairs: Sequence[Tuple[Signature, Signature]]
    ) -> np.ndarray:
        if budget.should_fire() and predicate(pairs):
            number = budget.fire()
            log.record(f"hang:{number}")
            raise WorkerHang(f"injected hang #{number}")
        return original(self, pairs)

    with _patched_compute_pairs(wrapper):
        yield log


@contextmanager
def inject_transient_solver_error(
    *,
    times: int = 1,
    match: Optional[PairsPredicate] = None,
    sentinel: Optional[Union[str, Path]] = None,
    log: Optional[InjectionLog] = None,
) -> Iterator[InjectionLog]:
    """Fail matching solves with a context-free ``SolverError``.

    No ``pair_indices`` are attached, so the orchestrator cannot
    quarantine anything — the whole attempt fails and must be retried
    with backoff; after ``times`` firings the fault clears and the
    retry succeeds.
    """
    log = log if log is not None else InjectionLog()
    predicate = match if match is not None else _always
    budget = _FireBudget(times, sentinel)
    original = PairwiseEMDEngine.compute_pairs

    def wrapper(
        self: PairwiseEMDEngine, pairs: Sequence[Tuple[Signature, Signature]]
    ) -> np.ndarray:
        if budget.should_fire() and predicate(pairs):
            number = budget.fire()
            log.record(f"transient:{number}")
            raise SolverError(
                f"injected transient solver failure #{number} of {times}"
            )
        return original(self, pairs)

    with _patched_compute_pairs(wrapper):
        yield log


def _pair_key(sig_a: Signature, sig_b: Signature) -> Tuple[Any, Any]:
    a, b = sig_a.label, sig_b.label
    try:
        return (a, b) if a <= b else (b, a)
    except TypeError:
        return (a, b)


@contextmanager
def inject_poison_pairs(
    poison: Sequence[Tuple[Any, Any]],
    *,
    fail_singleton: bool = False,
    fail_exact: bool = False,
    report: str = "exact",
    log: Optional[InjectionLog] = None,
) -> Iterator[InjectionLog]:
    """Make specific pairs (by signature label) poison batched solves.

    Any ``compute_pairs`` call whose pair list contains a poisoned pair
    fails with :class:`~repro.exceptions.SolverError` carrying
    ``pair_indices``: the poisoned positions when ``report="exact"``, or
    the whole batch when ``report="batch"`` (forcing the orchestrator to
    bisect its way down).  ``fail_singleton`` extends the fault to
    single-pair solves of a poisoned pair (defeating the engine-retry
    rescue) and ``fail_exact`` also fails the per-pair exact-LP rescue —
    with both set, the pair can only end up quarantined.
    """
    if report not in ("exact", "batch"):
        raise ValueError(f"report must be 'exact' or 'batch', got {report!r}")
    log = log if log is not None else InjectionLog()
    keys: Set[Tuple[Any, Any]] = set()
    for a, b in poison:
        keys.add((a, b))
        keys.add((b, a))
    original = PairwiseEMDEngine.compute_pairs

    def wrapper(
        self: PairwiseEMDEngine, pairs: Sequence[Tuple[Signature, Signature]]
    ) -> np.ndarray:
        positions = [
            k for k, (a, b) in enumerate(pairs) if (a.label, b.label) in keys
        ]
        if positions and (len(pairs) > 1 or fail_singleton):
            reported = (
                tuple(positions) if report == "exact" else tuple(range(len(pairs)))
            )
            log.record(f"poison:batch_of_{len(pairs)}:positions:{positions}")
            raise SolverError(
                f"injected poison pair(s) at batch positions {positions}",
                pair_indices=reported,
            )
        return original(self, pairs)

    from ..emd import orchestrator as orchestrator_module

    original_emd = orchestrator_module.emd

    def emd_wrapper(
        sig_a: Signature, sig_b: Signature, **kwargs: Any
    ) -> float:
        if (sig_a.label, sig_b.label) in keys:
            log.record(f"poison:exact_lp:{_pair_key(sig_a, sig_b)}")
            raise SolverError(
                f"injected exact-LP failure for pair {_pair_key(sig_a, sig_b)}"
            )
        return original_emd(sig_a, sig_b, **kwargs)

    if fail_exact:
        orchestrator_module.emd = emd_wrapper  # type: ignore[assignment]
    try:
        with _patched_compute_pairs(wrapper):
            yield log
    finally:
        if fail_exact:
            orchestrator_module.emd = original_emd  # type: ignore[assignment]


# ---------------------------------------------------------------------- #
# Checkpoint corruption
# ---------------------------------------------------------------------- #
def truncate_checkpoint(path: Union[str, Path], *, keep_fraction: float = 0.5) -> None:
    """Cut a checkpoint file short, as a crash mid-copy would."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must lie in [0, 1), got {keep_fraction}")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


def bitflip_checkpoint(
    path: Union[str, Path], *, seed: int = 0, n_bits: int = 1
) -> None:
    """Flip ``n_bits`` seeded-random bits in a checkpoint file."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    rng = np.random.default_rng(seed)
    for _ in range(n_bits):
        index = int(rng.integers(len(data)))
        data[index] ^= 1 << int(rng.integers(8))
    path.write_bytes(bytes(data))


def tamper_checkpoint_values(path: Union[str, Path], *, delta: float = 1.0) -> None:
    """Rewrite a checkpoint's values without updating its checksum.

    Produces a perfectly readable archive whose payload silently differs
    from what was computed — the corruption class only the sha256
    payload checksum (checkpoint format v2) can catch, since the zip
    layer's own CRC is recomputed by the rewrite.
    """
    path = Path(path)
    # Deliberately skips checksum/fingerprint validation: this *writes*
    # the corruption the validating loader must catch.
    with np.load(path, allow_pickle=False) as archive:  # reprolint: disable=RL007
        entries = {name: np.asarray(archive[name]) for name in archive.files}
    values = np.asarray(entries["values"], dtype=float).copy()
    if values.size == 0:
        raise ValueError(f"{path} holds no values; nothing to tamper with")
    values[0] += delta
    entries["values"] = values
    with open(path, "wb") as handle:
        np.savez(handle, **entries)


def tamper_snapshot_payload(
    path: Union[str, Path], *, key: str = "window_matrix", delta: float = 1.0
) -> None:
    """Rewrite one payload array of a stream snapshot, keeping its stamp.

    The stream-snapshot analogue of :func:`tamper_checkpoint_values`: the
    archive stays perfectly readable and keeps its recorded format
    version, fingerprint and checksum, but the named payload array
    (default: the rolling window matrix) silently differs — the
    corruption class only the sha256 payload checksum of
    :func:`repro.service.snapshots.load_stream_snapshot` can catch.
    """
    path = Path(path)
    # Deliberately skips checksum/fingerprint validation: this *writes*
    # the corruption the validating loader must catch.
    with np.load(path, allow_pickle=False) as archive:  # reprolint: disable=RL007
        entries = {name: np.asarray(archive[name]) for name in archive.files}
    if key not in entries:
        raise ValueError(f"{path} has no payload array {key!r}")
    values = np.asarray(entries[key], dtype=float).copy()
    if values.size == 0:
        raise ValueError(f"{path} holds no {key!r} values; nothing to tamper with")
    values.flat[0] += delta
    entries[key] = values
    with open(path, "wb") as handle:
        np.savez(handle, **entries)
