"""Scaling / standardisation utilities for bag streams.

The EMD is not scale-invariant: a sensor channel measured in milli-g would
dominate one measured in g.  When the channels of a bag stream live on very
different scales it is therefore good practice to standardise them *using
statistics estimated from a reference portion of the stream* before
building signatures.  The transformers here follow a fit/transform pattern
and operate on whole bag sequences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_matrix
from ..exceptions import NotFittedError, ValidationError


class BagStandardScaler:
    """Per-dimension standardisation of all observations in a bag stream.

    Parameters
    ----------
    with_mean:
        Subtract the per-dimension mean.
    with_std:
        Divide by the per-dimension standard deviation.
    epsilon:
        Floor applied to the standard deviation to avoid division by zero
        for constant dimensions.
    """

    def __init__(self, *, with_mean: bool = True, with_std: bool = True, epsilon: float = 1e-12) -> None:
        if epsilon <= 0:
            raise ValidationError("epsilon must be positive")
        self.with_mean = bool(with_mean)
        self.with_std = bool(with_std)
        self.epsilon = float(epsilon)
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, bags: Sequence[np.ndarray]) -> "BagStandardScaler":
        """Estimate the per-dimension mean and scale from all observations."""
        if len(bags) == 0:
            raise ValidationError("need at least one bag to fit the scaler")
        stacked = np.vstack([check_matrix(bag, "bag") for bag in bags])
        self.mean_ = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        self.scale_ = np.maximum(std, self.epsilon)
        return self

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("BagStandardScaler must be fitted before use")

    def transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Apply the fitted standardisation to every bag."""
        self._check_fitted()
        out = []
        for bag in bags:
            data = check_matrix(bag, "bag")
            if data.shape[1] != self.mean_.shape[0]:
                raise ValidationError(
                    f"bag has {data.shape[1]} dimensions, scaler was fitted on {self.mean_.shape[0]}"
                )
            if self.with_mean:
                data = data - self.mean_
            if self.with_std:
                data = data / self.scale_
            out.append(data)
        return out

    def fit_transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Fit on ``bags`` and return the transformed stream."""
        return self.fit(bags).transform(bags)

    def inverse_transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Undo the standardisation."""
        self._check_fitted()
        out = []
        for bag in bags:
            data = check_matrix(bag, "bag")
            if self.with_std:
                data = data * self.scale_
            if self.with_mean:
                data = data + self.mean_
            out.append(data)
        return out


class BagRobustScaler:
    """Median / inter-quartile-range standardisation, robust to outliers.

    Useful for the heavy-tailed per-node statistics of the bipartite-graph
    pipeline (edge weights can span orders of magnitude).
    """

    def __init__(self, *, epsilon: float = 1e-12) -> None:
        if epsilon <= 0:
            raise ValidationError("epsilon must be positive")
        self.epsilon = float(epsilon)
        self.median_: Optional[np.ndarray] = None
        self.iqr_: Optional[np.ndarray] = None

    def fit(self, bags: Sequence[np.ndarray]) -> "BagRobustScaler":
        """Estimate per-dimension medians and inter-quartile ranges."""
        if len(bags) == 0:
            raise ValidationError("need at least one bag to fit the scaler")
        stacked = np.vstack([check_matrix(bag, "bag") for bag in bags])
        self.median_ = np.median(stacked, axis=0)
        q75 = np.percentile(stacked, 75, axis=0)
        q25 = np.percentile(stacked, 25, axis=0)
        self.iqr_ = np.maximum(q75 - q25, self.epsilon)
        return self

    def transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Apply the fitted robust standardisation to every bag."""
        if self.median_ is None or self.iqr_ is None:
            raise NotFittedError("BagRobustScaler must be fitted before use")
        out = []
        for bag in bags:
            data = check_matrix(bag, "bag")
            if data.shape[1] != self.median_.shape[0]:
                raise ValidationError(
                    f"bag has {data.shape[1]} dimensions, scaler was fitted on {self.median_.shape[0]}"
                )
            out.append((data - self.median_) / self.iqr_)
        return out

    def fit_transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Fit on ``bags`` and return the transformed stream."""
        return self.fit(bags).transform(bags)
