"""Preprocessing utilities for bag streams (scaling, PCA, innovation filtering)."""

from .innovations import InnovationFilter
from .pca import BagPCA
from .scaling import BagRobustScaler, BagStandardScaler

__all__ = ["BagStandardScaler", "BagRobustScaler", "BagPCA", "InnovationFilter"]
