"""Innovation filtering: remove the predictable component of a bag stream.

The paper's concluding remarks note that signals are often preprocessed by
removing their predictable component, so that the resulting *innovation*
series is (approximately) i.i.d. — which is the assumption the detector
makes about the elements within each bag and about the bag sequence.  This
module removes the predictable drift of the *bag-level location* over time:
an AR model is fitted to the sequence of bag means, and each bag is
re-centred by the model's one-step-ahead prediction, so that slow,
predictable drift no longer shows up as apparent change while genuine
distributional changes are preserved.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError


class InnovationFilter:
    """Remove predictable bag-level drift via an AR model on the bag means.

    Parameters
    ----------
    order:
        AR order of the mean-sequence model.
    ridge:
        Ridge regularisation of the least-squares fit of the AR
        coefficients (keeps the filter stable for short streams).
    keep_global_mean:
        When ``True`` (default) the global mean of the stream is added back
        after the predictable component is removed, so the output lives on
        the same scale as the input.
    """

    def __init__(self, order: int = 1, *, ridge: float = 1e-6, keep_global_mean: bool = True) -> None:
        self.order = check_positive_int(order, "order")
        if ridge < 0:
            raise ValidationError("ridge must be non-negative")
        self.ridge = float(ridge)
        self.keep_global_mean = bool(keep_global_mean)

    # ------------------------------------------------------------------ #
    # AR fitting on the mean sequence
    # ------------------------------------------------------------------ #
    def _fit_ar(self, means: np.ndarray) -> np.ndarray:
        """Least-squares AR coefficients (per dimension, shared lags)."""
        n, d = means.shape
        k = self.order
        if n <= k + 1:
            return np.zeros((k, d))
        # Build the lagged design matrix once per dimension.
        coefficients = np.zeros((k, d))
        for dim in range(d):
            series = means[:, dim]
            design = np.column_stack([series[k - lag - 1 : n - lag - 1] for lag in range(k)])
            target = series[k:]
            gram = design.T @ design + self.ridge * np.eye(k)
            coefficients[:, dim] = np.linalg.solve(gram, design.T @ target)
        return coefficients

    def _predict_means(self, means: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """One-step-ahead predictions of the mean sequence (first ``order``
        entries are predicted by the running average of what is available)."""
        n, d = means.shape
        k = self.order
        predictions = np.zeros_like(means)
        for t in range(n):
            if t < k:
                predictions[t] = means[:t].mean(axis=0) if t > 0 else means[0]
            else:
                lagged = means[t - k : t][::-1]  # most recent lag first
                predictions[t] = np.einsum("kd,kd->d", coefficients, lagged)
        return predictions

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Return the innovation stream: each bag re-centred by its prediction."""
        if len(bags) == 0:
            raise ValidationError("need at least one bag")
        matrices = [check_matrix(bag, "bag") for bag in bags]
        dims = {m.shape[1] for m in matrices}
        if len(dims) != 1:
            raise ValidationError("all bags must share the same dimensionality")
        means = np.vstack([m.mean(axis=0) for m in matrices])
        coefficients = self._fit_ar(means)
        predictions = self._predict_means(means, coefficients)
        offset = means.mean(axis=0) if self.keep_global_mean else 0.0
        return [m - predictions[t] + offset for t, m in enumerate(matrices)]

    fit_transform = transform
