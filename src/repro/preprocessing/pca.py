"""Principal component analysis for dimensionality reduction of bag streams.

The paper's future-work section notes that only a few dimensions of the
observations may be relevant to changes, and that an underlying structure
of lower dimension ``d' < d`` may separate normal and abnormal behaviour
better.  An unsupervised first step in that direction is to project the
observations onto their leading principal components before building
signatures — fewer dimensions also make the ground-distance computations
cheaper.  The implementation is a small, from-scratch PCA (covariance
eigendecomposition) operating on whole bag sequences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import NotFittedError, ValidationError


class BagPCA:
    """PCA fitted on all observations of a bag stream.

    Parameters
    ----------
    n_components:
        Number of principal components to keep; must not exceed the data
        dimensionality.
    whiten:
        Scale each projected component to unit variance.
    """

    def __init__(self, n_components: int = 2, *, whiten: bool = False) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.whiten = bool(whiten)
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, bags: Sequence[np.ndarray]) -> "BagPCA":
        """Estimate the principal directions from all observations."""
        if len(bags) == 0:
            raise ValidationError("need at least one bag to fit the PCA")
        stacked = np.vstack([check_matrix(bag, "bag") for bag in bags])
        n, d = stacked.shape
        if self.n_components > d:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the data dimension {d}"
            )
        self.mean_ = stacked.mean(axis=0)
        centered = stacked - self.mean_
        covariance = centered.T @ centered / max(n - 1, 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        self.components_ = eigenvectors[:, : self.n_components].T
        self.explained_variance_ = eigenvalues[: self.n_components]
        total = eigenvalues.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise NotFittedError("BagPCA must be fitted before use")

    def transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Project every bag onto the fitted principal components."""
        self._check_fitted()
        out = []
        for bag in bags:
            data = check_matrix(bag, "bag")
            if data.shape[1] != self.mean_.shape[0]:
                raise ValidationError(
                    f"bag has {data.shape[1]} dimensions, PCA was fitted on {self.mean_.shape[0]}"
                )
            projected = (data - self.mean_) @ self.components_.T
            if self.whiten:
                projected = projected / np.sqrt(np.maximum(self.explained_variance_, 1e-12))
            out.append(projected)
        return out

    def fit_transform(self, bags: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Fit on ``bags`` and return the projected stream."""
        return self.fit(bags).transform(bags)
