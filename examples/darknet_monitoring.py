"""Darknet monitoring: detect attack campaigns and learn which features matter.

The paper's conclusion mentions that the method has been used to detect
cyber attacks observed by a darknet telescope.  This example makes that
scenario concrete with the bundled traffic simulator, and also exercises
two extensions shipped with the library:

* the supervised feature weighter (the paper's future-work "online feature
  selection"), trained on a labelled stream and applied to a fresh one;
* segmentation of the monitored stream at the detected alarms.

Run with::

    python examples/darknet_monitoring.py
"""

from __future__ import annotations


from repro import BagChangePointDetector
from repro.core import segment_from_result
from repro.datasets import AttackCampaign, DarknetTrafficSimulator, PACKET_FEATURES
from repro.evaluation import match_alarms
from repro.extensions import SupervisedFeatureWeighter


def build_stream(seed: int, onset: int, kind: str) -> tuple:
    """One darknet stream with a single scripted campaign."""
    campaigns = (AttackCampaign(start=onset, duration=8, kind=kind, intensity=3.5),)
    simulator = DarknetTrafficSimulator(
        n_windows=40, base_rate=150, campaigns=campaigns, random_state=seed
    )
    return simulator.generate()


def main() -> None:
    # A labelled historical stream (analysts confirmed the worm outbreak)...
    train = build_stream(seed=0, onset=15, kind="worm")
    # ...and a fresh stream to monitor, with a different campaign type.
    monitor = build_stream(seed=1, onset=20, kind="port_scan")

    print(f"Packet features: {PACKET_FEATURES}")
    print(f"Training stream: campaign at windows {train.change_points}")
    print(f"Monitored stream: campaign at windows {monitor.change_points}\n")

    # Learn which packet features actually carry attack-induced changes.
    weighter = SupervisedFeatureWeighter(window=5, power=2.0).fit(
        train.bags, train.change_points
    )
    ranked = weighter.top_dimensions(len(PACKET_FEATURES))
    print("Learned feature relevance (most to least):")
    for rank, dim in enumerate(ranked, start=1):
        print(f"  {rank}. {PACKET_FEATURES[dim]:<16} weight {weighter.weights_[dim]:.2f}")
    print()

    detector_kwargs = dict(
        tau=5, tau_test=5, signature_method="kmeans", n_clusters=6,
        n_bootstrap=150, random_state=0,
    )
    raw_result = BagChangePointDetector(**detector_kwargs).detect(monitor.bags)
    weighted_result = BagChangePointDetector(**detector_kwargs).detect(
        weighter.transform(monitor.bags)
    )

    for label, result in (("raw features", raw_result), ("weighted features", weighted_result)):
        matching = match_alarms(result.alarm_times.tolist(), monitor.change_points, tolerance=3)
        print(f"{label:<18} alerts at {result.alarm_times.tolist()}  "
              f"recall {matching.recall:.2f}  precision {matching.precision:.2f}")

    # Segment the monitored stream at the detected alarms.
    segments = segment_from_result(weighted_result, len(monitor.bags), bags=monitor.bags)
    print("\nSegmentation of the monitored stream:")
    for segment in segments:
        rate = segment.n_observations / segment.length
        print(f"  windows [{segment.start:3d}, {segment.end:3d})  "
              f"mean packets/window {rate:7.1f}  mean packet size {segment.mean[1]:7.1f}")


if __name__ == "__main__":
    main()
