"""Quickstart: detect a change in a stream of bags of 2-D vectors.

This is the smallest end-to-end use of the library: generate a stream of
bags whose underlying distribution shifts half-way through, run the
bag-of-data change-point detector, and print the per-step scores,
confidence intervals and alerts.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector


def make_stream(seed: int = 7) -> list[np.ndarray]:
    """A toy stream: 12 bags from N(0, I), then 12 bags from N(3, I).

    Bag sizes vary between 40 and 80 observations to mimic the irregular
    group sizes that motivate the bag-of-data setting.
    """
    rng = np.random.default_rng(seed)
    bags = []
    for t in range(24):
        size = int(rng.integers(40, 81))
        mean = 0.0 if t < 12 else 3.0
        bags.append(rng.normal(mean, 1.0, size=(size, 2)))
    return bags


def main() -> None:
    bags = make_stream()
    print(f"Stream of {len(bags)} bags, sizes {min(len(b) for b in bags)}"
          f"-{max(len(b) for b in bags)} observations each. True change at t=12.\n")

    detector = BagChangePointDetector(
        tau=5,            # reference window: 5 bags before the inspection point
        tau_test=5,       # test window: 5 bags from the inspection point on
        score="kl",       # symmetrised KL-divergence score (paper Eq. 17)
        signature_method="kmeans",
        n_clusters=6,
        n_bootstrap=200,  # Bayesian bootstrap replicates per step
        alpha=0.05,       # 95% confidence intervals
        random_state=0,
    )
    result = detector.detect(bags)

    print(f"{'t':>3}  {'score':>8}  {'95% CI':>19}  {'gamma':>8}  alert")
    print("-" * 52)
    for point in result:
        interval = f"[{point.interval.lower:7.3f}, {point.interval.upper:7.3f}]"
        gamma = f"{point.gamma:8.3f}" if np.isfinite(point.gamma) else "     ---"
        flag = "  <<< ALERT" if point.alert else ""
        print(f"{point.time:3d}  {point.score:8.3f}  {interval}  {gamma}{flag}")

    print()
    print(result.summary())


if __name__ == "__main__":
    main()
