"""Activity monitoring: detect activity transitions in wearable-sensor bags.

Reproduces the logic of the paper's PAMAP experiment (Section 5.2 /
Fig. 7) on the PAMAP-like simulator: a subject performs a protocol of
physical activities while wearing simulated IMUs and a heart-rate monitor;
the sensor stream is cut into 10-second bags with irregular record counts,
and the detector is asked to flag the activity transitions.

Run with::

    python examples/activity_monitoring.py
"""

from __future__ import annotations


from repro import BagChangePointDetector
from repro.datasets import ACTIVITIES, PamapSimulator
from repro.evaluation import match_alarms


def main() -> None:
    protocol = (1, 2, 3, 4, 8, 11, 2)  # lying, sitting, standing, ironing, walking, running, sitting
    simulator = PamapSimulator(random_state=3, sampling_rate=40)
    dataset = simulator.simulate_subject(protocol, bags_per_activity=10)

    names = " -> ".join(ACTIVITIES[a] for a in protocol)
    print(f"Protocol: {names}")
    print(f"{len(dataset.bags)} bags of ~{int(dataset.sizes.mean())} sensor records; "
          f"true transitions at {dataset.change_points}\n")

    detector = BagChangePointDetector(
        tau=5,
        tau_test=5,
        signature_method="kmeans",
        n_clusters=8,
        n_bootstrap=150,
        random_state=0,
    )
    result = detector.detect(dataset.bags)

    print("Alerts raised at:", result.alarm_times.tolist())
    matching = match_alarms(result.alarm_times.tolist(), dataset.change_points, tolerance=4)
    print(f"Detected {matching.true_positives}/{len(dataset.change_points)} transitions "
          f"(precision {matching.precision:.2f}, recall {matching.recall:.2f}, "
          f"mean delay {matching.mean_delay:.1f} bags)\n")

    # A compact textual "Fig. 7": score profile with transition markers.
    activity_per_bag = dataset.metadata["activity_per_bag"]
    max_score = max(result.scores.max(), 1e-9)
    print(" t  activity            score  profile")
    for point in result:
        bar = "#" * int(30 * max(point.score, 0.0) / max_score)
        marker = " |CHANGE|" if point.time in dataset.change_points else ""
        alert = " *ALERT*" if point.alert else ""
        activity = ACTIVITIES[activity_per_bag[point.time]]
        print(f"{point.time:3d}  {activity:<18} {point.score:7.3f}  {bar}{marker}{alert}")


if __name__ == "__main__":
    main()
