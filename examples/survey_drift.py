"""Survey drift: monitor the shape of a population that periodic surveys sample.

The paper's introduction motivates the bag-of-data setting with periodic
questionnaire surveys: each survey wave yields a different number of
respondents, and the analyst cares about changes in the *overall
characteristics* of the population, not about individual respondents.
This example simulates such waves: the population mean stays constant but
the population splits into two sub-groups over time — a change that is
invisible to the per-wave mean yet clearly visible to the bag-of-data
detector.  It also contrasts the offline detector with the streaming
:class:`~repro.core.OnlineBagDetector`.

Run with::

    python examples/survey_drift.py
"""

from __future__ import annotations

import numpy as np

from repro import BagChangePointDetector, OnlineBagDetector
from repro.baselines import ChangeFinder, score_on_means


def simulate_survey_waves(seed: int = 5) -> tuple[list[np.ndarray], int]:
    """30 survey waves of 150-400 respondents answering two numeric questions.

    For the first 18 waves the population is homogeneous; afterwards it
    polarises into two sub-groups with opposite answer profiles whose
    average stays the same.
    """
    rng = np.random.default_rng(seed)
    waves = []
    change_at = 18
    for wave in range(30):
        n_respondents = int(rng.integers(150, 401))
        if wave < change_at:
            answers = rng.normal([5.0, 5.0], 1.0, size=(n_respondents, 2))
        else:
            group = rng.random(n_respondents) < 0.5
            answers = np.where(
                group[:, None],
                rng.normal([2.0, 8.0], 1.0, size=(n_respondents, 2)),
                rng.normal([8.0, 2.0], 1.0, size=(n_respondents, 2)),
            )
        waves.append(answers)
    return waves, change_at


def main() -> None:
    waves, change_at = simulate_survey_waves()
    print(f"{len(waves)} survey waves; the population polarises from wave {change_at} on.\n")

    # The per-wave mean barely moves, so a conventional detector on the mean
    # sequence sees nothing.
    means = np.array([wave.mean(axis=0) for wave in waves])
    drift_of_means = np.linalg.norm(means[change_at:].mean(axis=0) - means[:change_at].mean(axis=0))
    print(f"Shift of the wave means across the change: {drift_of_means:.3f} "
          "(essentially nothing -> mean-based monitoring is blind here)")
    baseline_scores = score_on_means(ChangeFinder(dim=2, discount=0.05), waves)
    print(f"ChangeFinder on the mean sequence: max score after the change "
          f"{baseline_scores[change_at:].max():.2f} vs before {baseline_scores[8:change_at].max():.2f}\n")

    # Offline bag-of-data detection.
    detector = BagChangePointDetector(
        tau=5, tau_test=5, signature_method="kmeans", n_clusters=6,
        n_bootstrap=200, random_state=0,
    )
    result = detector.detect(waves)
    print("Offline detector alerts at waves:", result.alarm_times.tolist())

    # Streaming detection: waves arrive one at a time.
    online = OnlineBagDetector(
        tau=5, tau_test=5, signature_method="kmeans", n_clusters=6,
        n_bootstrap=200, random_state=0,
    )
    print("\nStreaming run (one survey wave at a time):")
    for wave_index, wave in enumerate(waves):
        point = online.push(wave)
        if point is not None and point.alert:
            print(f"  after receiving wave {wave_index}: ALERT for inspection point {point.time} "
                  f"(score {point.score:.3f})")
    if not online.history.alerts.any():
        print("  no alerts raised")


if __name__ == "__main__":
    main()
