"""Network monitoring: detect structural changes in a stream of bipartite graphs.

Reproduces the logic of the paper's Section 5.3 / 5.4 experiments: a
sender/receiver communication network is observed in fixed time windows;
each window yields a bipartite graph whose node sets change over time.
Seven per-node/per-edge statistics turn every graph into seven bags of
1-D values, and the bag-of-data detector is run on each feature stream.

Run with::

    python examples/network_monitoring.py
"""

from __future__ import annotations


from repro import BagChangePointDetector
from repro.datasets import EnronLikeStream, OrganizationalEvent
from repro.graphs import FEATURE_NAMES, feature_bag_sequences


def main() -> None:
    events = (
        OrganizationalEvent(20, "chief executive resigns", traffic_factor=1.8, restructuring=0.3),
        OrganizationalEvent(35, "quarterly loss announced", traffic_factor=2.2, restructuring=0.5),
        OrganizationalEvent(48, "bankruptcy filing", traffic_factor=0.5, restructuring=0.8),
    )
    stream = EnronLikeStream(
        n_weeks=60, events=events, random_state=1, mean_senders=80, mean_recipients=100
    )
    dataset = stream.generate()
    print(f"{len(dataset.graphs)} weekly sender/recipient graphs; scripted events at "
          f"{dataset.change_points}: {list(dataset.metadata['events'].values())}\n")

    feature_streams = feature_bag_sequences(dataset.graphs)
    detector_kwargs = dict(
        tau=5,
        tau_test=3,
        signature_method="histogram",
        bins=24,
        n_bootstrap=120,
        random_state=0,
    )

    detected_by: dict[int, list[str]] = {week: [] for week in dataset.change_points}
    for feature_id, bags in feature_streams.items():
        detector = BagChangePointDetector(**detector_kwargs)
        result = detector.detect(bags)
        name = FEATURE_NAMES[feature_id]
        alarm_weeks = result.alarm_times.tolist()
        print(f"feature {feature_id} ({name:<26}): alerts at {alarm_weeks}")
        for event_week in dataset.change_points:
            if any(event_week <= alarm <= event_week + 4 for alarm in alarm_weeks):
                detected_by[event_week].append(name)

    print("\nEvent coverage (which features flagged each scripted event):")
    for week, label in dataset.metadata["events"].items():
        features = detected_by.get(week, [])
        status = ", ".join(features) if features else "NOT DETECTED"
        print(f"  week {week:3d}  {label:<30} {status}")


if __name__ == "__main__":
    main()
