"""Shared contract battery: every registered detector, one test suite.

The facade's value is uniformity — any detector reachable through
:mod:`repro.api` must behave identically at the contract level no matter
how different the algorithm underneath is.  This battery parametrises
over the *registry* (not a hand-kept list), so registering a new adapter
automatically enrols it here.
"""

import functools

import numpy as np
import pytest

from repro.api import (
    BaseBagDetector,
    dense_to_sparse,
    detector_names,
    get_detector,
    sparse_to_dense,
)
from repro.datasets import make_mixture_stream
from repro.exceptions import ReproError, ValidationError

ALL_DETECTORS = detector_names()

EXPECTED_DETECTORS = {
    "change_finder",
    "cusum",
    "density_ratio",
    "emd",
    "emd_online",
    "kcd",
    "mean_shift",
    "ocsvm",
    "sdar",
    "sst",
}


@functools.lru_cache(maxsize=1)
def _stream():
    """One small seeded three-regime stream shared by the whole battery."""
    dataset = make_mixture_stream(
        steps_per_regime=15, bag_size=30, bag_size_jitter=5, random_state=7
    )
    return tuple(bag.copy() for bag in dataset.bags), tuple(dataset.change_points)


@functools.lru_cache(maxsize=None)
def _changepoints(name):
    """fit_predict of a fresh test instance on the shared stream (cached)."""
    bags, _ = _stream()
    detector = get_detector(name).create_test_instance()
    return detector.fit_predict(list(bags))


def test_registry_contains_all_ten_detectors():
    assert set(ALL_DETECTORS) == EXPECTED_DETECTORS


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_create_test_instance_is_a_facade_detector(name):
    detector = get_detector(name).create_test_instance()
    assert isinstance(detector, BaseBagDetector)
    assert detector.min_sequence_length >= 2


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_fit_predict_returns_valid_sparse_changepoints(name):
    bags, _ = _stream()
    cps = _changepoints(name)
    assert cps.dtype == np.int64
    assert cps.ndim == 1
    if cps.size:
        assert np.all(np.diff(cps) > 0), "changepoints must be strictly increasing"
        assert cps[0] > 0 and cps[-1] < len(bags)


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_seeded_determinism_across_fresh_instances(name):
    bags, _ = _stream()
    again = get_detector(name).create_test_instance().fit_predict(list(bags))
    np.testing.assert_array_equal(_changepoints(name), again)


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_fit_transform_matches_sparse_to_dense(name):
    bags, _ = _stream()
    labels = get_detector(name).create_test_instance().fit_transform(list(bags))
    np.testing.assert_array_equal(labels, sparse_to_dense(_changepoints(name), len(bags)))
    np.testing.assert_array_equal(dense_to_sparse(labels), _changepoints(name))
    assert labels.shape == (len(bags),)
    assert labels[0] == 0


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_empty_sequence_rejected(name):
    detector = get_detector(name).create_test_instance()
    with pytest.raises(ValidationError):
        detector.fit_predict([])


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_too_short_sequence_rejected(name):
    bags, _ = _stream()
    detector = get_detector(name).create_test_instance()
    short = list(bags[: detector.min_sequence_length - 1])
    with pytest.raises(ValidationError):
        detector.fit_predict(short)


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_empty_bag_rejected(name):
    bags, _ = _stream()
    detector = get_detector(name).create_test_instance()
    poisoned = list(bags)
    poisoned[3] = np.empty((0, poisoned[3].shape[1]))
    with pytest.raises(ValidationError):
        detector.fit_predict(poisoned)


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_invalid_configuration_rejected(name):
    cls = get_detector(name)
    with pytest.raises(ReproError):
        if name in ("emd", "emd_online"):
            cls(tau=1)
        else:
            cls(min_gap=0)


@pytest.mark.parametrize("name", ["emd", "emd_online"])
def test_paper_detectors_find_the_mixture_changes(name):
    """The paper's own detectors must actually locate the regime changes."""
    _, true_cps = _stream()
    cps = _changepoints(name)
    for true_cp in true_cps:
        assert np.any(np.abs(cps - true_cp) <= 3), (true_cp, cps.tolist())


def test_one_dimensional_bags_are_promoted():
    rng = np.random.default_rng(5)
    bags = [rng.normal(0, 1, 20) for _ in range(12)]
    bags += [rng.normal(4, 1, 20) for _ in range(12)]
    detector = get_detector("mean_shift").create_test_instance()
    cps = detector.fit_predict(bags)
    assert cps.size >= 1
