"""Tests for the command-line interface."""

import csv

import numpy as np
import pytest

from repro.cli import build_parser, build_shard_parser, main


@pytest.fixture
def npz_stream(tmp_path, rng):
    """An .npz file with a clear change after the 6th bag."""
    bags = {f"bag_{i:03d}": rng.normal(0, 1, size=(25, 2)) for i in range(6)}
    bags.update({f"bag_{i:03d}": rng.normal(5, 1, size=(25, 2)) for i in range(6, 12)})
    path = tmp_path / "bags.npz"
    np.savez(path, **bags)
    return path


@pytest.fixture
def csv_stream(tmp_path, rng):
    """A long-format CSV file with a mean shift half way through."""
    path = tmp_path / "bags.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "x", "y"])
        for t in range(12):
            offset = 0.0 if t < 6 else 5.0
            for _ in range(20):
                x, y = rng.normal(offset, 1.0, size=2)
                writer.writerow([t, x, y])
    return path


class TestParser:
    def test_defaults(self, tmp_path):
        args = build_parser().parse_args([str(tmp_path / "x.npz")])
        assert args.tau == 5
        assert args.score == "kl"

    def test_custom_options(self, tmp_path):
        args = build_parser().parse_args(
            [str(tmp_path / "x.npz"), "--tau", "3", "--score", "lr", "--seed", "7"]
        )
        assert args.tau == 3
        assert args.score == "lr"
        assert args.seed == 7


class TestMain:
    def test_npz_input_stdout(self, npz_stream, capsys):
        exit_code = main(
            [str(npz_stream), "--tau", "3", "--tau-test", "3", "--signature", "exact",
             "--bootstrap", "40", "--seed", "0"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        lines = output.strip().splitlines()
        assert lines[0] == "time,score,lower,upper,gamma,alert"
        assert len(lines) > 1

    def test_linprog_batch_backend(self, npz_stream, capsys):
        exit_code = main(
            [str(npz_stream), "--tau", "3", "--tau-test", "3",
             "--signature", "histogram", "--emd-backend", "linprog_batch",
             "--bootstrap", "40", "--seed", "0"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert output.splitlines()[0] == "time,score,lower,upper,gamma,alert"

    def test_csv_input_with_output_file(self, csv_stream, tmp_path):
        out_path = tmp_path / "result.csv"
        exit_code = main(
            [str(csv_stream), "--tau", "3", "--tau-test", "3", "--signature", "exact",
             "--bootstrap", "40", "--seed", "0", "--output", str(out_path)]
        )
        assert exit_code == 0
        content = out_path.read_text().strip().splitlines()
        assert content[0].startswith("time,")
        # An alert should be raised somewhere (there is a strong change).
        assert any(line.endswith("True") for line in content[1:])

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "missing.npz")])

    def test_unsupported_extension_errors(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("nope")
        with pytest.raises(SystemExit):
            main([str(path)])

    def test_csv_missing_time_column_errors(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            main([str(path)])

    def test_sharded_detect_matches_plain(self, npz_stream, capsys):
        base = [str(npz_stream), "--tau", "3", "--tau-test", "3",
                "--signature", "exact", "--bootstrap", "40", "--seed", "0"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--n-shards", "3"]) == 0
        assert capsys.readouterr().out == plain


class TestShardBuild:
    def test_parser_defaults(self, tmp_path):
        args = build_shard_parser().parse_args([str(tmp_path / "x.npz")])
        assert args.n_shards == 4
        assert args.mode == "process"
        assert args.checkpoint_dir is None

    def test_build_writes_band_and_resumes(self, npz_stream, tmp_path, capsys):
        out_path = tmp_path / "band.npz"
        argv = ["shard-build", str(npz_stream), "--tau", "3", "--tau-test", "3",
                "--signature", "exact", "--n-shards", "3", "--mode", "serial",
                "--checkpoint-dir", str(tmp_path / "ckpt"), "--seed", "0",
                "--output", str(out_path)]
        assert main(argv) == 0
        archive = np.load(out_path)
        assert archive["band"].shape == (12, 5)
        assert int(archive["bandwidth"]) == 6
        assert len(list((tmp_path / "ckpt").glob("shard_*.npz"))) == 3
        capsys.readouterr()
        # Second run resumes every shard from the checkpoints.
        assert main(argv[:-2]) == 0
        assert "resumed 3" in capsys.readouterr().err

    def test_band_matches_detector_build(self, npz_stream, tmp_path):
        out_path = tmp_path / "band.npz"
        assert main(
            ["shard-build", str(npz_stream), "--tau", "3", "--tau-test", "3",
             "--signature", "exact", "--n-shards", "2", "--mode", "serial",
             "--seed", "0", "--output", str(out_path)]
        ) == 0
        from repro import BagChangePointDetector
        from repro.core import DetectorConfig

        archive = np.load(npz_stream)
        bags = [np.asarray(archive[name], dtype=float) for name in sorted(archive.files)]
        config = DetectorConfig(tau=3, tau_test=3, signature_method="exact", random_state=0)
        detector = BagChangePointDetector(config)
        signatures = detector.build_signatures(bags)
        reference = detector._engine.banded_matrix(signatures, config.window_span)
        band = np.load(out_path)["band"]
        assert np.nanmax(np.abs(band - reference.band)) <= 1e-12
