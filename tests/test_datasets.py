"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    ACTIVITIES,
    BLOCK_LENGTH,
    DEFAULT_EVENTS,
    DEFAULT_PROTOCOL,
    EnronLikeStream,
    OrganizationalEvent,
    PamapSimulator,
    make_all_confidence_interval_datasets,
    make_bipartite_stream,
    make_confidence_interval_dataset,
    make_mixture_stream,
)
from repro.datasets.pamap import ACTIVITY_PROFILES, N_CHANNELS
from repro.exceptions import ConfigurationError, ValidationError
from repro.graphs import source_out_weights


class TestMixtureStream:
    def test_default_structure_matches_fig1(self):
        dataset = make_mixture_stream(random_state=0)
        assert len(dataset) == 150
        assert dataset.change_points == [50, 100]

    def test_bag_sizes_near_nominal(self):
        dataset = make_mixture_stream(random_state=0, bag_size=300, bag_size_jitter=30)
        assert 250 < dataset.sizes.mean() < 350

    def test_bags_are_one_dimensional(self):
        dataset = make_mixture_stream(random_state=0, steps_per_regime=5, bag_size=50)
        assert dataset.bags[0].shape[1] == 1

    def test_regime_variance_increases(self):
        # The 2- and 3-component mixtures are much more spread out than the
        # single Gaussian even though the means stay near zero.
        dataset = make_mixture_stream(random_state=0, steps_per_regime=10, bag_size=200)
        var_first = np.mean([bag.var() for bag in dataset.bags[:10]])
        var_last = np.mean([bag.var() for bag in dataset.bags[-10:]])
        assert var_last > 3.0 * var_first

    def test_sample_means_stay_close_across_regimes(self):
        dataset = make_mixture_stream(random_state=1, steps_per_regime=10, bag_size=300)
        means = np.array([bag.mean() for bag in dataset.bags])
        assert abs(means[:10].mean() - means[20:].mean()) < 1.0

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValidationError):
            make_mixture_stream(bag_size=50, bag_size_jitter=50)

    def test_reproducibility(self):
        d1 = make_mixture_stream(
            random_state=3, steps_per_regime=4, bag_size=20, bag_size_jitter=5
        )
        d2 = make_mixture_stream(
            random_state=3, steps_per_regime=4, bag_size=20, bag_size_jitter=5
        )
        assert np.allclose(d1.bags[0], d2.bags[0])


class TestConfidenceIntervalDatasets:
    def test_twenty_bags_by_default(self):
        dataset = make_confidence_interval_dataset(1, random_state=0)
        assert len(dataset) == 20

    def test_bags_are_two_dimensional(self):
        dataset = make_confidence_interval_dataset(2, random_state=0)
        assert all(bag.shape[1] == 2 for bag in dataset.bags)

    def test_poisson_bag_sizes(self):
        dataset = make_confidence_interval_dataset(1, random_state=0, n_bags=50)
        assert 35 < dataset.sizes.mean() < 65

    @pytest.mark.parametrize("dataset_id", [1, 2, 3])
    def test_no_change_points_for_stationary_datasets(self, dataset_id):
        dataset = make_confidence_interval_dataset(dataset_id, random_state=0)
        assert dataset.change_points == []

    @pytest.mark.parametrize("dataset_id", [4, 5])
    def test_change_at_index_10_for_shift_datasets(self, dataset_id):
        dataset = make_confidence_interval_dataset(dataset_id, random_state=0)
        assert dataset.change_points == [10]

    def test_dataset4_mean_jump_visible(self):
        dataset = make_confidence_interval_dataset(4, random_state=0)
        first_means = np.array([bag.mean(axis=0) for bag in dataset.bags[:10]])
        second_means = np.array([bag.mean(axis=0) for bag in dataset.bags[10:]])
        assert first_means[:, 0].mean() > 2.0
        assert second_means[:, 0].mean() < -2.0

    def test_dataset1_larger_variance_than_dataset4(self):
        d1 = make_confidence_interval_dataset(1, random_state=0)
        d4 = make_confidence_interval_dataset(4, random_state=0)
        assert np.mean([b.var() for b in d1.bags]) > np.mean([b.var() for b in d4.bags])

    def test_dataset5_radius_grows(self):
        dataset = make_confidence_interval_dataset(5, random_state=0)
        radius_first = np.mean([np.linalg.norm(bag.mean(axis=0)) for bag in dataset.bags[:10]])
        radius_second = np.mean([np.linalg.norm(bag.mean(axis=0)) for bag in dataset.bags[10:]])
        assert radius_second > radius_first

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_confidence_interval_dataset(6)

    def test_make_all_returns_five(self):
        datasets = make_all_confidence_interval_datasets(random_state=0)
        assert sorted(datasets) == [1, 2, 3, 4, 5]

    def test_to_sequence_conversion(self):
        dataset = make_confidence_interval_dataset(1, random_state=0)
        assert len(dataset.to_sequence()) == len(dataset)


class TestPamapSimulator:
    def test_table1_has_twelve_activities(self):
        assert len(ACTIVITIES) == 12
        assert ACTIVITIES[8] == "walking"
        assert set(ACTIVITY_PROFILES) == set(ACTIVITIES)

    def test_bag_channel_count(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=20)
        bag = simulator.sample_bag(8)
        assert bag.shape[1] == N_CHANNELS

    def test_bag_sizes_vary(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=50)
        sizes = {simulator.sample_bag(1).shape[0] for _ in range(10)}
        assert len(sizes) > 1

    def test_unknown_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            PamapSimulator(random_state=0).sample_bag(99)

    def test_heart_rate_tracks_intensity(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=20)
        lying = simulator.sample_bag(1)[:, 9].mean()
        running = simulator.sample_bag(11)[:, 9].mean()
        assert running > lying + 50.0

    def test_accelerometer_variance_tracks_intensity(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=20)
        lying = simulator.sample_bag(1)[:, :9].var()
        rope_jumping = simulator.sample_bag(12)[:, :9].var()
        assert rope_jumping > lying

    def test_subject_change_points_at_activity_boundaries(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=10)
        dataset = simulator.simulate_subject(
            protocol=(1, 8, 11), bags_per_activity=[5, 6, 4]
        )
        assert len(dataset) == 15
        assert dataset.change_points == [5, 11]

    def test_activity_per_bag_metadata(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=10)
        dataset = simulator.simulate_subject(protocol=(1, 2), bags_per_activity=[3, 3])
        assert dataset.metadata["activity_per_bag"] == [1, 1, 1, 2, 2, 2]

    def test_protocol_length_mismatch_rejected(self):
        simulator = PamapSimulator(random_state=0)
        with pytest.raises(ConfigurationError):
            simulator.simulate_subject(protocol=(1, 2), bags_per_activity=[3])

    def test_multiple_subjects(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=10)
        subjects = simulator.simulate_subjects(2, protocol=(1, 8), bags_per_activity=3)
        assert len(subjects) == 2

    def test_default_protocol_follows_table1(self):
        assert set(DEFAULT_PROTOCOL) == set(range(1, 13))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            PamapSimulator(dropout=1.5)
        with pytest.raises(ConfigurationError):
            PamapSimulator(sampling_rate=0.0)


class TestBipartiteStreams:
    @pytest.mark.parametrize("dataset_id,expected_length", [(1, 200), (2, 200), (3, 200), (4, 240)])
    def test_default_lengths(self, dataset_id, expected_length):
        dataset = make_bipartite_stream(
            dataset_id, mean_nodes=20, random_state=0, n_steps=None
        )
        assert len(dataset) == expected_length

    def test_change_points_every_twenty_steps(self):
        dataset = make_bipartite_stream(1, n_steps=80, mean_nodes=20, random_state=0)
        assert dataset.change_points == [20, 40, 60]
        assert dataset.metadata["block_length"] == BLOCK_LENGTH

    def test_dataset1_traffic_changes_between_blocks(self):
        dataset = make_bipartite_stream(1, n_steps=60, mean_nodes=30, random_state=0)
        block0 = np.mean([g.total_weight for g in dataset.graphs[:20]])
        block1 = np.mean([g.total_weight for g in dataset.graphs[20:40]])
        assert abs(block1 - block0) / block0 > 0.2

    def test_dataset3_total_weight_constant(self):
        dataset = make_bipartite_stream(3, n_steps=45, mean_nodes=30, random_state=0)
        totals = np.array([g.total_weight for g in dataset.graphs])
        assert np.allclose(totals, 100_000.0)

    def test_dataset2_partition_change_alters_out_weight_distribution(self):
        dataset = make_bipartite_stream(2, n_steps=120, mean_nodes=40, random_state=0)
        # Compare the spread of per-source out-weights between a baseline
        # block and a strongly perturbed block (block 5, magnitude 5).
        baseline = np.mean([np.std(source_out_weights(g)) for g in dataset.graphs[0:20]])
        perturbed = np.mean([np.std(source_out_weights(g)) for g in dataset.graphs[100:120]])
        assert perturbed != pytest.approx(baseline, rel=0.05)

    def test_dataset4_rate_permutation_changes_structure(self):
        dataset = make_bipartite_stream(4, n_steps=60, mean_nodes=30, random_state=0)
        assert len(dataset.graphs) == 60

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bipartite_stream(5)

    def test_node_counts_vary_over_time(self):
        dataset = make_bipartite_stream(1, n_steps=30, mean_nodes=40, random_state=0)
        assert len({g.n_sources for g in dataset.graphs}) > 1


class TestEnronLikeStream:
    def test_stream_length_and_events(self):
        stream = EnronLikeStream(n_weeks=100, random_state=0, mean_senders=30, mean_recipients=30)
        dataset = stream.generate()
        assert len(dataset) == 100
        assert dataset.change_points == sorted({e.week for e in DEFAULT_EVENTS})

    def test_event_outside_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            EnronLikeStream(
                n_weeks=10,
                events=(OrganizationalEvent(50, "too late"),),
            )

    def test_traffic_shock_visible(self):
        events = (OrganizationalEvent(10, "crisis", traffic_factor=3.0),)
        stream = EnronLikeStream(
            n_weeks=20, events=events, random_state=0, mean_senders=40, mean_recipients=40
        )
        dataset = stream.generate()
        before = np.mean([g.total_weight for g in dataset.graphs[:10]])
        after = np.mean([g.total_weight for g in dataset.graphs[10:]])
        assert after > 2.0 * before

    def test_transient_event_reverts(self):
        events = (
            OrganizationalEvent(5, "spike", traffic_factor=5.0, transient=True, duration=2),
        )
        stream = EnronLikeStream(
            n_weeks=15, events=events, random_state=0, mean_senders=40, mean_recipients=40
        )
        dataset = stream.generate()
        totals = [g.total_weight for g in dataset.graphs]
        assert totals[5] > 2.0 * np.mean(totals[:5])
        assert np.mean(totals[8:]) < 2.0 * np.mean(totals[:5])

    def test_metadata_event_labels(self):
        stream = EnronLikeStream(n_weeks=100, random_state=0, mean_senders=20, mean_recipients=20)
        dataset = stream.generate()
        assert dataset.metadata["events"][74] == "bankruptcy filing and layoffs"

    def test_reproducible_with_seed(self):
        kwargs = dict(n_weeks=12, mean_senders=20, mean_recipients=20,
                      events=(OrganizationalEvent(6, "x", traffic_factor=2.0),))
        d1 = EnronLikeStream(random_state=4, **kwargs).generate()
        d2 = EnronLikeStream(random_state=4, **kwargs).generate()
        assert np.allclose(d1.graphs[3].weights, d2.graphs[3].weights)
