"""Tests for the reprolint static-analysis layer.

Three groups:

* per-rule fixture tests — each ``rlNNN_bad.py`` fixture must trigger its
  rule and each ``rlNNN_good.py`` must lint clean, so the rules keep
  distinguishing signal from noise as they evolve;
* engine behaviour — suppression comments, rule selection, exit codes
  and the CLI entry point;
* project self-checks — ``src/`` and ``tools/`` lint clean, and the
  typed solver registry stays in sync with its ``Literal`` types and
  with reprolint's fallback copy.
"""

from pathlib import Path
from typing import get_args

import pytest

from repro.emd.registry import (
    BATCHED_SOLVERS,
    EMD_SOLVERS,
    PAIRWISE_SOLVERS,
    PARALLEL_BACKENDS,
    POISON_POLICIES,
    SHARD_MODES,
    BatchedSolverName,
    EMDSolverName,
    PairwiseSolverName,
    ParallelBackendName,
    PoisonPolicyName,
    ShardModeName,
)
from tools.reprolint import all_rules, lint_paths, lint_source
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.project import CONFIG_INTERNAL_FIELDS, DEFAULT_REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"

RULE_CODES = ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL008")


def lint_fixture(name: str):
    path = FIXTURES / name
    return lint_source(path.read_text(), path=str(path))


# --------------------------------------------------------------------- #
# Per-rule fixtures
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("code", RULE_CODES)
def test_good_fixture_is_clean(code):
    report = lint_fixture(f"{code.lower()}_good.py")
    assert report.ok, [v.render() for v in report.violations]


@pytest.mark.parametrize("code", RULE_CODES)
def test_bad_fixture_triggers_rule(code):
    report = lint_fixture(f"{code.lower()}_bad.py")
    codes = {v.code for v in report.violations}
    assert codes == {code}, [v.render() for v in report.violations]
    assert report.exit_code == 1


def test_rl001_catches_each_breakage_mode():
    report = lint_fixture("rl001_bad.py")
    messages = " | ".join(v.message for v in report.violations)
    assert len(report.violations) == 5
    assert "re-lists" in messages  # literal tuple copy
    assert "'sinkhorn'" in messages  # unknown default
    assert "'linprog-batch'" in messages  # typo in comparison
    assert "'simplexx'" in messages  # typo'd keyword
    assert "choices=" in messages  # argparse re-list


def test_rl002_catches_each_breakage_mode():
    report = lint_fixture("rl002_bad.py")
    messages = " | ".join(v.message for v in report.violations)
    assert len(report.violations) == 4
    assert "numpy.random.rand" in messages  # legacy import
    assert "numpy.random.seed()" in messages  # global seeding
    assert "without an explicit seed" in messages  # seedless default_rng
    assert "numpy.random.normal()" in messages  # legacy sampling call


def test_rl003_catches_each_breakage_mode():
    report = lint_fixture("rl003_bad.py")
    messages = " | ".join(v.message for v in report.violations)
    assert len(report.violations) == 4
    assert "lambda passed to .map()" in messages
    assert "'double'" in messages  # name bound to a lambda
    assert "'local'" in messages  # closure, via partial and directly


def test_rl004_requires_context_or_formatted_message():
    report = lint_fixture("rl004_bad.py")
    assert len(report.violations) == 2
    assert all(v.code == "RL004" for v in report.violations)


def test_rl005_reports_the_unreachable_field():
    report = lint_fixture("rl005_bad.py")
    assert len(report.violations) == 1
    assert "weighting" in report.violations[0].message


def test_rl006_catches_each_breakage_mode():
    report = lint_fixture("rl006_bad.py")
    messages = " | ".join(v.message for v in report.violations)
    assert len(report.violations) == 3
    assert "hand-rolled retry pacing" in messages  # ad-hoc time.sleep loop
    assert "(SolverError)" in messages  # swallowed by name
    assert "(Exception)" in messages  # swallowed behind a broad handler


def test_rl007_catches_each_breakage_mode():
    report = lint_fixture("rl007_bad.py")
    messages = [v.message for v in report.violations]
    assert len(report.violations) == 3
    # A loader that validates nothing reports both missing stamps.
    assert any("checksum or fingerprint" in m for m in messages)
    # A loader that only checks the fingerprint reports just the checksum.
    assert any(
        "without checksum validation" in m and "fingerprint" not in m.split(";")[0]
        for m in messages
    )


def test_rl008_catches_each_breakage_mode():
    report = lint_fixture("rl008_bad.py")
    messages = " | ".join(v.message for v in report.violations)
    assert len(report.violations) == 4
    assert "no_docs has no docstring" in messages        # undocumented export
    assert "cutoff" in messages                          # drifted function docstring
    assert "tail" in messages                            # drifted __init__ docstring
    assert "tau_ref" in messages                         # drifted dataclass docstring


def test_rl005_internal_allowlist_is_documented():
    # The allow-list must stay small and deliberate; growing it should be
    # a conscious edit to this test as well.
    assert CONFIG_INTERNAL_FIELDS == frozenset({"histogram_range", "estimator"})


# --------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------- #
def test_suppression_comment_silences_one_line():
    bad = "import numpy as np\nnp.random.seed(0)\n"
    assert not lint_source(bad).ok
    suppressed = "import numpy as np\nnp.random.seed(0)  # reprolint: disable=RL002\n"
    assert lint_source(suppressed).ok
    all_off = "import numpy as np\nnp.random.seed(0)  # reprolint: disable=all\n"
    assert lint_source(all_off).ok


def test_suppression_comment_is_code_specific():
    source = "import numpy as np\nnp.random.seed(0)  # reprolint: disable=RL001\n"
    report = lint_source(source)
    assert [v.code for v in report.violations] == ["RL002"]


def test_rule_selection():
    path = FIXTURES / "rl001_bad.py"
    selected = [r for r in all_rules() if r.code == "RL002"]
    report = lint_source(path.read_text(), path=str(path), rules=selected)
    assert report.ok


def test_syntax_error_is_a_parse_failure_not_a_crash():
    report = lint_source("def broken(:\n", path="broken.py")
    assert report.exit_code == 2
    assert report.parse_failures and not report.violations


def test_cli_exit_codes(tmp_path, capsys):
    assert reprolint_main([str(FIXTURES / "rl002_good.py")]) == 0
    assert reprolint_main([str(FIXTURES / "rl002_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RL002" in out and "rl002_bad.py" in out

    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert reprolint_main([str(broken)]) == 2


def test_cli_select(capsys):
    assert reprolint_main(["--select", "RL002", str(FIXTURES / "rl001_bad.py")]) == 0
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CODES:
        assert code in out


# --------------------------------------------------------------------- #
# Project self-checks
# --------------------------------------------------------------------- #
def test_src_and_tools_lint_clean():
    report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tools"])
    assert report.n_files > 50
    assert report.ok, [v.render() for v in report.violations]


def test_registry_matches_literal_types():
    assert set(EMD_SOLVERS) == set(get_args(EMDSolverName))
    assert set(PAIRWISE_SOLVERS) == set(get_args(PairwiseSolverName))
    assert set(BATCHED_SOLVERS) == set(get_args(BatchedSolverName))
    assert set(PARALLEL_BACKENDS) == set(get_args(ParallelBackendName))
    assert set(SHARD_MODES) == set(get_args(ShardModeName))
    assert set(POISON_POLICIES) == set(get_args(PoisonPolicyName))


def test_solver_subsets_partition_the_registry():
    pairwise, batched = set(PAIRWISE_SOLVERS), set(BATCHED_SOLVERS)
    assert pairwise | batched == set(EMD_SOLVERS)
    assert pairwise & batched == set()
    assert set(SHARD_MODES) <= set(PARALLEL_BACKENDS)


def test_reprolint_fallback_registry_is_in_sync():
    assert tuple(sorted(DEFAULT_REGISTRY)) == tuple(sorted(EMD_SOLVERS))
