"""Tests for the deterministic fault-injection harness itself.

The orchestrator's recovery guarantees are only as good as the faults
used to prove them, so the injectors get their own suite: firing
conditions, budgets (in-memory and cross-process sentinel files),
restoration on exit, and the checkpoint corruptors actually producing
the corruption class they claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emd import PairwiseEMDEngine
from repro.emd.orchestrator import WorkerCrash, WorkerHang
from repro.emd.sharding import (
    EngineSettings,
    ShardPlan,
    checkpoint_path,
    load_shard_checkpoint,
    save_shard_checkpoint,
)
from repro.exceptions import CheckpointError, SolverError
from repro.testing import (
    FakeClock,
    InjectionLog,
    bitflip_checkpoint,
    inject_poison_pairs,
    inject_transient_solver_error,
    inject_worker_crash,
    inject_worker_hang,
    match_first_row,
    tamper_checkpoint_values,
    truncate_checkpoint,
)
from test_sharding import histogram_signatures

pytestmark = pytest.mark.faults


@pytest.fixture
def engine():
    eng = PairwiseEMDEngine()
    yield eng
    eng.close()


@pytest.fixture
def pairs():
    signatures = histogram_signatures(6, seed=0)
    return [(signatures[i], signatures[i + 1]) for i in range(5)]


class TestFakeClock:
    def test_call_does_not_advance(self):
        clock = FakeClock(start=10.0)
        assert clock() == 10.0
        assert clock() == 10.0

    def test_sleep_records_and_advances(self):
        clock = FakeClock()
        clock.sleep(0.5)
        clock.sleep(0.25)
        assert clock() == 0.75
        assert clock.sleeps == [0.5, 0.25]

    def test_advance(self):
        clock = FakeClock()
        clock.advance(3.0)
        assert clock() == 3.0
        assert clock.sleeps == []


class TestInjectionLog:
    def test_count_by_prefix(self):
        log = InjectionLog()
        log.record("crash:1")
        log.record("crash:2")
        log.record("hang:1")
        assert log.count("crash") == 2
        assert log.count("hang") == 1
        assert log.count("poison") == 0


class TestWorkerCrashInjector:
    def test_fires_once_then_clears(self, engine, pairs):
        with inject_worker_crash(at_pair=0, times=1) as log:
            with pytest.raises(WorkerCrash, match="injected worker crash"):
                engine.compute_pairs(pairs)
            values = engine.compute_pairs(pairs)  # budget spent: clean
        assert len(values) == len(pairs)
        assert log.count("crash") == 1

    def test_pair_threshold_is_cumulative(self, engine, pairs):
        with inject_worker_crash(at_pair=8) as log:
            engine.compute_pairs(pairs)  # 5 pairs seen: below threshold
            with pytest.raises(WorkerCrash):
                engine.compute_pairs(pairs)  # 5 + 5 > 8: fires
        assert log.events == ["crash:1:after_pair:5"]

    def test_sentinel_counts_across_injector_instances(self, engine, pairs, tmp_path):
        # Two separate contexts sharing one sentinel behave like a
        # parent and its forked worker: the budget is global.
        sentinel = tmp_path / "crash"
        with inject_worker_crash(at_pair=0, times=1, sentinel=sentinel):
            with pytest.raises(WorkerCrash):
                engine.compute_pairs(pairs)
        with inject_worker_crash(at_pair=0, times=1, sentinel=sentinel):
            values = engine.compute_pairs(pairs)  # already fired elsewhere
        assert len(values) == len(pairs)
        assert len(list(tmp_path.glob("crash.fired.*"))) == 1

    def test_restores_compute_pairs_on_exit(self, engine, pairs):
        original = PairwiseEMDEngine.compute_pairs
        with inject_worker_crash(at_pair=0):
            assert PairwiseEMDEngine.compute_pairs is not original
        assert PairwiseEMDEngine.compute_pairs is original


class TestWorkerHangInjector:
    def test_raises_worker_hang(self, engine, pairs):
        with inject_worker_hang(times=1) as log:
            with pytest.raises(WorkerHang, match="injected hang"):
                engine.compute_pairs(pairs)
            engine.compute_pairs(pairs)
        assert log.count("hang") == 1

    def test_match_predicate_targets_one_shard(self, engine):
        signatures = histogram_signatures(8, seed=1)
        shard0 = [(signatures[0], signatures[1])]
        shard3 = [(signatures[3], signatures[4])]
        with inject_worker_hang(times=5, match=match_first_row(3)) as log:
            engine.compute_pairs(shard0)  # row 0: untouched
            with pytest.raises(WorkerHang):
                engine.compute_pairs(shard3)
        assert log.count("hang") == 1


class TestTransientErrorInjector:
    def test_clears_after_budget(self, engine, pairs):
        with inject_transient_solver_error(times=2) as log:
            for expected in ("#1", "#2"):
                with pytest.raises(SolverError, match=expected):
                    engine.compute_pairs(pairs)
            values = engine.compute_pairs(pairs)
        assert len(values) == len(pairs)
        assert log.events == ["transient:1", "transient:2"]

    def test_no_pair_indices_attached(self, engine, pairs):
        # Context-free by contract: must hit the retry path, never the
        # poison-bisection path.
        with inject_transient_solver_error(times=1):
            with pytest.raises(SolverError) as excinfo:
                engine.compute_pairs(pairs)
        assert excinfo.value.pair_indices is None


class TestPoisonPairInjector:
    def test_reports_exact_positions(self, engine, pairs):
        key = (pairs[2][0].label, pairs[2][1].label)
        with inject_poison_pairs([key]) as log:
            with pytest.raises(SolverError) as excinfo:
                engine.compute_pairs(pairs)
        assert excinfo.value.pair_indices == (2,)
        assert log.count("poison") == 1

    def test_batch_report_blames_everything(self, engine, pairs):
        key = (pairs[2][0].label, pairs[2][1].label)
        with inject_poison_pairs([key], report="batch"):
            with pytest.raises(SolverError) as excinfo:
                engine.compute_pairs(pairs)
        assert excinfo.value.pair_indices == tuple(range(len(pairs)))

    def test_singleton_solve_succeeds_unless_told_otherwise(self, engine, pairs):
        key = (pairs[2][0].label, pairs[2][1].label)
        with inject_poison_pairs([key]):
            value = engine.compute_pairs([pairs[2]])  # singleton: rescued
            assert np.isfinite(value[0])
        with inject_poison_pairs([key], fail_singleton=True):
            with pytest.raises(SolverError):
                engine.compute_pairs([pairs[2]])

    def test_fail_exact_blocks_the_lp_rescue(self, pairs):
        from repro.emd import orchestrator as orchestrator_module

        key = (pairs[2][0].label, pairs[2][1].label)
        original = orchestrator_module.emd
        with inject_poison_pairs([key], fail_exact=True):
            with pytest.raises(SolverError, match="exact-LP"):
                orchestrator_module.emd(pairs[2][0], pairs[2][1])
            # Other pairs still solve through the module's emd binding.
            assert np.isfinite(orchestrator_module.emd(pairs[0][0], pairs[0][1]))
        assert orchestrator_module.emd is original

    def test_unordered_labels_match(self, engine, pairs):
        a, b = pairs[1]
        with inject_poison_pairs([(b.label, a.label)]):
            with pytest.raises(SolverError):
                engine.compute_pairs(pairs)

    def test_rejects_unknown_report_mode(self):
        with pytest.raises(ValueError, match="report"):
            with inject_poison_pairs([(0, 1)], report="everything"):
                pass


class TestCheckpointCorruptors:
    def make_checkpoint(self, tmp_path):
        plan = ShardPlan.build(12, 4, 2)
        values = np.linspace(0.0, 1.0, plan.shard(0).n_pairs)
        save_shard_checkpoint(tmp_path, plan, 0, values, "fp")
        return plan, checkpoint_path(tmp_path, 0)

    def test_truncate_makes_checkpoint_unreadable(self, tmp_path):
        plan, path = self.make_checkpoint(tmp_path)
        before = path.stat().st_size
        truncate_checkpoint(path)
        assert path.stat().st_size < before
        with pytest.raises(CheckpointError):
            load_shard_checkpoint(tmp_path, plan, 0, "fp")

    def test_truncate_validates_fraction(self, tmp_path):
        _, path = self.make_checkpoint(tmp_path)
        with pytest.raises(ValueError):
            truncate_checkpoint(path, keep_fraction=1.0)

    def test_bitflip_is_seeded_and_detected(self, tmp_path):
        plan, path = self.make_checkpoint(tmp_path)
        pristine = path.read_bytes()
        bitflip_checkpoint(path, seed=3)
        flipped_once = path.read_bytes()
        assert flipped_once != pristine
        path.write_bytes(pristine)
        bitflip_checkpoint(path, seed=3)
        assert path.read_bytes() == flipped_once  # same seed, same flip
        with pytest.raises(CheckpointError):
            load_shard_checkpoint(tmp_path, plan, 0, "fp")

    def test_tampered_payload_defeats_zip_but_not_checksum(self, tmp_path):
        # The whole point of checkpoint format v2: a perfectly readable
        # archive whose float payload silently changed must still be
        # rejected, by the sha256 payload checksum.
        plan, path = self.make_checkpoint(tmp_path)
        tamper_checkpoint_values(path, delta=0.5)
        with np.load(path) as archive:  # readable: the zip layer is happy
            assert "values" in archive.files
        with pytest.raises(CheckpointError, match="payload checksum"):
            load_shard_checkpoint(tmp_path, plan, 0, "fp")


class TestInjectorDeterminism:
    def test_two_identical_runs_produce_identical_logs(self):
        signatures = histogram_signatures(12, seed=5)
        plan = ShardPlan.build(len(signatures), 4, 2)
        from repro.emd.orchestrator import ShardOrchestrator

        def run_once():
            clock = FakeClock()
            orchestrator = ShardOrchestrator(
                plan,
                EngineSettings(),
                mode="serial",
                n_workers=4,
                clock=clock,
                sleep=clock.sleep,
            )
            with inject_transient_solver_error(times=1) as log:
                band = orchestrator.run(signatures)
            return log.events, clock.sleeps, np.asarray(band.band)

        events_a, sleeps_a, band_a = run_once()
        events_b, sleeps_b, band_b = run_once()
        assert events_a == events_b
        assert sleeps_a == sleeps_b
        assert np.array_equal(band_a, band_b, equal_nan=True)
