"""Tests for the fault-tolerant shard orchestrator.

Every recovery path is exercised deterministically — the fault
injectors from :mod:`repro.testing.faults` script the failures and a
:class:`~repro.testing.FakeClock` drives timeouts and straggler
thresholds — and the acceptance bar throughout is *parity*: the band an
orchestrated, faulted build returns must equal the unfaulted build to
``1e-12`` (exactly, for entries that solved).
"""

from __future__ import annotations

import json
import warnings
from collections import deque

import numpy as np
import pytest

from repro.emd import PairwiseEMDEngine
from repro.emd.orchestrator import (
    QUARANTINE_FILENAME,
    InlineWorkerBackend,
    QuarantinedPair,
    QuarantineManifest,
    RetryPolicy,
    ShardOrchestrator,
    compute_backoff,
    orchestrated_banded_matrix,
)
from repro.emd.sharding import (
    EngineSettings,
    ShardPlan,
    checkpoint_path,
    save_shard_checkpoint,
)
from repro.exceptions import (
    ConfigurationError,
    OrchestratorError,
    PoisonPairError,
    ValidationError,
)
from repro.testing import (
    FakeClock,
    bitflip_checkpoint,
    inject_poison_pairs,
    inject_transient_solver_error,
    inject_worker_crash,
    inject_worker_hang,
    match_first_row,
    tamper_checkpoint_values,
    truncate_checkpoint,
)
from test_sharding import histogram_signatures, irregular_signatures

PARITY_TOL = 1e-12


def reference_band(signatures, bandwidth, backend="auto"):
    return np.asarray(
        PairwiseEMDEngine(backend=backend).banded_matrix(signatures, bandwidth).band
    )


def assert_band_parity(band, reference):
    assert np.array_equal(np.isnan(np.asarray(band.band)), np.isnan(reference))
    deltas = np.abs(np.asarray(band.band) - reference)
    assert np.nanmax(np.where(np.isnan(deltas), 0.0, deltas)) <= PARITY_TOL


def make_orchestrator(plan, *, policy=None, checkpoint_dir=None, backend="auto", **kwargs):
    # Pin the slot count: the orchestrator defaults to the host CPU
    # count, and straggler speculation needs a free slot to fire, so the
    # tests must not depend on the machine they run on.
    kwargs.setdefault("n_workers", 8)
    fake = FakeClock()
    orchestrator = ShardOrchestrator(
        plan,
        EngineSettings(backend=backend),
        policy=policy,
        mode="serial",
        checkpoint_dir=checkpoint_dir,
        clock=fake,
        sleep=fake.sleep,
        **kwargs,
    )
    return orchestrator, fake


# ---------------------------------------------------------------------- #
# Backoff helper and policy validation
# ---------------------------------------------------------------------- #
class TestComputeBackoff:
    def test_exponential_growth_and_cap(self):
        delays = [compute_backoff(a, base=0.1, factor=2.0, max_delay=1.0, jitter=0.0)
                  for a in range(6)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert delays[4] == delays[5] == 1.0

    def test_jitter_is_bounded_and_seeded(self):
        rng = np.random.default_rng(7)
        base = compute_backoff(2, base=0.1, factor=2.0, max_delay=10.0, jitter=0.0)
        jittered = [
            compute_backoff(2, base=0.1, factor=2.0, max_delay=10.0, jitter=0.5,
                            rng=np.random.default_rng(7))
            for _ in range(3)
        ]
        assert jittered[0] == jittered[1] == jittered[2]  # seeded: reproducible
        assert base <= jittered[0] <= base * 1.5
        spread = {compute_backoff(2, jitter=0.5, rng=rng) for _ in range(8)}
        assert len(spread) > 1  # a shared generator de-synchronises retries

    def test_jitter_never_exceeds_the_cap(self):
        rng = np.random.default_rng(0)
        for attempt in range(8):
            assert compute_backoff(attempt, base=1.0, factor=3.0, max_delay=2.0,
                                   jitter=1.0, rng=rng) <= 2.0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            compute_backoff(-1)
        with pytest.raises(ValidationError):
            compute_backoff(0, base=-0.1)
        with pytest.raises(ValidationError):
            compute_backoff(0, factor=0.5)
        with pytest.raises(ValidationError):
            compute_backoff(0, jitter=-1.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(shard_timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(straggler_factor=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(on_poison_pair="ignore")
        with pytest.raises(ConfigurationError):
            RetryPolicy(poll_interval=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.0)

    def test_from_config_reads_detector_fields(self):
        from repro.core import DetectorConfig

        config = DetectorConfig(
            shard_retries=5, shard_timeout=30.0, on_poison_pair="degraded"
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 5
        assert policy.shard_timeout == 30.0
        assert policy.on_poison_pair == "degraded"


# ---------------------------------------------------------------------- #
# No-fault parity (every backend)
# ---------------------------------------------------------------------- #
class TestNoFaultParity:
    @pytest.mark.parametrize("backend", ["auto", "linprog_batch", "sinkhorn_batch"])
    def test_orchestrated_band_matches_plain(self, backend):
        signatures = histogram_signatures(20, seed=3)
        plan = ShardPlan.build(len(signatures), 6, 4)
        orchestrator, _ = make_orchestrator(plan, backend=backend)
        band = orchestrator.run(signatures)
        assert_band_parity(band, reference_band(signatures, 6, backend))
        assert orchestrator.n_shards_computed == plan.n_shards
        assert orchestrator.n_retries == 0
        assert len(orchestrator.quarantine) == 0

    def test_irregular_signatures_match(self):
        signatures = irregular_signatures(14, seed=5)
        plan = ShardPlan.build(len(signatures), 5, 3)
        orchestrator, _ = make_orchestrator(plan)
        assert_band_parity(orchestrator.run(signatures), reference_band(signatures, 5))

    def test_convenience_wrapper(self):
        signatures = histogram_signatures(16, seed=9)
        band = orchestrated_banded_matrix(signatures, 5, 3, mode="serial")
        assert_band_parity(band, reference_band(signatures, 5))

    def test_signature_count_must_match_plan(self):
        plan = ShardPlan.build(10, 4, 2)
        orchestrator, _ = make_orchestrator(plan)
        with pytest.raises(ValidationError):
            orchestrator.run(histogram_signatures(9))

    def test_rejects_unknown_mode(self):
        plan = ShardPlan.build(10, 4, 2)
        with pytest.raises(ConfigurationError):
            ShardOrchestrator(plan, mode="thread")


# ---------------------------------------------------------------------- #
# Retry with backoff
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestRetries:
    def test_worker_crash_is_retried_to_parity(self):
        signatures = histogram_signatures(18, seed=1)
        plan = ShardPlan.build(len(signatures), 6, 3)
        orchestrator, _ = make_orchestrator(plan)
        with inject_worker_crash(at_pair=4) as log:
            band = orchestrator.run(signatures)
        assert log.count("crash") == 1
        assert orchestrator.n_retries == 1
        assert_band_parity(band, reference_band(signatures, 6))

    def test_transient_solver_error_clears_after_retries(self):
        signatures = histogram_signatures(18, seed=1)
        plan = ShardPlan.build(len(signatures), 6, 3)
        orchestrator, fake = make_orchestrator(plan)
        with inject_transient_solver_error(times=2, match=match_first_row(0)) as log:
            band = orchestrator.run(signatures)
        assert log.count("transient") == 2
        assert orchestrator.n_retries == 2
        assert_band_parity(band, reference_band(signatures, 6))

    def test_backoff_is_actually_slept(self):
        signatures = histogram_signatures(12, seed=1)
        plan = ShardPlan.build(len(signatures), 4, 2)
        policy = RetryPolicy(backoff_base=0.2, backoff_jitter=0.0, poll_interval=0.05)
        orchestrator, fake = make_orchestrator(plan, policy=policy)
        with inject_transient_solver_error(times=1):
            orchestrator.run(signatures)
        # The retry waits out at least one full backoff delay before
        # relaunching; all sleeping goes through the injected sleep.
        assert sum(fake.sleeps) >= 0.2

    def test_budget_exhaustion_aborts_with_orchestrator_error(self):
        signatures = histogram_signatures(12, seed=1)
        plan = ShardPlan.build(len(signatures), 4, 2)
        orchestrator, _ = make_orchestrator(plan, policy=RetryPolicy(max_retries=1))
        with inject_transient_solver_error(times=10):
            with pytest.raises(OrchestratorError, match="retry budget"):
                orchestrator.run(signatures)

    def test_zero_retries_fails_on_first_fault(self):
        signatures = histogram_signatures(12, seed=1)
        plan = ShardPlan.build(len(signatures), 4, 2)
        orchestrator, _ = make_orchestrator(plan, policy=RetryPolicy(max_retries=0))
        with inject_worker_crash(at_pair=0):
            with pytest.raises(OrchestratorError, match="retry budget"):
                orchestrator.run(signatures)


# ---------------------------------------------------------------------- #
# Timeouts and stragglers
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestTimeoutsAndStragglers:
    def test_hung_shard_is_killed_and_retried(self):
        signatures = histogram_signatures(18, seed=2)
        plan = ShardPlan.build(len(signatures), 6, 3)
        policy = RetryPolicy(shard_timeout=1.0, straggler_factor=None)
        orchestrator, fake = make_orchestrator(plan, policy=policy)
        with inject_worker_hang(times=1) as log:
            band = orchestrator.run(signatures)
        assert log.count("hang") == 1
        assert orchestrator.n_timeouts == 1
        assert orchestrator.n_retries == 1
        assert_band_parity(band, reference_band(signatures, 6))

    def test_straggler_is_speculatively_redispatched(self):
        signatures = histogram_signatures(30, seed=4)
        plan = ShardPlan.build(len(signatures), 6, 6)
        # Inline backend: completions are instantaneous on the fake
        # clock, so a hang on one shard becomes a straggler as soon as
        # enough siblings have finished and the poll loop has slept.
        policy = RetryPolicy(straggler_factor=2.0, straggler_min_done=3)
        orchestrator, fake = make_orchestrator(plan, policy=policy)
        with inject_worker_hang(times=1, match=match_first_row(0)) as log:
            band = orchestrator.run(signatures)
        assert log.count("hang") == 1
        assert orchestrator.n_stragglers_redispatched == 1
        assert orchestrator.n_timeouts == 0  # no timeout configured
        assert_band_parity(band, reference_band(signatures, 6))
        # The hung original is cancelled once the speculative copy wins.
        assert orchestrator.n_duplicates_cancelled == 1

    def test_timeout_only_kills_overdue_attempts(self):
        signatures = histogram_signatures(18, seed=2)
        plan = ShardPlan.build(len(signatures), 6, 3)
        policy = RetryPolicy(shard_timeout=1e6, straggler_factor=None)
        orchestrator, _ = make_orchestrator(plan, policy=policy)
        band = orchestrator.run(signatures)
        assert orchestrator.n_timeouts == 0
        assert_band_parity(band, reference_band(signatures, 6))


# ---------------------------------------------------------------------- #
# Poison pairs
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestPoisonPairs:
    def find_band_pair(self, plan, shard_id=0, offset=0):
        rows, cols = plan.pair_indices(shard_id)
        return int(rows[offset]), int(cols[offset])

    def test_batch_poison_rescued_by_singleton_solve(self):
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan)
        orchestrator, _ = make_orchestrator(plan)
        with inject_poison_pairs([pair]) as log:
            band = orchestrator.run(signatures)
        assert log.count("poison") >= 1
        assert orchestrator.n_poison_rescued >= 1
        assert len(orchestrator.quarantine) == 0
        assert_band_parity(band, reference_band(signatures, 6))

    def test_singleton_poison_rescued_by_exact_lp(self):
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan)
        orchestrator, _ = make_orchestrator(plan)
        with inject_poison_pairs([pair], fail_singleton=True):
            band = orchestrator.run(signatures)
        assert orchestrator.n_poison_rescued >= 1
        assert len(orchestrator.quarantine) == 0
        assert_band_parity(band, reference_band(signatures, 6))

    def test_batch_reported_indices_force_bisection_to_parity(self):
        # report="batch" blames the whole group, so the orchestrator
        # must bisect its way down to the genuinely bad pair.
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan, offset=3)
        orchestrator, _ = make_orchestrator(plan)
        with inject_poison_pairs([pair], report="batch"):
            band = orchestrator.run(signatures)
        assert len(orchestrator.quarantine) == 0
        assert_band_parity(band, reference_band(signatures, 6))

    def test_degraded_masks_exactly_the_quarantined_pairs(self):
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan, offset=1)
        orchestrator, _ = make_orchestrator(
            plan, policy=RetryPolicy(on_poison_pair="degraded")
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with inject_poison_pairs([pair], fail_singleton=True, fail_exact=True):
                band = orchestrator.run(signatures)
        assert any("degraded band" in str(w.message) for w in caught)
        assert orchestrator.quarantine.pair_set() == frozenset({pair})
        reference = reference_band(signatures, 6)
        band_values = np.asarray(band.band)
        # Exactly one more NaN than the band's structural padding, and
        # every solved entry still matches the reference exactly.
        assert np.isnan(band_values).sum() == np.isnan(reference).sum() + 1
        solved = ~np.isnan(band_values)
        assert np.array_equal(band_values[solved], reference[solved])

    def test_strict_raises_with_manifest_attached(self):
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan, offset=2)
        orchestrator, _ = make_orchestrator(
            plan, policy=RetryPolicy(on_poison_pair="strict")
        )
        with inject_poison_pairs([pair], fail_singleton=True, fail_exact=True):
            with pytest.raises(PoisonPairError) as excinfo:
                orchestrator.run(signatures)
        manifest = excinfo.value.manifest
        assert isinstance(manifest, QuarantineManifest)
        assert manifest.pair_set() == frozenset({pair})
        assert str(pair) in str(excinfo.value)
        record = manifest.pairs[0]
        assert "exact-LP rescue failed" in record.reason

    def test_quarantine_manifest_round_trips(self, tmp_path):
        manifest = QuarantineManifest("planhash", "fingerprint")
        manifest.add(QuarantinedPair(row=3, col=5, shard_id=1, reason="injected"))
        path = manifest.save(tmp_path)
        assert path.name == QUARANTINE_FILENAME
        payload = json.loads(path.read_text())
        assert payload["plan_hash"] == "planhash"
        loaded = QuarantineManifest.load(tmp_path, "planhash", "fingerprint")
        assert loaded is not None
        assert loaded.pair_set() == frozenset({(3, 5)})
        assert QuarantineManifest.load(tmp_path, "otherplan", "fingerprint") is None
        assert QuarantineManifest.load(tmp_path, "planhash", "otherfp") is None

    def test_degraded_run_persists_manifest(self, tmp_path):
        signatures = histogram_signatures(18, seed=6)
        plan = ShardPlan.build(len(signatures), 6, 3)
        pair = self.find_band_pair(plan)
        orchestrator, _ = make_orchestrator(
            plan,
            policy=RetryPolicy(on_poison_pair="degraded"),
            checkpoint_dir=tmp_path,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with inject_poison_pairs([pair], fail_singleton=True, fail_exact=True):
                orchestrator.run(signatures)
        loaded = QuarantineManifest.load(
            tmp_path, plan.plan_hash(), EngineSettings().fingerprint()
        )
        assert loaded is not None and loaded.pair_set() == frozenset({pair})
        # A resume of the (now checkpointed, masked) build reconstructs
        # the same quarantine from the stored manifest.
        resumed, _ = make_orchestrator(
            plan,
            policy=RetryPolicy(on_poison_pair="degraded"),
            checkpoint_dir=tmp_path,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            band = resumed.run(signatures)
        assert resumed.n_shards_resumed == plan.n_shards
        assert resumed.quarantine.pair_set() == frozenset({pair})
        assert np.isnan(np.asarray(band.band)).sum() == np.isnan(
            reference_band(signatures, 6)
        ).sum() + 1


# ---------------------------------------------------------------------- #
# Checkpoint validation
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestCheckpointValidation:
    def build_checkpoints(self, tmp_path):
        signatures = histogram_signatures(18, seed=8)
        plan = ShardPlan.build(len(signatures), 6, 3)
        orchestrator, _ = make_orchestrator(plan, checkpoint_dir=tmp_path)
        orchestrator.run(signatures)
        return signatures, plan

    @pytest.mark.parametrize(
        "corrupt",
        [truncate_checkpoint, bitflip_checkpoint, tamper_checkpoint_values],
        ids=["truncated", "bitflipped", "tampered-payload"],
    )
    def test_corrupt_checkpoint_is_requeued_not_fatal(self, tmp_path, corrupt):
        signatures, plan = self.build_checkpoints(tmp_path)
        corrupt(checkpoint_path(tmp_path, 1))
        orchestrator, _ = make_orchestrator(plan, checkpoint_dir=tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            band = orchestrator.run(signatures)
        assert any("re-queueing shard 1" in str(w.message) for w in caught)
        assert orchestrator.n_checkpoints_requeued == 1
        assert orchestrator.n_shards_resumed == plan.n_shards - 1
        assert orchestrator.n_shards_computed == 1
        assert_band_parity(band, reference_band(signatures, 6))
        # The recomputed shard is re-checkpointed and valid again.
        final, _ = make_orchestrator(plan, checkpoint_dir=tmp_path)
        final.run(signatures)
        assert final.n_shards_resumed == plan.n_shards

    def test_stale_fingerprint_checkpoint_is_requeued(self, tmp_path):
        signatures, plan = self.build_checkpoints(tmp_path)
        stale, _ = make_orchestrator(plan, checkpoint_dir=tmp_path, backend="sinkhorn_batch")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            band = stale.run(signatures)
        assert stale.n_checkpoints_requeued == plan.n_shards
        assert stale.n_shards_resumed == 0
        assert any("engine configuration" in str(w.message) for w in caught)
        assert_band_parity(band, reference_band(signatures, 6, "sinkhorn_batch"))


# ---------------------------------------------------------------------- #
# Inline backend protocol
# ---------------------------------------------------------------------- #
class TestInlineBackend:
    def test_poll_reports_killed_handles_as_gone(self):
        signatures = histogram_signatures(10, seed=1)
        plan = ShardPlan.build(len(signatures), 4, 2)
        backend = InlineWorkerBackend(plan, EngineSettings(), signatures)
        try:
            with inject_worker_hang(times=1):
                handle = backend.start(0)
            assert backend.poll(handle) is None  # hung: still "running"
            backend.kill(handle)
            handle2 = backend.start(0)
            outcome = backend.poll(handle2)
            assert outcome is not None and outcome.status == "ok"
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Process mode (small, real worker processes)
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestProcessMode:
    def test_parity_and_checkpoints(self, tmp_path):
        signatures = histogram_signatures(14, seed=10)
        plan = ShardPlan.build(len(signatures), 5, 3)
        orchestrator = ShardOrchestrator(
            plan,
            EngineSettings(),
            mode="process",
            n_workers=2,
            checkpoint_dir=tmp_path,
        )
        band = orchestrator.run(signatures)
        assert_band_parity(band, reference_band(signatures, 5))
        assert len(list(tmp_path.glob("shard_*.npz"))) == plan.n_shards

    def test_hard_worker_death_is_retried_to_parity(self, tmp_path):
        signatures = histogram_signatures(14, seed=10)
        plan = ShardPlan.build(len(signatures), 5, 3)
        orchestrator = ShardOrchestrator(
            plan, EngineSettings(), mode="process", n_workers=2
        )
        sentinel = tmp_path / "crash-once"
        with inject_worker_crash(at_pair=2, hard=True, sentinel=sentinel):
            band = orchestrator.run(signatures)
        assert orchestrator.n_retries >= 1
        assert len(list(tmp_path.glob("crash-once.fired.*"))) == 1
        assert_band_parity(band, reference_band(signatures, 5))


# ---------------------------------------------------------------------- #
# Detector / config integration
# ---------------------------------------------------------------------- #
class TestDetectorIntegration:
    def test_orchestrated_detect_matches_plain(self, step_change_bags):
        from repro import BagChangePointDetector
        from repro.core import DetectorConfig

        kwargs = dict(
            tau=4, tau_test=4, signature_method="exact", n_bootstrap=40, random_state=0
        )
        plain = BagChangePointDetector(DetectorConfig(**kwargs)).detect(step_change_bags)
        orchestrated = BagChangePointDetector(
            DetectorConfig(n_shards=3, shard_retries=3, **kwargs)
        ).detect(step_change_bags)
        for a, b in zip(plain.points, orchestrated.points):
            assert a.score == b.score
            assert a.alert == b.alert

    @pytest.mark.faults
    def test_detect_survives_transient_faults_identically(self, step_change_bags):
        from repro import BagChangePointDetector
        from repro.core import DetectorConfig

        kwargs = dict(
            tau=4, tau_test=4, signature_method="exact", n_bootstrap=40, random_state=0
        )
        plain = BagChangePointDetector(DetectorConfig(**kwargs)).detect(step_change_bags)
        config = DetectorConfig(n_shards=3, shard_retries=3, **kwargs)
        with inject_transient_solver_error(times=2):
            faulted = BagChangePointDetector(config).detect(step_change_bags)
        for a, b in zip(plain.points, faulted.points):
            assert a.score == b.score
            assert a.alert == b.alert
