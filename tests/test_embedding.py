"""Tests for classical multidimensional scaling."""

import numpy as np
import pytest

from repro.embedding import classical_mds
from repro.exceptions import ValidationError


def euclidean_matrix(points):
    points = np.asarray(points, dtype=float)
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestClassicalMDS:
    def test_recovers_euclidean_configuration(self, rng):
        points = rng.normal(size=(10, 2))
        result = classical_mds(euclidean_matrix(points), n_components=2)
        reconstructed = euclidean_matrix(result.embedding)
        assert np.allclose(reconstructed, euclidean_matrix(points), atol=1e-6)

    def test_stress_near_zero_for_euclidean_input(self, rng):
        points = rng.normal(size=(8, 3))
        result = classical_mds(euclidean_matrix(points), n_components=3)
        assert result.stress < 1e-6

    def test_embedding_shape(self, rng):
        points = rng.normal(size=(7, 4))
        result = classical_mds(euclidean_matrix(points), n_components=2)
        assert result.embedding.shape == (7, 2)

    def test_collinear_points_need_one_dimension(self):
        points = np.array([[0.0], [1.0], [2.0], [5.0]])
        result = classical_mds(euclidean_matrix(points), n_components=2)
        # Second eigenvalue should be ~0 for a 1-D configuration.
        assert result.eigenvalues[1] == pytest.approx(0.0, abs=1e-8)

    def test_eigenvalues_sorted_descending(self, rng):
        points = rng.normal(size=(6, 3))
        result = classical_mds(euclidean_matrix(points))
        assert np.all(np.diff(result.eigenvalues) <= 1e-9)

    def test_n_components_capped_at_n_minus_1(self):
        points = np.array([[0.0], [1.0], [3.0]])
        result = classical_mds(euclidean_matrix(points), n_components=10)
        assert result.embedding.shape[1] <= 2

    def test_two_points(self):
        dist = np.array([[0.0, 4.0], [4.0, 0.0]])
        result = classical_mds(dist, n_components=1)
        assert abs(result.embedding[0, 0] - result.embedding[1, 0]) == pytest.approx(4.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            classical_mds(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            classical_mds(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_negative_distances(self):
        with pytest.raises(ValidationError):
            classical_mds(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_single_point(self):
        with pytest.raises(ValidationError):
            classical_mds(np.zeros((1, 1)))

    def test_non_euclidean_input_still_embeds(self):
        # A metric violating Euclidean embeddability (negative eigenvalues)
        # should still produce a finite embedding with non-trivial stress.
        dist = np.array(
            [
                [0.0, 1.0, 1.0, 1.0],
                [1.0, 0.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 2.9],
                [1.0, 1.0, 2.9, 0.0],
            ]
        )
        result = classical_mds(dist, n_components=2)
        assert np.all(np.isfinite(result.embedding))
        assert result.stress >= 0.0
