"""Tests for the Bag and BagSequence containers."""

import numpy as np
import pytest

from repro.core import Bag, BagSequence
from repro.exceptions import ValidationError


class TestBag:
    def test_basic_properties(self, rng):
        bag = Bag(rng.normal(size=(20, 3)), index=7)
        assert bag.size == 20
        assert bag.dimension == 3
        assert bag.index == 7
        assert len(bag) == 20

    def test_1d_input_promoted(self):
        bag = Bag(np.array([1.0, 2.0, 3.0]))
        assert bag.dimension == 1
        assert bag.size == 3

    def test_mean(self):
        bag = Bag(np.array([[0.0, 0.0], [2.0, 4.0]]))
        assert np.allclose(bag.mean(), [1.0, 2.0])

    def test_data_immutable(self, rng):
        bag = Bag(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            bag.data[0, 0] = 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Bag(np.empty((0, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            Bag(np.array([[np.nan, 1.0]]))


class TestBagSequence:
    def test_from_arrays(self, rng):
        bags = [rng.normal(size=(10, 2)) for _ in range(4)]
        sequence = BagSequence.from_arrays(bags)
        assert len(sequence) == 4
        assert sequence.dimension == 2
        assert sequence.sizes.tolist() == [10, 10, 10, 10]

    def test_default_indices(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 1)) for _ in range(3)])
        assert sequence.indices == [0, 1, 2]

    def test_custom_indices(self, rng):
        sequence = BagSequence(
            [rng.normal(size=(5, 1)) for _ in range(2)], indices=["a", "b"]
        )
        assert sequence.indices == ["a", "b"]

    def test_varying_bag_sizes(self, rng):
        sequence = BagSequence([rng.normal(size=(n, 2)) for n in (3, 7, 5)])
        assert sequence.sizes.tolist() == [3, 7, 5]

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            BagSequence([rng.normal(size=(5, 2)), rng.normal(size=(5, 3))])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError):
            BagSequence([])

    def test_indexing_returns_bag(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 1)) for _ in range(3)])
        assert isinstance(sequence[1], Bag)

    def test_slicing_returns_sequence(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 1)) for _ in range(5)])
        sliced = sequence[1:4]
        assert isinstance(sliced, BagSequence)
        assert len(sliced) == 3

    def test_window(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 1)) for _ in range(6)])
        window = sequence.window(2, 3)
        assert len(window) == 3

    def test_window_out_of_bounds_rejected(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 1)) for _ in range(4)])
        with pytest.raises(ValidationError):
            sequence.window(3, 5)

    def test_mean_sequence_shape(self, rng):
        sequence = BagSequence([rng.normal(size=(8, 3)) for _ in range(4)])
        assert sequence.mean_sequence().shape == (4, 3)

    def test_stack_concatenates_all(self, rng):
        sequence = BagSequence([rng.normal(size=(n, 2)) for n in (3, 4)])
        assert sequence.stack().shape == (7, 2)

    def test_from_long_format_groups_by_time(self):
        times = np.array([0, 0, 1, 2, 2, 2])
        values = np.arange(6, dtype=float).reshape(-1, 1)
        sequence = BagSequence.from_long_format(times, values)
        assert len(sequence) == 3
        assert sequence.sizes.tolist() == [2, 1, 3]

    def test_from_long_format_length_mismatch(self):
        with pytest.raises(ValidationError):
            BagSequence.from_long_format(np.array([0, 1]), np.zeros((3, 1)))

    def test_accepts_bag_instances(self, rng):
        bags = [Bag(rng.normal(size=(4, 2)), index=i * 10) for i in range(3)]
        sequence = BagSequence(bags)
        assert sequence.indices == [0, 10, 20]

    def test_iteration(self, rng):
        sequence = BagSequence([rng.normal(size=(4, 2)) for _ in range(3)])
        assert sum(1 for _ in sequence) == 3
