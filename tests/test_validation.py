"""Tests for the internal validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_rng,
    check_matrix,
    check_positive_int,
    check_probability,
    check_same_dimension,
    check_vector,
    check_weights,
    check_window,
)
from repro.exceptions import ValidationError


class TestAsRng:
    def test_returns_generator_from_seed(self):
        assert isinstance(as_rng(0), np.random.Generator)

    def test_passes_through_existing_generator(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert as_rng(7).integers(1000) == as_rng(7).integers(1000)


class TestCheckMatrix:
    def test_promotes_1d_to_column(self):
        out = check_matrix([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_keeps_2d_shape(self):
        out = check_matrix(np.ones((4, 3)))
        assert out.shape == (4, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.ones((2, 2, 2)))

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError):
            check_matrix(np.empty((0, 2)))

    def test_allows_empty_when_requested(self):
        out = check_matrix(np.empty((0, 2)), allow_empty=True)
        assert out.shape == (0, 2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_matrix([[np.inf, 1.0]])


class TestCheckVector:
    def test_flattens_input(self):
        assert check_vector([[1.0], [2.0]]).shape == (2,)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_vector([])

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            check_vector([1.0, np.nan])


class TestCheckWeights:
    def test_accepts_positive_weights(self):
        out = check_weights([1.0, 2.0, 3.0])
        assert out.sum() == pytest.approx(6.0)

    def test_normalize_option(self):
        out = check_weights([2.0, 2.0], normalize=True)
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_weights([1.0, -0.1])

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            check_weights([0.0, 0.0])


class TestCheckPositiveInt:
    def test_accepts_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_rejects_zero_with_default_minimum(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0


class TestCheckProbability:
    def test_accepts_interior_value(self):
        assert check_probability(0.05, "alpha") == pytest.approx(0.05)

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "alpha")


class TestCheckSameDimension:
    def test_accepts_matching(self):
        check_same_dimension(np.ones((2, 3)), np.ones((5, 3)), "a", "b")

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError):
            check_same_dimension(np.ones((2, 3)), np.ones((5, 2)), "a", "b")


class TestCheckWindow:
    def test_none_passes_through(self):
        assert check_window(None, "w") is None

    def test_positive_int_passes(self):
        assert check_window(4, "w") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_window(0, "w")
