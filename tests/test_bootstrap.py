"""Tests for the Bayesian and standard bootstrap machinery."""

import numpy as np
import pytest

from repro.bootstrap import (
    BayesianBootstrap,
    ConfidenceInterval,
    StandardBootstrap,
    dirichlet_moments,
    percentile_interval,
    sample_uniform_dirichlet_weights,
    sample_weighted_dirichlet_weights,
)
from repro.exceptions import ValidationError


class TestDirichletSampling:
    def test_uniform_rows_sum_to_one(self):
        weights = sample_uniform_dirichlet_weights(5, size=10, rng=0)
        assert weights.shape == (10, 5)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_uniform_nonnegative(self):
        weights = sample_uniform_dirichlet_weights(4, size=100, rng=1)
        assert np.all(weights >= 0)

    def test_uniform_mean_matches_appendix_a(self):
        # Appendix A: E[g_i] = 1/n.
        weights = sample_uniform_dirichlet_weights(4, size=20000, rng=2)
        assert np.allclose(weights.mean(axis=0), 0.25, atol=0.01)

    def test_uniform_variance_matches_appendix_a(self):
        # Appendix A: var[g_i] = (n-1)/n^2/(n+1)  (i.e. p(1-p)/(n+1)).
        n = 4
        weights = sample_uniform_dirichlet_weights(n, size=40000, rng=3)
        expected = (1 / n) * (1 - 1 / n) / (n + 1)
        assert np.allclose(weights.var(axis=0), expected, rtol=0.1)

    def test_weighted_mean_matches_base_weights(self):
        base = np.array([0.5, 0.3, 0.2])
        weights = sample_weighted_dirichlet_weights(base, size=20000, rng=4)
        assert np.allclose(weights.mean(axis=0), base, atol=0.01)

    def test_weighted_variance_matches_appendix_b(self):
        # Appendix B with alpha_i = n*pi_i: var[g_i] = pi_i(1-pi_i)/(n+1).
        base = np.array([0.5, 0.3, 0.2])
        n = base.size
        weights = sample_weighted_dirichlet_weights(base, size=60000, rng=5)
        expected = base * (1 - base) / (n + 1)
        assert np.allclose(weights.var(axis=0), expected, rtol=0.1)

    def test_weighted_zero_base_weight_stays_near_zero(self):
        base = np.array([1.0, 1.0, 0.0])
        weights = sample_weighted_dirichlet_weights(base, size=100, rng=6)
        assert np.all(weights[:, 2] < 1e-6)

    def test_invalid_concentration_rejected(self):
        with pytest.raises(ValidationError):
            sample_weighted_dirichlet_weights(np.ones(3), concentration_scale=0.0)

    def test_dirichlet_moments_formulas(self):
        mean, var = dirichlet_moments(np.array([2.0, 2.0]))
        assert np.allclose(mean, 0.5)
        assert np.allclose(var, 0.25 / 5.0)

    def test_dirichlet_moments_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            dirichlet_moments(np.array([1.0, 0.0]))


class TestConfidenceInterval:
    def test_width_and_contains(self):
        ci = ConfidenceInterval(lower=0.0, upper=2.0, level=0.95, point=1.0)
        assert ci.width == pytest.approx(2.0)
        assert ci.contains(1.5)
        assert not ci.contains(2.5)

    def test_overlaps(self):
        a = ConfidenceInterval(0.0, 1.0, 0.95)
        b = ConfidenceInterval(0.5, 2.0, 0.95)
        c = ConfidenceInterval(1.5, 2.0, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            ConfidenceInterval(lower=1.0, upper=0.0, level=0.95)

    def test_percentile_interval_quantiles(self):
        samples = np.arange(101, dtype=float)
        ci = percentile_interval(samples, alpha=0.1)
        assert ci.lower == pytest.approx(5.0)
        assert ci.upper == pytest.approx(95.0)
        assert ci.level == pytest.approx(0.9)

    def test_percentile_interval_point_carried(self):
        ci = percentile_interval(np.array([1.0, 2.0, 3.0]), point=2.0)
        assert ci.point == pytest.approx(2.0)

    def test_percentile_interval_invalid_alpha(self):
        with pytest.raises(ValidationError):
            percentile_interval(np.array([1.0, 2.0]), alpha=1.5)


class TestBayesianBootstrap:
    def test_replicates_shape(self):
        bootstrap = BayesianBootstrap(50, rng=0)
        values = bootstrap.replicate(lambda w: float(w[0]), 4)
        assert values.shape == (50,)

    def test_mean_interval_contains_true_mean_for_large_sample(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 1.0, size=200)
        ci = BayesianBootstrap(300, rng=1).mean_interval(data)
        assert ci.lower < 3.0 < ci.upper

    def test_mean_interval_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = rng.normal(0.0, 1.0, size=10)
        large = rng.normal(0.0, 1.0, size=1000)
        width_small = BayesianBootstrap(200, rng=3).mean_interval(small).width
        width_large = BayesianBootstrap(200, rng=4).mean_interval(large).width
        assert width_large < width_small

    def test_reproducible_with_seed(self):
        data = np.arange(10, dtype=float)
        ci1 = BayesianBootstrap(100, rng=7).mean_interval(data)
        ci2 = BayesianBootstrap(100, rng=7).mean_interval(data)
        assert ci1.lower == ci2.lower and ci1.upper == ci2.upper

    def test_weighted_resampling_respects_base_weights(self):
        bootstrap = BayesianBootstrap(2000, rng=8)
        weights = bootstrap.resample_weights(3, base_weights=np.array([0.7, 0.2, 0.1]))
        assert weights.mean(axis=0)[0] > weights.mean(axis=0)[2]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            BayesianBootstrap(1)
        with pytest.raises(ValidationError):
            BayesianBootstrap(10, alpha=0.0)

    def test_confidence_interval_point_estimate(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        ci = BayesianBootstrap(100, rng=0).mean_interval(data)
        assert ci.point == pytest.approx(2.5)

    def test_smoothness_advantage_over_standard_bootstrap(self):
        # Paper §4.2: for tiny samples the Bayesian bootstrap produces many
        # more distinct replicate values than multinomial resampling.
        data = np.array([0.0, 1.0, 5.0, 9.0])
        statistic = lambda w: float(np.dot(w, data))
        bayes = BayesianBootstrap(300, rng=1).replicate(statistic, 4)
        standard = StandardBootstrap(300, rng=1).replicate(statistic, 4)
        assert len(np.unique(np.round(bayes, 10))) > len(np.unique(np.round(standard, 10)))


class TestStandardBootstrap:
    def test_weights_are_multiples_of_one_over_n(self):
        weights = StandardBootstrap(20, rng=0).resample_weights(5)
        assert np.allclose((weights * 5) % 1.0, 0.0)

    def test_rows_sum_to_one(self):
        weights = StandardBootstrap(20, rng=0).resample_weights(6)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_mean_interval_contains_truth(self):
        rng = np.random.default_rng(5)
        data = rng.normal(-2.0, 1.0, size=300)
        ci = StandardBootstrap(300, rng=6).confidence_interval(
            lambda w: float(np.dot(w, data)), data.shape[0]
        )
        assert ci.lower < -2.0 < ci.upper

    def test_base_weights_shift_resampling(self):
        weights = StandardBootstrap(2000, rng=7).resample_weights(
            3, base_weights=np.array([0.8, 0.1, 0.1])
        )
        assert weights.mean(axis=0)[0] > 0.5
