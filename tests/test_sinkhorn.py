"""Tests for the entropic-regularised (Sinkhorn) approximate EMD backend."""

import numpy as np
import pytest

from repro.emd import emd, sinkhorn_emd, sinkhorn_transport
from repro.exceptions import ValidationError
from repro.signatures import Signature


def random_signature(rng, size=6, dim=2):
    return Signature(rng.normal(size=(size, dim)), rng.uniform(0.5, 2.0, size))


class TestSinkhornTransport:
    def test_plan_marginals_match_weights(self, rng):
        cost = rng.uniform(0, 5, size=(4, 6))
        a = rng.uniform(0.5, 2.0, 4)
        b = rng.uniform(0.5, 2.0, 6)
        result = sinkhorn_transport(cost, a, b, epsilon=0.05)
        assert np.allclose(result.plan.sum(axis=1), a / a.sum(), atol=1e-5)
        assert np.allclose(result.plan.sum(axis=0), b / b.sum(), atol=1e-5)

    def test_plan_nonnegative(self, rng):
        cost = rng.uniform(0, 5, size=(3, 3))
        result = sinkhorn_transport(cost, np.ones(3), np.ones(3))
        assert np.all(result.plan >= 0)

    def test_converges_flag(self, rng):
        cost = rng.uniform(0, 1, size=(3, 3))
        result = sinkhorn_transport(cost, np.ones(3), np.ones(3), epsilon=0.5)
        assert result.converged

    def test_cost_decreases_with_smaller_epsilon(self, rng):
        # Smaller entropic regularisation concentrates the plan on cheaper
        # routes, so the transport cost under the original ground distance
        # cannot increase.
        cost = rng.uniform(0, 5, size=(5, 5))
        a, b = np.ones(5), np.ones(5)
        loose = sinkhorn_transport(cost, a, b, epsilon=1.0).distance
        tight = sinkhorn_transport(cost, a, b, epsilon=0.01).distance
        assert tight <= loose + 1e-9

    def test_zero_weight_atom_is_dropped(self, rng):
        # A zero-weight atom must not poison the log-domain potentials
        # (log 0 = -inf used to surface as a spurious SolverError).
        cost = rng.uniform(0.5, 5, size=(4, 3))
        a = np.array([1.0, 0.0, 2.0, 1.0])
        b = np.ones(3)
        result = sinkhorn_transport(cost, a, b, epsilon=0.05)
        assert np.all(np.isfinite(result.plan))
        assert result.plan.shape == (4, 3)
        assert np.allclose(result.plan[1, :], 0.0)
        # Equivalent to solving without the empty atom.
        reduced = sinkhorn_transport(cost[[0, 2, 3], :], a[[0, 2, 3]], b, epsilon=0.05)
        assert result.distance == pytest.approx(reduced.distance, abs=1e-9)

    def test_zero_weight_atoms_on_both_sides(self, rng):
        cost = rng.uniform(0.5, 5, size=(3, 4))
        result = sinkhorn_transport(
            cost, np.array([1.0, 0.0, 1.0]), np.array([0.0, 1.0, 1.0, 1.0])
        )
        assert result.plan.shape == (3, 4)
        assert np.allclose(result.plan[1, :], 0.0)
        assert np.allclose(result.plan[:, 0], 0.0)
        assert np.allclose(result.plan.sum(), 1.0, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport(np.ones((2, 2)), np.ones(3), np.ones(2))

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport(np.ones((2, 2)), np.ones(2), np.ones(2), epsilon=0.0)

    def test_invalid_check_every_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport(np.ones((2, 2)), np.ones(2), np.ones(2), check_every=0)

    def test_check_every_does_not_change_the_result(self, rng):
        # The dual updates are identical whatever the check cadence; a
        # sparser cadence only delays *noticing* convergence, so the
        # distance agrees to within the marginal tolerance and the
        # iteration count lands in the next check window.
        cost = rng.uniform(0.2, 5.0, size=(5, 6))
        a = rng.uniform(0.5, 2.0, 5)
        b = rng.uniform(0.5, 2.0, 6)
        every = sinkhorn_transport(cost, a, b, epsilon=0.05, check_every=1)
        sparse = sinkhorn_transport(cost, a, b, epsilon=0.05, check_every=10)
        assert sparse.distance == pytest.approx(every.distance, abs=1e-9)
        assert every.converged and sparse.converged
        assert every.iterations <= sparse.iterations < every.iterations + 10
        assert sparse.iterations % 10 == 0

    def test_marginals_still_met_with_sparse_checks(self, rng):
        cost = rng.uniform(0, 5, size=(4, 6))
        a = rng.uniform(0.5, 2.0, 4)
        b = rng.uniform(0.5, 2.0, 6)
        result = sinkhorn_transport(cost, a, b, epsilon=0.05, check_every=25)
        assert result.converged
        assert np.abs(result.plan.sum(axis=1) - a / a.sum()).sum() < 1e-8
        assert np.abs(result.plan.sum(axis=0) - b / b.sum()).sum() < 1e-8


class TestSinkhornEmd:
    def test_close_to_exact_emd_for_small_epsilon(self, rng):
        sig_a = random_signature(rng).normalized()
        sig_b = random_signature(rng).normalized()
        exact = emd(sig_a, sig_b, backend="linprog")
        approx = sinkhorn_emd(sig_a, sig_b, epsilon=0.005, max_iter=5000)
        assert approx == pytest.approx(exact, rel=0.05, abs=0.02)

    def test_upper_bounds_exact_value(self, rng):
        # The regularised plan is feasible for the unregularised problem, so
        # its cost can only exceed (or match) the exact optimum.
        sig_a = random_signature(rng).normalized()
        sig_b = random_signature(rng).normalized()
        exact = emd(sig_a, sig_b, backend="linprog")
        approx = sinkhorn_emd(sig_a, sig_b, epsilon=0.05)
        assert approx >= exact - 1e-6

    def test_error_shrinks_with_epsilon(self, rng):
        sig_a = random_signature(rng, size=5).normalized()
        sig_b = random_signature(rng, size=5).normalized()
        exact = emd(sig_a, sig_b, backend="linprog")
        coarse = abs(sinkhorn_emd(sig_a, sig_b, epsilon=1.0) - exact)
        fine = abs(sinkhorn_emd(sig_a, sig_b, epsilon=0.01, max_iter=5000) - exact)
        assert fine <= coarse + 1e-9

    def test_self_distance_small(self, rng):
        sig = random_signature(rng).normalized()
        assert sinkhorn_emd(sig, sig, epsilon=0.01, max_iter=5000) < 0.1

    def test_dimension_mismatch_rejected(self, rng):
        sig_a = random_signature(rng, dim=2)
        sig_b = random_signature(rng, dim=3)
        with pytest.raises(ValidationError):
            sinkhorn_emd(sig_a, sig_b)
