"""Tests for the evaluation metrics and the experiment runner."""

import numpy as np
import pytest

from repro.datasets import make_confidence_interval_dataset
from repro.evaluation import (
    ExperimentReport,
    false_alarm_rate,
    format_report_table,
    match_alarms,
    run_experiment,
    score_auc,
)
from repro.exceptions import ValidationError


class TestMatchAlarms:
    def test_perfect_detection(self):
        result = match_alarms([10, 52], [10, 50], tolerance=5)
        assert result.true_positives == 2
        assert result.false_positives == 0
        assert result.false_negatives == 0
        assert result.precision == 1.0 and result.recall == 1.0 and result.f1 == 1.0

    def test_delay_recorded(self):
        result = match_alarms([53], [50], tolerance=5)
        assert result.delays == (3.0,)
        assert result.mean_delay == pytest.approx(3.0)

    def test_alarm_outside_tolerance_is_false_positive(self):
        result = match_alarms([70], [50], tolerance=5)
        assert result.true_positives == 0
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_each_alarm_matches_at_most_one_change(self):
        result = match_alarms([50], [50, 52], tolerance=5)
        assert result.true_positives == 1
        assert result.false_negatives == 1

    def test_early_alarm_not_matched_by_default(self):
        result = match_alarms([48], [50], tolerance=5)
        assert result.true_positives == 0

    def test_allow_early_window(self):
        result = match_alarms([48], [50], tolerance=5, allow_early=3)
        assert result.true_positives == 1
        assert result.delays == (-2.0,)

    def test_no_changes_no_alarms(self):
        result = match_alarms([], [], tolerance=5)
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert np.isnan(result.mean_delay)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            match_alarms([1], [1], tolerance=-1)


class TestFalseAlarmRate:
    def test_counts_unmatched_alarms(self):
        rate = false_alarm_rate([10, 90], [10], n_steps=100, tolerance=5)
        assert rate == pytest.approx(0.01)

    def test_zero_when_all_matched(self):
        assert false_alarm_rate([10], [10], n_steps=100) == 0.0

    def test_invalid_n_steps(self):
        with pytest.raises(ValidationError):
            false_alarm_rate([1], [1], n_steps=0)


class TestScoreAuc:
    def test_perfect_separation(self):
        times = np.arange(20)
        scores = np.zeros(20)
        scores[10:13] = 5.0
        assert score_auc(scores, times, [10], tolerance=2) == pytest.approx(1.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        times = np.arange(400)
        scores = rng.normal(size=400)
        auc = score_auc(scores, times, [100, 300], tolerance=5)
        assert 0.35 < auc < 0.65

    def test_nan_when_no_positives(self):
        assert np.isnan(score_auc(np.ones(5), np.arange(5), [100], tolerance=2))

    def test_inverted_scores_give_low_auc(self):
        times = np.arange(20)
        scores = np.ones(20)
        scores[10:13] = -5.0
        assert score_auc(scores, times, [10], tolerance=2) == pytest.approx(0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            score_auc(np.ones(3), np.arange(4), [1])


class TestRunExperiment:
    def test_detects_dataset4_change(self):
        dataset = make_confidence_interval_dataset(4, random_state=1)
        report = run_experiment(
            dataset,
            tau=5,
            tau_test=5,
            signature_method="exact",
            n_bootstrap=60,
            random_state=0,
        )
        assert isinstance(report, ExperimentReport)
        assert report.matching.recall == 1.0

    def test_no_false_alarms_on_dataset1(self):
        dataset = make_confidence_interval_dataset(1, random_state=1)
        report = run_experiment(
            dataset,
            tau=5,
            tau_test=5,
            signature_method="exact",
            n_bootstrap=60,
            random_state=0,
        )
        assert report.false_alarm_rate <= 0.05

    def test_row_is_serialisable(self):
        dataset = make_confidence_interval_dataset(4, random_state=1)
        report = run_experiment(
            dataset, tau=5, tau_test=5, signature_method="exact",
            n_bootstrap=40, random_state=0,
        )
        row = report.row()
        assert set(row) >= {"dataset", "n_alerts", "precision", "recall", "f1"}

    def test_format_report_table(self):
        dataset = make_confidence_interval_dataset(4, random_state=1)
        report = run_experiment(
            dataset, tau=5, tau_test=5, signature_method="exact",
            n_bootstrap=40, random_state=0,
        )
        table = format_report_table([report])
        assert "dataset" in table
        assert "section5.1_dataset4" in table

    def test_format_empty_table(self):
        assert format_report_table([]) == "(no results)"
