"""Tests for the Signature type and the signature builders."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.signatures import Signature, SignatureBuilder, build_signature


class TestSignatureConstruction:
    def test_basic_properties(self, small_signature):
        assert small_signature.size == 3
        assert small_signature.dimension == 2
        assert small_signature.total_weight == pytest.approx(6.0)
        assert len(small_signature) == 3

    def test_zero_weight_entries_dropped(self):
        sig = Signature(np.array([[0.0], [1.0], [2.0]]), np.array([1.0, 0.0, 2.0]))
        assert sig.size == 2
        assert sig.total_weight == pytest.approx(3.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            Signature(np.array([[0.0]]), np.array([-1.0]))

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValidationError):
            Signature(np.array([[0.0], [1.0]]), np.array([0.0, 0.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            Signature(np.array([[0.0], [1.0]]), np.array([1.0]))

    def test_rejects_nan_positions(self):
        with pytest.raises(ValidationError):
            Signature(np.array([[np.nan]]), np.array([1.0]))

    def test_arrays_are_immutable(self, small_signature):
        with pytest.raises(ValueError):
            small_signature.positions[0, 0] = 99.0

    def test_iteration_yields_pairs(self, small_signature):
        pairs = list(small_signature)
        assert len(pairs) == 3
        position, weight = pairs[0]
        assert position.shape == (2,)
        assert isinstance(weight, float)

    def test_label_carried(self):
        sig = Signature(np.array([[1.0]]), np.array([1.0]), label=42)
        assert sig.label == 42


class TestSignatureTransforms:
    def test_normalized_total_weight_one(self, small_signature):
        assert small_signature.normalized().total_weight == pytest.approx(1.0)

    def test_normalized_preserves_proportions(self, small_signature):
        norm = small_signature.normalized()
        assert np.allclose(
            norm.weights / norm.weights.sum(),
            small_signature.weights / small_signature.weights.sum(),
        )

    def test_scaled(self, small_signature):
        assert small_signature.scaled(2.0).total_weight == pytest.approx(12.0)

    def test_scaled_rejects_nonpositive(self, small_signature):
        with pytest.raises(ValidationError):
            small_signature.scaled(0.0)

    def test_mean_is_weighted_centroid(self):
        sig = Signature(np.array([[0.0], [10.0]]), np.array([3.0, 1.0]))
        assert sig.mean()[0] == pytest.approx(2.5)

    def test_merged_concatenates(self, small_signature, shifted_signature):
        merged = small_signature.merged(shifted_signature)
        assert merged.size == 6
        assert merged.total_weight == pytest.approx(12.0)

    def test_merged_rejects_dimension_mismatch(self, small_signature):
        other = Signature(np.array([[1.0]]), np.array([1.0]))
        with pytest.raises(ValidationError):
            small_signature.merged(other)


class TestSignatureConstructors:
    def test_from_points_collapses_duplicates(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        sig = Signature.from_points(points)
        assert sig.size == 2
        assert sig.total_weight == pytest.approx(3.0)

    def test_from_histogram(self):
        sig = Signature.from_histogram(
            counts=np.array([3.0, 0.0, 2.0]),
            bin_centers=np.array([[0.0], [1.0], [2.0]]),
        )
        assert sig.size == 2

    def test_from_histogram_rejects_empty(self):
        with pytest.raises(ValidationError):
            Signature.from_histogram(np.zeros(3), np.arange(3.0).reshape(-1, 1))

    def test_from_histogram_rejects_mismatch(self):
        with pytest.raises(ValidationError):
            Signature.from_histogram(np.ones(2), np.arange(3.0).reshape(-1, 1))


class TestSignatureBuilder:
    @pytest.mark.parametrize("method", ["kmeans", "kmedoids", "lvq", "histogram", "exact"])
    def test_all_methods_produce_valid_signatures(self, rng, method):
        bag = rng.normal(size=(60, 2))
        sig = SignatureBuilder(method, n_clusters=4, bins=5, random_state=0).build(bag)
        assert sig.total_weight == pytest.approx(60.0)
        assert sig.dimension == 2

    def test_clustering_respects_n_clusters(self, rng):
        bag = rng.normal(size=(100, 2))
        sig = SignatureBuilder("kmeans", n_clusters=5, random_state=0).build(bag)
        assert sig.size <= 5

    def test_small_bag_falls_back_to_exact(self, rng):
        bag = rng.normal(size=(3, 2))
        sig = SignatureBuilder("kmeans", n_clusters=8, random_state=0).build(bag)
        assert sig.size <= 3

    def test_exact_method_uses_unique_points(self):
        bag = np.array([[0.0], [0.0], [1.0]])
        sig = SignatureBuilder("exact").build(bag)
        assert sig.size == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureBuilder("quantum")

    def test_build_sequence_assigns_labels(self, rng):
        bags = [rng.normal(size=(10, 1)) for _ in range(3)]
        sigs = SignatureBuilder("exact").build_sequence(bags)
        assert [s.label for s in sigs] == [0, 1, 2]

    def test_build_sequence_custom_labels(self, rng):
        bags = [rng.normal(size=(10, 1)) for _ in range(2)]
        sigs = SignatureBuilder("exact").build_sequence(bags, labels=["a", "b"])
        assert [s.label for s in sigs] == ["a", "b"]

    def test_custom_quantizer_instance(self, rng):
        from repro.quantize import KMeans

        bag = rng.normal(size=(50, 2))
        builder = SignatureBuilder(quantizer=KMeans(3, random_state=0))
        sig = builder.build(bag)
        assert sig.size <= 3

    def test_histogram_range_shared_grid(self, rng):
        builder = SignatureBuilder("histogram", bins=4, histogram_range=(-3.0, 3.0))
        s1 = builder.build(rng.normal(size=(50, 1)))
        s2 = builder.build(rng.normal(size=(50, 1)))
        centers = set(np.round(np.concatenate([s1.positions.ravel(), s2.positions.ravel()]), 6))
        assert len(centers) <= 4


class TestBuildSignatureFunction:
    def test_convenience_wrapper(self, rng):
        bag = rng.normal(size=(40, 3))
        sig = build_signature(bag, "kmeans", n_clusters=4, random_state=0, label="t0")
        assert sig.label == "t0"
        assert sig.dimension == 3

    def test_total_weight_equals_bag_size(self, rng):
        bag = rng.normal(size=(25, 2))
        assert build_signature(bag, "exact").total_weight == pytest.approx(25.0)
