"""Tests for the tensor-batched Sinkhorn solver and its engine routing.

The contract under test: stacking ``P`` same-support transport problems
into one ``(P, K, L)`` iteration is *observationally identical* to
solving them one at a time with :func:`repro.emd.sinkhorn_transport` —
same per-pair regularisation scaling, same convergence schedule, same
distances (to within float rounding, far inside the 1e-8 budget).
"""

import warnings

import numpy as np
import pytest

from repro.emd import (
    PairwiseEMDEngine,
    emd,
    logsumexp,
    sinkhorn_transport,
    sinkhorn_transport_batch,
)
from repro.emd.ground_distance import cross_distance_matrix
from repro.emd.linprog_backend import solve_emd_linprog
from repro.exceptions import ValidationError
from repro.signatures import Signature


def scalar_reference(cost, weights_a, weights_b, **kwargs):
    """Per-pair scalar solves over rows of stacked weight matrices."""
    return np.array(
        [
            sinkhorn_transport(cost, a, b, **kwargs).distance
            for a, b in zip(weights_a, weights_b)
        ]
    )


class TestLogsumexp:
    def test_matches_naive_on_finite_input(self, rng):
        values = rng.normal(size=(4, 6, 5))
        for axis in (0, 1, 2):
            expected = np.log(np.sum(np.exp(values), axis=axis))
            np.testing.assert_allclose(logsumexp(values, axis=axis), expected, atol=1e-12)

    def test_stable_for_large_magnitudes(self):
        values = np.array([[1000.0, 1000.0], [-1000.0, -1000.0]])
        out = logsumexp(values, axis=1)
        assert out[0] == pytest.approx(1000.0 + np.log(2.0))
        assert out[1] == pytest.approx(-1000.0 + np.log(2.0))

    def test_minus_inf_entries_are_exact_zero_mass(self):
        values = np.array([0.0, -np.inf, np.log(2.0)])
        assert logsumexp(values, axis=0) == pytest.approx(np.log(3.0))

    def test_all_minus_inf_slice_returns_minus_inf_without_warning(self):
        values = np.array([[-np.inf, -np.inf], [0.0, 0.0]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = logsumexp(values, axis=1)
        assert out[0] == -np.inf
        assert out[1] == pytest.approx(np.log(2.0))


class TestBatchedScalarParity:
    @pytest.mark.parametrize("shape", [(3, 5), (6, 6), (1, 4), (7, 2)])
    def test_matches_scalar_across_shapes(self, rng, shape):
        n_rows, n_cols = shape
        cost = rng.uniform(0.1, 5.0, size=shape)
        weights_a = rng.uniform(0.5, 2.0, size=(9, n_rows))
        weights_b = rng.uniform(0.5, 2.0, size=(9, n_cols))
        result = sinkhorn_transport_batch(cost, weights_a, weights_b, epsilon=0.05)
        expected = scalar_reference(cost, weights_a, weights_b, epsilon=0.05)
        np.testing.assert_allclose(result.distances, expected, atol=1e-8)

    def test_matches_scalar_iteration_counts(self, rng):
        cost = rng.uniform(0.1, 5.0, size=(5, 6))
        weights_a = rng.uniform(0.5, 2.0, size=(6, 5))
        weights_b = rng.uniform(0.5, 2.0, size=(6, 6))
        result = sinkhorn_transport_batch(cost, weights_a, weights_b, epsilon=0.1)
        for p, (a, b) in enumerate(zip(weights_a, weights_b)):
            scalar = sinkhorn_transport(cost, a, b, epsilon=0.1)
            assert result.iterations[p] == scalar.iterations
            assert bool(result.converged[p]) == scalar.converged

    def test_zero_weight_atoms_match_scalar(self, rng):
        # Zero weights mark atoms outside a pair's support (union-grid
        # embedding); the scalar solver drops them before solving, and
        # the batched solver must agree — including the per-pair median
        # regularisation computed on the reduced support.
        cost = rng.uniform(0.5, 5.0, size=(6, 5))
        weights_a = rng.uniform(0.5, 2.0, size=(8, 6))
        weights_b = rng.uniform(0.5, 2.0, size=(8, 5))
        weights_a[0, [1, 4]] = 0.0
        weights_a[3, :4] = 0.0
        weights_b[5, 2] = 0.0
        weights_b[7, :3] = 0.0
        result = sinkhorn_transport_batch(cost, weights_a, weights_b, epsilon=0.05)
        expected = scalar_reference(cost, weights_a, weights_b, epsilon=0.05)
        np.testing.assert_allclose(result.distances, expected, atol=1e-8)

    def test_unequal_masses_match_scalar(self, rng):
        # Both solvers normalise each side to a probability vector, so
        # wildly different total masses per pair must not matter.
        cost = rng.uniform(0.1, 3.0, size=(4, 4))
        weights_a = rng.uniform(0.5, 2.0, size=(5, 4)) * np.array(
            [1.0, 10.0, 0.01, 100.0, 3.0]
        )[:, None]
        weights_b = rng.uniform(0.5, 2.0, size=(5, 4))
        result = sinkhorn_transport_batch(cost, weights_a, weights_b, epsilon=0.05)
        expected = scalar_reference(cost, weights_a, weights_b, epsilon=0.05)
        np.testing.assert_allclose(result.distances, expected, atol=1e-8)

    def test_per_pair_cost_tensor(self, rng):
        costs = rng.uniform(0.1, 5.0, size=(4, 5, 6))
        weights_a = rng.uniform(0.5, 2.0, size=(4, 5))
        weights_b = rng.uniform(0.5, 2.0, size=(4, 6))
        result = sinkhorn_transport_batch(costs, weights_a, weights_b, epsilon=0.05)
        expected = np.array(
            [
                sinkhorn_transport(costs[p], weights_a[p], weights_b[p], epsilon=0.05).distance
                for p in range(4)
            ]
        )
        np.testing.assert_allclose(result.distances, expected, atol=1e-8)

    def test_chunked_batch_matches_unchunked(self, rng):
        cost = rng.uniform(0.1, 5.0, size=(4, 4))
        weights_a = rng.uniform(0.5, 2.0, size=(10, 4))
        weights_b = rng.uniform(0.5, 2.0, size=(10, 4))
        whole = sinkhorn_transport_batch(cost, weights_a, weights_b, epsilon=0.1)
        # Force a split every ~2 pairs.
        chunked = sinkhorn_transport_batch(
            cost, weights_a, weights_b, epsilon=0.1, max_batch_elements=2 * 16
        )
        # SIMD tails differ between array shapes by an ulp or two; the
        # iteration trajectories themselves must be identical.
        np.testing.assert_allclose(whole.distances, chunked.distances, atol=1e-12)
        np.testing.assert_array_equal(whole.iterations, chunked.iterations)

    def test_plans_have_correct_marginals(self, rng):
        cost = rng.uniform(0.1, 5.0, size=(5, 6))
        weights_a = rng.uniform(0.5, 2.0, size=(3, 5))
        weights_b = rng.uniform(0.5, 2.0, size=(3, 6))
        result = sinkhorn_transport_batch(
            cost, weights_a, weights_b, epsilon=0.05, return_plans=True
        )
        assert result.plans.shape == (3, 5, 6)
        norm_a = weights_a / weights_a.sum(axis=1, keepdims=True)
        norm_b = weights_b / weights_b.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(result.plans.sum(axis=2), norm_a, atol=1e-5)
        np.testing.assert_allclose(result.plans.sum(axis=1), norm_b, atol=1e-5)

    def test_empty_batch(self):
        result = sinkhorn_transport_batch(
            np.ones((3, 3)), np.empty((0, 3)), np.empty((0, 3))
        )
        assert result.distances.size == 0
        assert result.iterations.size == 0


class TestEpsilonAnnealing:
    def test_converges_to_exact_emd(self, rng):
        cost = rng.uniform(0.2, 4.0, size=(6, 6))
        weights_a = rng.uniform(0.5, 2.0, size=(4, 6))
        weights_b = rng.uniform(0.5, 2.0, size=(4, 6))
        result = sinkhorn_transport_batch(
            cost,
            weights_a,
            weights_b,
            epsilon=[0.5, 0.1, 0.02, 0.004],
            max_iter=20000,
        )
        for p in range(4):
            plan = solve_emd_linprog(
                cost,
                weights_a[p] / weights_a[p].sum(),
                weights_b[p] / weights_b[p].sum(),
            )
            exact = plan.cost / plan.total_flow
            assert result.distances[p] == pytest.approx(exact, rel=5e-3, abs=5e-3)
            # Entropic plans are feasible for the unregularised problem.
            assert result.distances[p] >= exact - 1e-8

    def test_error_shrinks_along_the_schedule(self, rng):
        cost = rng.uniform(0.2, 4.0, size=(5, 5))
        weights_a = rng.uniform(0.5, 2.0, size=(1, 5))
        weights_b = rng.uniform(0.5, 2.0, size=(1, 5))
        plan = solve_emd_linprog(
            cost, weights_a[0] / weights_a[0].sum(), weights_b[0] / weights_b[0].sum()
        )
        exact = plan.cost / plan.total_flow
        errors = []
        for schedule in ([1.0], [1.0, 0.2], [1.0, 0.2, 0.02]):
            result = sinkhorn_transport_batch(
                cost, weights_a, weights_b, epsilon=schedule, max_iter=10000
            )
            errors.append(abs(result.distances[0] - exact))
        assert errors[2] <= errors[1] + 1e-9
        assert errors[1] <= errors[0] + 1e-9

    def test_invalid_schedules_rejected(self):
        cost = np.ones((2, 2))
        weights = np.ones((1, 2))
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(cost, weights, weights, epsilon=[])
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(cost, weights, weights, epsilon=[0.5, -0.1])


class TestBatchValidation:
    def test_wrong_weight_dimensionality_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((2, 2)), np.ones(2), np.ones((1, 2)))

    def test_mismatched_pair_counts_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((2, 2)), np.ones((3, 2)), np.ones((2, 2)))

    def test_mismatched_cost_shape_rejected(self):
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((3, 2)), np.ones((1, 2)), np.ones((1, 2)))
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((4, 2, 2)), np.ones((3, 2)), np.ones((3, 2)))

    def test_negative_weights_rejected(self):
        weights = np.array([[1.0, -0.5]])
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((2, 2)), weights, np.ones((1, 2)))

    def test_zero_mass_row_rejected(self):
        weights = np.array([[0.0, 0.0]])
        with pytest.raises(ValidationError):
            sinkhorn_transport_batch(np.ones((2, 2)), weights, np.ones((1, 2)))


def make_grid_signatures(rng, n=8, side=4, dim=2, drop=4):
    """Histogram-like signatures over one d-dim grid with varying occupancy."""
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    n_bins = grid.shape[0]
    signatures = []
    for i in range(n):
        counts = rng.poisson(3.0, size=n_bins).astype(float)
        if drop:
            counts[rng.choice(n_bins, size=drop, replace=False)] = 0.0
        if counts.sum() == 0:
            counts[0] = 1.0
        signatures.append(Signature(grid[counts > 0], counts[counts > 0], label=i))
    return signatures


class TestEngineSinkhornRouting:
    def test_common_support_group_matches_per_pair_scalar(self, rng):
        support = rng.normal(size=(6, 2))
        sigs = [Signature(support, rng.uniform(0.5, 2.0, 6), label=i) for i in range(6)]
        pairs = [(sigs[i], sigs[j]) for i in range(6) for j in range(i + 1, 6)]
        engine = PairwiseEMDEngine(backend="sinkhorn_batch", sinkhorn_epsilon=0.05)
        values = engine.compute_pairs(pairs)
        cost = cross_distance_matrix(support, support, "euclidean")
        expected = [
            sinkhorn_transport(cost, a.weights, b.weights, epsilon=0.05).distance
            for a, b in pairs
        ]
        np.testing.assert_allclose(values, expected, atol=1e-8)
        assert engine.n_sinkhorn_batched == len(pairs)
        assert engine.n_evaluations == len(pairs)

    def test_union_embedding_matches_per_pair_scalar(self, rng):
        # Varying bin occupancy over one grid: every pair has a distinct
        # support pattern, and the engine embeds them into the union grid.
        sigs = make_grid_signatures(rng)
        pairs = [(sigs[i], sigs[j]) for i in range(8) for j in range(i + 1, 8)]
        engine = PairwiseEMDEngine(backend="sinkhorn_batch", sinkhorn_epsilon=0.05)
        values = engine.compute_pairs(pairs)
        expected = []
        for a, b in pairs:
            cost = cross_distance_matrix(a.positions, b.positions, "euclidean")
            expected.append(
                sinkhorn_transport(cost, a.weights, b.weights, epsilon=0.05).distance
            )
        np.testing.assert_allclose(values, expected, atol=1e-8)
        assert engine.n_sinkhorn_batched == len(pairs)

    def test_union_embedding_handles_signed_zero_rows(self, rng):
        # -0.0 and 0.0 compare equal (so np.unique collapses them) but
        # differ bytewise; the atom-index lookup must not KeyError.
        pos_a = np.array([[0.0, 1.0], [1.0, 1.0], [2.0, 1.0]])
        pos_b = np.array([[-0.0, 1.0], [1.0, 1.0], [3.0, 1.0]])
        sig_a = Signature(pos_a, np.array([1.0, 2.0, 1.0]))
        sig_b = Signature(pos_b, np.array([2.0, 1.0, 1.0]))
        engine = PairwiseEMDEngine(backend="sinkhorn_batch")
        values = engine.compute_pairs([(sig_a, sig_b)])
        assert np.all(np.isfinite(values))
        assert engine.n_sinkhorn_batched == 1
        cost = cross_distance_matrix(pos_a, pos_b, "euclidean")
        expected = sinkhorn_transport(cost, sig_a.weights, sig_b.weights).distance
        # This adversarial pair does not converge within the default
        # budget, so the two atom orderings accumulate independent float
        # noise; closeness (not strict parity) is the contract here.
        assert values[0] == pytest.approx(expected, abs=1e-5)

    def test_irregular_supports_fall_back_to_exact_lp(self, rng):
        sigs = [Signature(rng.normal(size=(6, 3)), np.ones(6)) for _ in range(4)]
        pairs = [(sigs[i], sigs[j]) for i in range(4) for j in range(i + 1, 4)]
        engine = PairwiseEMDEngine(backend="sinkhorn_batch")
        values = engine.compute_pairs(pairs)
        expected = [emd(a, b) for a, b in pairs]
        np.testing.assert_allclose(values, expected, atol=1e-10)
        assert engine.n_sinkhorn_batched == 0

    def test_unequal_masses_use_one_functional_throughout(self, rng):
        # The entropic path works on per-side-normalised weights; the
        # LP fallback inside the sinkhorn_batch backend must normalise
        # too, so a band over bags of very different sizes never mixes
        # the balanced and partial-matching functionals.
        support = rng.normal(size=(5, 2))
        heavy = Signature(support, rng.uniform(0.5, 2.0, 5) * 10.0)
        light = Signature(support, rng.uniform(0.5, 2.0, 5))
        irregular_a = Signature(rng.normal(size=(5, 2)), np.ones(5) * 7.0)
        irregular_b = Signature(rng.normal(size=(5, 2)), np.ones(5))
        engine = PairwiseEMDEngine(
            backend="sinkhorn_batch", sinkhorn_epsilon=0.002, sinkhorn_max_iter=50000
        )
        values = engine.compute_pairs([(heavy, light), (irregular_a, irregular_b)])
        # Both routes agree with the exact EMD of the *normalised* pair.
        assert values[0] == pytest.approx(
            emd(heavy.normalized(), light.normalized()), rel=5e-3, abs=5e-3
        )
        assert values[1] == pytest.approx(
            emd(irregular_a.normalized(), irregular_b.normalized()), abs=1e-10
        )
        # The partial-matching EMD of the raw pair would be ~0 here.
        assert emd(heavy, light) == pytest.approx(0.0, abs=1e-9)
        assert values[0] > 1e-3 or emd(heavy.normalized(), light.normalized()) < 1e-3

    def test_exact_1d_fast_path_still_engages(self, rng):
        sigs = [
            Signature(rng.normal(size=(5, 1)), np.ones(5)).normalized() for _ in range(4)
        ]
        engine = PairwiseEMDEngine(backend="sinkhorn_batch")
        engine.compute_pairs([(sigs[0], sigs[1]), (sigs[2], sigs[3])])
        assert engine.n_fast_path == 2
        assert engine.n_sinkhorn_batched == 0

    def test_mixed_batch_routes_each_pair_once(self, rng):
        support = rng.normal(size=(5, 2))
        common = [Signature(support, rng.uniform(0.5, 2.0, 5)) for _ in range(3)]
        irregular = [Signature(rng.normal(size=(5, 2)), np.ones(5)) for _ in range(2)]
        one_d = [Signature(rng.normal(size=(4, 1)), np.ones(4)) for _ in range(2)]
        pairs = [
            (common[0], common[1]),
            (common[1], common[2]),
            (irregular[0], irregular[1]),
            (one_d[0], one_d[1]),
        ]
        engine = PairwiseEMDEngine(backend="sinkhorn_batch")
        values = engine.compute_pairs(pairs)
        assert values.shape == (4,)
        assert np.all(np.isfinite(values))
        assert engine.n_fast_path == 1
        assert engine.n_sinkhorn_batched == 2
        assert engine.n_evaluations == 4

    def test_epsilon_knob_changes_bias(self, rng):
        support = rng.normal(size=(6, 2))
        sigs = [Signature(support, rng.uniform(0.5, 2.0, 6)) for _ in range(2)]
        exact = emd(sigs[0], sigs[1])
        coarse = PairwiseEMDEngine(backend="sinkhorn_batch", sinkhorn_epsilon=1.0)
        fine = PairwiseEMDEngine(
            backend="sinkhorn_batch", sinkhorn_epsilon=0.005, sinkhorn_max_iter=20000
        )
        coarse_value = coarse.compute(sigs[0], sigs[1])
        fine_value = fine.compute(sigs[0], sigs[1])
        assert abs(fine_value - exact) <= abs(coarse_value - exact) + 1e-9

    def test_nonconverged_solves_warn_and_are_counted(self, rng):
        support = rng.normal(size=(6, 2))
        sigs = [Signature(support, rng.uniform(0.5, 2.0, 6)) for _ in range(3)]
        pairs = [(sigs[0], sigs[1]), (sigs[1], sigs[2])]
        engine = PairwiseEMDEngine(
            backend="sinkhorn_batch", sinkhorn_epsilon=0.005, sinkhorn_max_iter=3
        )
        with pytest.warns(RuntimeWarning, match="materially off-marginal"):
            values = engine.compute_pairs(pairs)
        assert np.all(np.isfinite(values))
        assert engine.n_sinkhorn_nonconverged == 2

    def test_banded_matrix_with_sinkhorn_backend(self, rng):
        # Default settings on the backend's flagship workload must run
        # clean: tol-misses at the rounding floor are routine and must
        # not surface as RuntimeWarnings.
        sigs = make_grid_signatures(rng, n=10)
        engine = PairwiseEMDEngine(backend="sinkhorn_batch")
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            banded = engine.banded_matrix(sigs, 4)
        dense = banded.to_dense()
        assert np.all(np.isfinite(dense))
        assert engine.n_sinkhorn_batched > 0


class TestDetectEndToEnd:
    def _bags(self, rng):
        bags = [rng.normal(0.0, 1.0, size=(40, 2)) for _ in range(7)]
        bags += [rng.normal(3.0, 1.0, size=(40, 2)) for _ in range(7)]
        return bags

    def test_seeded_detect_parity_with_exact_backend(self, rng):
        from repro.core import BagChangePointDetector, DetectorConfig

        bags = self._bags(rng)
        base = dict(
            tau=3,
            tau_test=3,
            signature_method="histogram",
            bins=4,
            histogram_range=[(-4.0, 7.0), (-4.0, 7.0)],
            n_bootstrap=40,
            random_state=11,
        )
        exact = BagChangePointDetector(DetectorConfig(**base)).detect(bags)
        approx = BagChangePointDetector(
            DetectorConfig(
                emd_backend="sinkhorn_batch",
                sinkhorn_epsilon=0.005,
                sinkhorn_max_iter=20000,
                **base,
            )
        ).detect(bags)
        # Same seed, same inspection points; scores track the exact ones
        # closely at small epsilon and the alert pattern is identical.
        assert [p.time for p in approx.points] == [p.time for p in exact.points]
        np.testing.assert_allclose(approx.scores, exact.scores, rtol=0.05, atol=0.05)
        assert [p.alert for p in approx.points] == [p.alert for p in exact.points]

    def test_detect_uses_batched_solver_for_histograms(self, rng):
        from repro.core import BagChangePointDetector, DetectorConfig

        bags = self._bags(rng)
        detector = BagChangePointDetector(
            DetectorConfig(
                tau=3,
                tau_test=3,
                signature_method="histogram",
                bins=4,
                histogram_range=[(-4.0, 7.0), (-4.0, 7.0)],
                emd_backend="sinkhorn_batch",
                n_bootstrap=20,
                random_state=0,
            )
        )
        detector.detect(bags)
        assert detector._engine.n_sinkhorn_batched > 0

    def test_online_offline_parity_with_sinkhorn_backend(self, rng):
        from repro.core import BagChangePointDetector, DetectorConfig, OnlineBagDetector

        bags = self._bags(rng)
        cfg = dict(
            tau=3,
            tau_test=3,
            signature_method="histogram",
            bins=4,
            histogram_range=[(-4.0, 7.0), (-4.0, 7.0)],
            emd_backend="sinkhorn_batch",
            n_bootstrap=30,
            random_state=5,
        )
        offline = BagChangePointDetector(DetectorConfig(**cfg)).detect(bags)
        online_points = OnlineBagDetector(DetectorConfig(**cfg)).push_many(bags)
        assert len(online_points) == len(offline.points)
        # The offline detector batches the whole band at once while the
        # online detector batches one push at a time, so the two embed
        # signatures into *different* union grids; distances then agree to
        # the convergence tolerance (not bitwise), and the log-based
        # scores to ~1e-5.
        for off, on in zip(offline.points, online_points):
            assert off.time == on.time
            assert off.score == pytest.approx(on.score, abs=1e-4, rel=1e-3)

    def test_invalid_backend_rejected_in_config(self):
        from repro.core import DetectorConfig
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            DetectorConfig(emd_backend="sinkhorn")
        with pytest.raises(ConfigurationError):
            DetectorConfig(sinkhorn_epsilon=0.0)
        with pytest.raises(ConfigurationError):
            DetectorConfig(sinkhorn_max_iter=0)
        with pytest.raises(ConfigurationError):
            DetectorConfig(sinkhorn_max_iter=100.5)
        with pytest.raises(ConfigurationError):
            DetectorConfig(sinkhorn_epsilon=float("nan"))
        with pytest.raises(ConfigurationError):
            DetectorConfig(sinkhorn_epsilon=float("inf"))
        with pytest.raises(ConfigurationError):
            PairwiseEMDEngine(sinkhorn_epsilon=float("nan"))
