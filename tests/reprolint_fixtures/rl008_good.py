"""Good fixture: exported definitions with honest docstrings."""

from dataclasses import dataclass

__all__ = ["Window", "Config", "score_series", "combine", "REEXPORTED"]

# A re-exported name defined elsewhere: not this module's to document.
REEXPORTED = object()


def score_series(values, threshold):
    """Score each value against a threshold.

    Parameters
    ----------
    values:
        The series to score.
    threshold:
        Values above this score as 1.
    """
    return [1 if v > threshold else 0 for v in values]


def combine(*series, weight=1.0, **options):
    """Combine several series (kwargs pass-through: names are free-form).

    Parameters
    ----------
    series:
        The input series.
    anything_at_all:
        Forwarded to the underlying combiner.
    """
    return series, weight, options


class Window:
    """A reference/test window pair.

    Parameters
    ----------
    reference:
        Length of the reference window.
    test:
        Length of the test window.
    """

    def __init__(self, reference, test):
        self.reference = reference
        self.test = test


@dataclass
class Config:
    """Configuration of a run.

    Parameters
    ----------
    tau:
        Reference window length.
    """

    tau: int = 5


def _private(undocumented):
    # Not exported: RL008 does not apply.
    return undocumented
