"""Retry-discipline breakage: ad-hoc sleeps and swallowed solver errors."""

import time

from repro.exceptions import SolverError


def hand_rolled_retry(engine, pairs):
    for attempt in range(5):
        try:
            return engine.compute_pairs(pairs)
        except RuntimeError:
            time.sleep(0.1 * attempt)  # ad-hoc pacing: no cap, no jitter
    raise RuntimeError(f"gave up after 5 attempts on {len(pairs)} pairs")


def swallow_by_name(engine, pairs):
    try:
        return engine.compute_pairs(pairs)
    except SolverError:
        return None  # the failure (and pair_indices) vanish


def swallow_broadly(engine, batches):
    results = []
    for batch in batches:
        try:
            results.append(engine.compute_pairs(batch))
        except Exception:
            continue  # a SolverError dies here unseen
    return results
