"""Snapshot discipline done right: stamped reads validate their stamps."""

import numpy as np

from repro.exceptions import CheckpointError


def load_stream_snapshot(path, fingerprint):
    with np.load(path, allow_pickle=False) as archive:
        stamp = str(archive["fingerprint"])
        checksum = str(archive["checksum"])
        payload = np.asarray(archive["payload"])
    if stamp != fingerprint:
        raise CheckpointError(f"{path}: expected fingerprint {fingerprint}, found {stamp}")
    if checksum != compute_checksum(payload):
        raise CheckpointError(f"{path}: payload checksum mismatch")
    return payload


def read_checkpoint(path, expected):
    archive = np.load(path, allow_pickle=False)
    if str(archive["fingerprint"]) != expected.fingerprint:
        raise CheckpointError(f"{path} is stale")
    verify_checksum(archive)
    return np.asarray(archive["values"])


def compute_checksum(payload):
    return str(np.asarray(payload, dtype=float).sum())


def verify_checksum(archive):
    found = compute_checksum(archive["values"])
    if str(archive["checksum"]) != found:
        raise CheckpointError(f"corrupt payload: checksum {found} does not match")


def load_plain_results(path):
    # Not snapshot-related: an ordinary data file needs no stamps.
    return np.load(path, allow_pickle=False)
