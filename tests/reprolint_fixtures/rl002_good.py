"""Randomness flows through explicitly seeded Generators."""

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=3)


def spawn(rng: np.random.Generator):
    child = np.random.default_rng(rng.integers(2**32))
    return child.random()
