"""Retry discipline done right: shared backoff, solver errors disposed of."""

import time

from repro.emd.orchestrator import compute_backoff
from repro.exceptions import SolverError


def disciplined_retry(engine, pairs, rng):
    for attempt in range(5):
        try:
            return engine.compute_pairs(pairs)
        except RuntimeError:
            time.sleep(compute_backoff(attempt, rng=rng))
    raise RuntimeError(f"gave up after 5 attempts on {len(pairs)} pairs")


def reraise_with_context(engine, pairs, shard):
    try:
        return engine.compute_pairs(pairs)
    except SolverError as exc:
        raise SolverError(
            f"shard {shard} failed on {len(pairs)} pairs",
            pair_indices=exc.pair_indices,
            shard_id=shard,
        ) from exc


def route_to_quarantine(engine, pairs, quarantine_pair):
    try:
        return engine.compute_pairs(pairs)
    except SolverError:
        return quarantine_pair(pairs)


def record_last_error(engine, pairs):
    last_error = None
    try:
        return engine.compute_pairs(pairs)
    except SolverError as exc:
        last_error = exc  # inspected: the caller sees what happened
    return last_error


def unrelated_handler(path):
    try:
        return open(path).read()  # no solver call guarded here
    except Exception:
        return None
