"""Bad fixture: undocumented exports and docstrings drifted from signatures."""

from dataclasses import dataclass

__all__ = ["Window", "Config", "score_series", "no_docs"]


def no_docs(values):
    return values


def score_series(values, threshold):
    """Score each value against a threshold.

    Parameters
    ----------
    values:
        The series to score.
    cutoff:
        Renamed to ``threshold`` long ago; the docstring never followed.
    """
    return [1 if v > threshold else 0 for v in values]


class Window:
    """A reference/test window pair.

    Parameters
    ----------
    reference:
        Length of the reference window.
    tail:
        Removed when the asymmetric window was dropped.
    """

    def __init__(self, reference, test):
        self.reference = reference
        self.test = test


@dataclass
class Config:
    """Configuration of a run.

    Parameters
    ----------
    tau_ref:
        The field is actually called ``tau``.
    """

    tau: int = 5
