"""Only module-level (picklable) functions reach the executor."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial


def work(x):
    return x * x


def scaled_work(factor, x):
    return factor * x


def run(values):
    with ProcessPoolExecutor() as pool:
        squares = list(pool.map(work, values))
        scaled = list(pool.map(partial(scaled_work, 3), values))
    return squares, scaled
