"""A config field the CLI can never set — silent dead configuration."""


class DetectorConfig:
    tau: int = 5
    weighting: str = "uniform"  # never passed at any call site


def main(args):
    return DetectorConfig(tau=args.tau)
