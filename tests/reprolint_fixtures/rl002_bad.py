"""Legacy global-state RNG usage in all its forms."""

import numpy as np
from numpy.random import rand  # legacy import

np.random.seed(0)  # process-global state


def sample():
    rng = np.random.default_rng()  # seedless generator
    return np.random.normal(size=3), rng.random(), rand(2)
