"""Self-contained good/bad fixture modules for the reprolint rules.

Each ``rlNNN_good.py`` module must lint clean under the corresponding
rule; each ``rlNNN_bad.py`` module must trigger it.  The fixtures are
never imported by the test suite — they are parsed by reprolint only —
so they deliberately contain code that would misbehave at runtime.
"""
