"""Backend names flow through the registry — no re-lists, no typos."""

from repro.emd.registry import EMD_SOLVERS, PAIRWISE_SOLVERS


def run(backend: str = "auto") -> str:
    if backend not in EMD_SOLVERS:
        raise ValueError(backend)
    return backend


def is_exact(backend: str) -> bool:
    return backend in PAIRWISE_SOLVERS


def add_cli_args(parser):
    parser.add_argument("--emd-backend", choices=EMD_SOLVERS, default="auto")
