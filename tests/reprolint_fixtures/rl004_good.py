"""Solver failures carry context: structured kwargs or formatted messages."""

from repro.exceptions import CheckpointError, SolverError


def fail_batched(positions, shard):
    raise SolverError(
        "batched solve failed",
        pair_indices=positions,
        shard_id=shard,
    )


def fail_single(i, j, size):
    raise SolverError(f"pair ({i}, {j}) of the {size}x{size} problem failed")


def fail_resume(path, expected, found):
    raise CheckpointError(
        f"checkpoint {path} was written under plan {found}, expected {expected}"
    )
