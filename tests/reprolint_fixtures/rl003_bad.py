"""Unpicklable callables submitted to a process pool."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial

double = lambda x: 2 * x  # deliberately bad: pickles by '<lambda>' qualname


def run(values):
    def local(x):
        return x + 1

    with ProcessPoolExecutor() as pool:
        a = list(pool.map(lambda x: x * x, values))  # direct lambda
        b = list(pool.map(double, values))  # name bound to a lambda
        c = list(pool.map(partial(local, 1), values))  # closure via partial
        d = pool.submit(local, 2)  # closure
    return a, b, c, d.result()
