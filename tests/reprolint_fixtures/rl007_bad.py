"""Snapshot-discipline breakage: stamped payload reads that skip validation."""

import numpy as np


def load_stream_snapshot(path):
    # Named as a snapshot loader but trusts the file blindly: neither the
    # payload checksum nor the config fingerprint is consulted.
    with np.load(path, allow_pickle=False) as archive:
        return np.asarray(archive["payload"])


def resume_from_checkpoint(directory, shard_id):
    # Checks the fingerprint but never the payload checksum, so silent
    # on-disk corruption flows straight into the resumed run.
    archive = np.load(directory / f"shard_{shard_id}.npz", allow_pickle=False)
    if str(archive["fingerprint"]) != "expected":
        raise RuntimeError("stale")
    return np.asarray(archive["values"])


def peek(snapshot_path):
    # The argument names the file as a snapshot even though the function
    # name does not.
    return np.load(snapshot_path, allow_pickle=False)["payload"]
